"""Shared plumbing for the per-experiment benchmark scripts.

Every ``bench_*.py`` here is a pytest-benchmark module *and* a standalone
script.  This module holds what both faces share:

* :func:`emit_table` — format/print/persist one experiment table,
* the common CLI contract: ``--quick`` (reduced workloads, no calibrated
  timing rounds) and ``--seed`` (workload seed), parsed by
  :func:`parse_bench_args` and plumbed to test bodies through the
  ``REPRO_BENCH_QUICK`` / ``REPRO_BENCH_SEED`` environment variables so
  the same test functions serve the pytest run and the standalone run,
* :func:`standalone_main` — the shared ``main()`` body: parse the common
  flags, export them, and run this one module under pytest (quick mode
  disables pytest-benchmark calibration, so every kernel runs once).

Inside a test body, :func:`bench_quick` and :func:`bench_seed` read the
plumbed values; both default to the full-fidelity configuration when the
module runs under plain pytest with no flags.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"

#: Environment plumbing between the CLI face and the test bodies.
QUICK_ENV = "REPRO_BENCH_QUICK"
SEED_ENV = "REPRO_BENCH_SEED"


def emit_table(title: str, header: list[str], rows: list[list]) -> str:
    """Format, print and persist one experiment table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)]
    lines = [title, "-" * len(title)]
    lines.append("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("".join(str(c).rjust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n\n")
    return text


def bench_quick() -> bool:
    """True when the run asked for reduced workloads (``--quick``)."""
    return os.environ.get(QUICK_ENV, "0") == "1"


def bench_seed(default: int = 0) -> int:
    """The plumbed workload seed (``--seed``), or ``default``."""
    try:
        return int(os.environ.get(SEED_ENV, ""))
    except ValueError:
        return default


def parse_bench_args(argv: list[str] | None = None) -> argparse.Namespace:
    """Parse the flags every bench script honors."""
    parser = argparse.ArgumentParser(
        description="standalone benchmark run (pytest-free smoke mode)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workloads, single uncalibrated runs")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    return parser.parse_args(argv if argv is not None else sys.argv[1:])


def export_bench_env(quick: bool, seed: int) -> None:
    """Publish the parsed flags for :func:`bench_quick`/:func:`bench_seed`."""
    os.environ[QUICK_ENV] = "1" if quick else "0"
    os.environ[SEED_ENV] = str(seed)


def standalone_main(module_file: str, argv: list[str] | None = None) -> int:
    """Shared ``main()`` for bench modules: run *this* module under pytest.

    ``--quick`` additionally passes ``--benchmark-disable`` so the
    ``benchmark`` fixture calls each kernel exactly once instead of
    running calibrated timing rounds.
    """
    ns = parse_bench_args(argv)
    export_bench_env(ns.quick, ns.seed)
    import pytest

    args = [str(module_file), "-q", "-p", "no:cacheprovider"]
    if ns.quick:
        args.append("--benchmark-disable")
    return int(pytest.main(args))
