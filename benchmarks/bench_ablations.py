"""Ablation benches for the design choices DESIGN.md calls out.

Each sweep isolates one mechanism the reproduction relies on:

* scheduler **patience tolerance** — how bad a feasible-now placement may
  be before a job waits for its matching module,
* gradient **compression** — fp16 wire vs fp32 in functional training
  (traffic down, accuracy intact),
* **ZeRO stages** — optimiser/gradient memory per rank vs replication,
* **GCE offload inside training** — the Fig. 3 curve with allreduces on the
  in-network engine instead of the software ring,
* **checkpoint path** — NAM vs striped PFS as model state grows (ref [12]).
"""

import numpy as np
import pytest

from conftest import emit_table

GiB = 1024 ** 3


def test_ablation_scheduler_patience(benchmark):
    from repro.core import MsaScheduler, synthetic_workload_mix
    from repro.core import (MSASystem, ClusterModule, BoosterModule,
                            DataAnalyticsModule, StorageModule,
                            DEEP_CM_NODE, DEEP_ESB_NODE, DEEP_DAM_NODE)

    def system():
        sys = MSASystem("MSA")
        sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 32))
        sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 16))
        sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 8))
        sys.add_module("sssm", StorageModule("SSSM", capacity_PB=1.0))
        return sys

    def run(pf):
        sched = MsaScheduler(system(), patience_factor=pf)
        sched.submit_all(synthetic_workload_mix(
            n_jobs=14, seed=3, mean_interarrival_s=60.0))
        return sched.run()

    report3 = benchmark.pedantic(run, args=(3.0,), rounds=1, iterations=1)
    rows = []
    results = {}
    for pf in (1.0, 3.0, 10.0, 1e6):
        report = report3 if pf == 3.0 else run(pf)
        results[pf] = report
        rows.append([f"{pf:g}", f"{report.makespan / 3600:.1f}",
                     f"{report.mean_turnaround / 3600:.1f}",
                     f"{report.energy_kwh:.0f}"])
    emit_table("Ablation — scheduler patience tolerance",
               ["tolerance", "makespan h", "turnaround h", "energy kWh"],
               rows)
    benchmark.extra_info["patience"] = rows

    # Unlimited tolerance (greedy) must not beat the default on makespan.
    assert results[3.0].makespan <= results[1e6].makespan * 1.05


def test_ablation_gradient_compression(benchmark):
    from repro.distributed import (DistributedOptimizer, Fp16Compression,
                                   broadcast_parameters)
    from repro.ml import (SGD, ArrayDataset, DistributedDataLoader, Tensor,
                          cross_entropy)
    from repro.ml.metrics import accuracy
    from repro.ml.models import MLP
    from repro.mpi import run_spmd

    rng = np.random.default_rng(0)
    X = np.concatenate([rng.normal(-2, 1, (64, 2)), rng.normal(2, 1, (64, 2))])
    Y = np.array([0] * 64 + [1] * 64)

    def train(comm, compression):
        model = MLP([2, 8, 2], seed=0)
        broadcast_parameters(model, comm)
        opt = DistributedOptimizer(SGD(model.parameters(), lr=0.05), comm,
                                   compression=compression)
        loader = DistributedDataLoader(ArrayDataset(X, Y), 16, comm.rank,
                                       comm.size, seed=1)
        for epoch in range(3):
            loader.set_epoch(epoch)
            for xb, yb in loader:
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return accuracy(model.predict(X), Y), comm.state.bytes_sent

    def run(compression):
        return run_spmd(train, 4, args=(compression,))

    fp32 = benchmark.pedantic(run, args=(None,), rounds=1, iterations=1)
    fp16 = run(Fp16Compression())
    rows = [
        ["fp32 wire", f"{fp32[0][0]:.3f}", f"{sum(b for _, b in fp32):,}"],
        ["fp16 wire", f"{fp16[0][0]:.3f}", f"{sum(b for _, b in fp16):,}"],
    ]
    emit_table("Ablation — gradient compression (4 workers)",
               ["configuration", "accuracy", "bytes sent"], rows)
    benchmark.extra_info["compression"] = rows

    assert abs(fp32[0][0] - fp16[0][0]) < 0.05      # accuracy intact
    assert sum(b for _, b in fp16) < 0.5 * sum(b for _, b in fp32)


def test_ablation_zero_stage_memory(benchmark):
    from repro.distributed import ZeroStage1Optimizer, ZeroStage2Optimizer
    from repro.distributed.horovod import broadcast_parameters
    from repro.ml import Tensor, cross_entropy
    from repro.ml.models import MLP
    from repro.mpi import run_spmd

    rng = np.random.default_rng(0)
    X = rng.normal(size=(32, 2))
    Y = (X[:, 0] > 0).astype(int)

    def measure(comm):
        model = MLP([2, 64, 2], seed=0)
        broadcast_parameters(model, comm)
        out = {}
        for name, cls in (("stage1", ZeroStage1Optimizer),
                          ("stage2", ZeroStage2Optimizer)):
            opt = cls(model.parameters(), comm, lr=0.01)
            loss = cross_entropy(model(Tensor(X)), Y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            grad_bytes = getattr(opt, "peak_grad_shard_bytes",
                                 opt.total_elements * 8)
            out[name] = (opt.local_state_bytes, grad_bytes,
                         opt.unsharded_state_bytes)
        return out

    results = benchmark.pedantic(lambda: run_spmd(measure, 4), rounds=1,
                                 iterations=1)
    r0 = results[0]
    full_state = r0["stage1"][2]
    rows = [
        ["replicated (baseline)", f"{full_state:,}", f"{full_state // 2:,}"],
        ["ZeRO stage 1", f"{r0['stage1'][0]:,}", f"{r0['stage1'][1]:,}"],
        ["ZeRO stage 2", f"{r0['stage2'][0]:,}", f"{r0['stage2'][1]:,}"],
    ]
    emit_table("Ablation — per-rank memory at 4 workers (bytes)",
               ["configuration", "optimiser state", "gradient"], rows)
    benchmark.extra_info["zero"] = rows

    assert r0["stage1"][0] <= full_state // 4 + 64        # state sharded
    assert r0["stage2"][1] <= (full_state // 2) // 4 + 64  # grads sharded too


def test_ablation_gce_in_training_loop(benchmark):
    from repro.distributed import DistributedTrainingPerfModel
    from repro.mpi import GlobalCollectiveEngine

    base = DistributedTrainingPerfModel()
    gce_model = base.with_gce(GlobalCollectiveEngine(base.fabric))

    def curves():
        return (base.scaling_curve([64, 128, 256]),
                gce_model.scaling_curve([64, 128, 256]))

    ring, offload = benchmark(curves)
    rows = [[pt.n_gpus, f"{pt.speedup:.1f}", f"{pt2.speedup:.1f}"]
            for pt, pt2 in zip(ring, offload)]
    emit_table("Ablation — Fig. 3 speedup: software ring vs GCE offload",
               ["GPUs", "ring speedup", "GCE speedup"], rows)
    benchmark.extra_info["gce_training"] = rows
    for pt, pt2 in zip(ring, offload):
        assert pt2.speedup >= pt.speedup * 0.99


def test_ablation_checkpoint_path(benchmark):
    from repro.storage import NetworkAttachedMemory, ParallelFileSystem
    from repro.storage.checkpoint import CheckpointManager

    mgr = CheckpointManager(
        nam=NetworkAttachedMemory(capacity_GB=256, write_GBps=8.0),
        pfs=ParallelFileSystem("fs", n_targets=8, target_GBps=5.0))

    def sweep():
        rows = []
        for size_gb in (1, 10, 50, 100):
            comparison = mgr.path_comparison(size_gb * GiB,
                                             concurrent_writers=32)
            rows.append([size_gb, f"{comparison['nam']:.1f}",
                         f"{comparison['pfs']:.1f}",
                         f"{comparison['pfs'] / comparison['nam']:.1f}x"])
        return rows

    rows = benchmark(sweep)
    emit_table("Ablation — checkpoint write path, 32 concurrent writers "
               "(ref [12])", ["state GB", "NAM s", "PFS s", "NAM advantage"],
               rows)
    benchmark.extra_info["checkpoint"] = rows
    assert all(float(r[1]) < float(r[2]) for r in rows)


def test_ablation_fair_share_policy(benchmark):
    """Queue policy: FCFS-backfill vs fair-share when one community floods
    the queue — the multi-community centre's fairness knob."""
    from repro.core import (MSASystem, BoosterModule, ClusterModule, Job,
                            JobPhase, SchedulerPolicy, WorkloadClass,
                            DEEP_CM_NODE, DEEP_ESB_NODE, schedule_workload)

    def system():
        sys = MSASystem("fair")
        sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 8))
        sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 8))
        return sys

    def jobs():
        flood = []
        for i in range(4):
            job = Job(name=f"rs-{i}", phases=[JobPhase(
                name="train", workload=WorkloadClass.ML_TRAINING,
                work_flops=1e17, nodes=8, uses_gpu=True,
                uses_tensor_cores=True, parallel_fraction=0.99)],
                user="remote-sensing")
            flood.append(job)
        flood.append(Job(name="health-0", phases=[JobPhase(
            name="train", workload=WorkloadClass.ML_TRAINING,
            work_flops=1e17, nodes=8, uses_gpu=True,
            uses_tensor_cores=True, parallel_fraction=0.99)],
            user="health"))
        return flood

    def run(policy):
        return schedule_workload(system(), jobs(), queue_policy=policy)

    fair = benchmark.pedantic(run, args=(SchedulerPolicy.FAIR_SHARE,),
                              rounds=1, iterations=1)
    fcfs = run(SchedulerPolicy.FCFS_BACKFILL)
    rows = [
        ["FCFS+backfill", f"{fcfs.wait_times['health-0']:.0f}",
         f"{fcfs.makespan:.0f}"],
        ["fair-share", f"{fair.wait_times['health-0']:.0f}",
         f"{fair.makespan:.0f}"],
    ]
    emit_table("Ablation — queue policy: late community's wait (s)",
               ["policy", "health-0 wait s", "makespan s"], rows)
    benchmark.extra_info["fairshare"] = rows
    assert fair.wait_times["health-0"] < fcfs.wait_times["health-0"]


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
