"""E11 — Sec. III-B / IV: cloud interoperability and economics.

Regenerates the interoperability lessons as checkable flows:

* Docker↔Singularity conversion preserves content and runs on both sides,
* a Jupyter kernel defined on JUWELS modules migrates to a cloud container,
* the cost table: the paper's 128-GPU RESNET-50 campaign on p3.16xlarge
  ($24/h) vs an HPC grant; free tiers cannot even run the study.
"""

import pytest

from repro.workflows import (
    AWS_P3_16XLARGE,
    CloudCostModel,
    ContainerImage,
    JupyterKernelSpec,
    singularity_from_docker,
)
from repro.workflows.cloud import CampaignSpec, FREE_TIER_COLAB
from repro.workflows.containers import cloud_docker, juwels_singularity
from repro.workflows.jupyter import jsc_module_environment

from conftest import emit_table


def test_container_interoperability_roundtrip(benchmark):
    """TensorFlow image: DockerHub -> cloud Docker AND JUWELS Singularity."""
    def flow():
        docker_image = ContainerImage(
            name="tensorflow/tensorflow", tag="2.5.0-gpu", format="docker",
            layers=("ubuntu:20.04", "pip:tensorflow==2.5.0",
                    "pip:horovod==0.24.2"),
            needs_gpu=True, cuda_version="11.0",
        )
        cloud_token = cloud_docker(driver_cuda="11.0").run(docker_image)
        sing = singularity_from_docker(docker_image)
        hpc_token = juwels_singularity(driver_cuda="11.2").run(sing)
        return docker_image, sing, cloud_token, hpc_token

    docker_image, sing, cloud_token, hpc_token = benchmark(flow)
    rows = [
        ["cloud (Docker)", cloud_token.split(":")[0], docker_image.digest()],
        ["JUWELS (Singularity)", hpc_token.split(":")[0], sing.digest()],
    ]
    emit_table("E11 — one DL stack, two runtimes",
               ["side", "runtime", "content digest"], rows)
    benchmark.extra_info["interop"] = rows
    assert docker_image.digest() == sing.digest()   # same software stack


def test_jupyter_kernel_migration(benchmark):
    """Sec. III-B: 'Jupyter notebooks can also be easily migrated into
    Clouds' — via the kernel-spec -> container path."""
    def flow():
        kernel = JupyterKernelSpec(
            name="rs-dl",
            modules=(("Python", "3.9.6"), ("TensorFlow", "2.5.0"),
                     ("Horovod", None), ("CUDA", "11.0")),
            python_packages=("dask", "scikit-learn"),
        )
        resolved = kernel.resolve(jsc_module_environment())
        image = kernel.to_container()
        ok, reason = cloud_docker(driver_cuda="11.0").can_run(image)
        return resolved, image, ok, reason

    resolved, image, ok, reason = benchmark(flow)
    rows = [[m, v] for m, v in sorted(resolved.items())]
    emit_table("E11 — kernel resolved against the JUWELS module stack",
               ["module", "version"], rows)
    benchmark.extra_info["kernel"] = rows
    assert ok, reason
    assert image.needs_gpu


def test_cloud_cost_table(benchmark):
    """'AWS EC2 24 USD per hour rate for V100 ... we need to use still the
    cost-free HPC computational time grants to be feasible'."""
    model = CloudCostModel(instance=AWS_P3_16XLARGE)

    def sweep():
        rows = []
        for n_gpus, hours, runs in ((8, 10, 1), (96, 10, 3), (128, 10, 5)):
            campaign = CampaignSpec(n_gpus=n_gpus, hours_per_run=hours,
                                    n_runs=runs)
            rows.append([
                f"{n_gpus} GPUs x {hours} h x {runs}",
                f"{campaign.gpu_hours:,.0f}",
                f"${model.cloud_cost_usd(campaign):,.0f}",
                f"${model.grant_cost_usd(campaign, 100_000):,.0f}",
            ])
        return rows

    rows = benchmark(sweep)
    emit_table("E11 — campaign pricing: p3.16xlarge vs HPC grant",
               ["campaign", "GPU-hours", "cloud", "grant"], rows)
    benchmark.extra_info["costs"] = rows
    assert float(rows[-1][2].replace("$", "").replace(",", "")) > 10_000
    assert all(r[3] == "$0" for r in rows)


def test_free_tier_infeasibility(benchmark):
    """'the missing possibility to interconnect GPUs for large-scale
    distributed training' on free tiers."""
    model = CloudCostModel(instance=FREE_TIER_COLAB)

    def attempt():
        feasible = model.speedup_study_feasible(max_gpus=96)
        try:
            model.cloud_cost_usd(CampaignSpec(n_gpus=96, hours_per_run=1))
            raised = False
        except ValueError:
            raised = True
        return feasible, raised

    feasible, raised = benchmark(attempt)
    assert not feasible and raised
    benchmark.extra_info["free_tier_blocked"] = True


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
