"""E2 — Fig. 2: heterogeneous workloads on MSA vs homogeneous systems.

The MSA claim: 'each application and its parts can be run on an exactly
matching system, improving time to solution and energy use'.  We schedule
the same Fig.-2-class workload mix on (a) an MSA (CM+ESB+DAM), (b) a
cluster-only system, (c) a booster-only system of equal node count, and
report makespan / turnaround / energy.
"""

import pytest

from repro.core import (
    BoosterModule,
    ClusterModule,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    MSASystem,
    StorageModule,
    homogeneous_system,
    schedule_workload,
    synthetic_workload_mix,
)
from conftest import emit_table

N_NODES = 141   # 64 CM + 61 ESB + 16 DAM, matched in every baseline


def build_msa() -> MSASystem:
    sys = MSASystem("MSA")
    sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 64))
    sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 61))
    sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 16))
    sys.add_module("sssm", StorageModule("SSSM", capacity_PB=2.0))
    return sys


def jobs():
    return synthetic_workload_mix(n_jobs=18, seed=7, mean_interarrival_s=120.0)


def _row(name, report):
    return [name, f"{report.makespan / 3600:.1f}",
            f"{report.mean_turnaround / 3600:.1f}",
            f"{report.energy_kwh:.0f}",
            f"{report.energy_busy_joules / 3.6e6:.0f}"]


def test_fig2_msa_vs_homogeneous(benchmark):
    msa_report = benchmark(lambda: schedule_workload(build_msa(), jobs()))
    cluster = schedule_workload(
        homogeneous_system("cluster-only", DEEP_CM_NODE, N_NODES), jobs())
    booster = schedule_workload(
        homogeneous_system("booster-only", DEEP_ESB_NODE, N_NODES,
                           as_booster=True), jobs())

    rows = [_row("MSA", msa_report), _row("cluster-only", cluster),
            _row("booster-only", booster)]
    emit_table(
        "E2/Fig. 2 — mixed workload, equal node counts",
        ["system", "makespan h", "turnaround h", "energy kWh", "busy kWh"],
        rows)
    benchmark.extra_info["fig2"] = rows

    # The paper's shape: MSA wins both time-to-solution and energy.
    assert msa_report.makespan < cluster.makespan
    assert msa_report.makespan < booster.makespan
    assert msa_report.energy_total_joules < cluster.energy_total_joules
    assert msa_report.mean_turnaround < cluster.mean_turnaround
    assert msa_report.mean_turnaround < booster.mean_turnaround


def test_fig2_per_class_placement(benchmark):
    """Each Fig. 2 workload class lands on its matching module."""
    report = benchmark(lambda: schedule_workload(build_msa(), jobs()))
    by_class: dict = {}
    job_list = jobs()
    phase_class = {
        (j.name, p.name): p.workload.value for j in job_list for p in j.phases
    }
    for alloc in report.allocations:
        cls = phase_class[(alloc.job_name, alloc.phase_name)]
        by_class.setdefault(cls, []).append(alloc.module_key)
    rows = []
    for cls, modules in sorted(by_class.items()):
        top = max(set(modules), key=modules.count)
        rows.append([cls, top,
                     f"{modules.count(top)}/{len(modules)}"])
    emit_table("E2 — dominant module per workload class",
               ["workload class", "module", "share"], rows)
    benchmark.extra_info["placement"] = rows

    placement = {cls: max(set(mods), key=mods.count)
                 for cls, mods in by_class.items()}
    assert placement["simulation-lowscale"] == "cm"
    assert placement["data-analytics"] == "dam"
    assert placement["ml-training"] in ("esb", "dam")
    assert placement["simulation-highscale"] == "esb"


def test_fig2_matchmaking_vs_first_fit(benchmark):
    """Ablation: the matchmaking policy itself is load-bearing."""
    from repro.core import PlacementPolicy

    match = benchmark(lambda: schedule_workload(build_msa(), jobs()))
    naive = schedule_workload(build_msa(), jobs(),
                              placement=PlacementPolicy.FIRST_FIT)
    rows = [
        ["matchmaking", f"{match.makespan / 3600:.1f}",
         f"{match.energy_kwh:.0f}"],
        ["first-fit", f"{naive.makespan / 3600:.1f}",
         f"{naive.energy_kwh:.0f}"],
    ]
    emit_table("E2 ablation — placement policy on the same MSA",
               ["policy", "makespan h", "energy kWh"], rows)
    benchmark.extra_info["ablation"] = rows
    assert match.makespan < naive.makespan


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
