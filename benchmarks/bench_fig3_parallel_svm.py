"""E4 — Fig. 3 M, ref [16]: parallel & scalable SVM on the Cluster Module.

Strong scaling of the MPI cascade SVM against serial SMO on an RS pixel
classification problem: equal-quality decision function, training-time
reduction that grows with rank count (SMO cost is superlinear in n, so
partitioned sub-problems are disproportionately cheaper).
"""

import time

import numpy as np
import pytest

from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.ml import train_test_split
from repro.mpi import run_spmd
from repro.svm import SVC
from repro.svm.cascade import cascade_train, serial_train

from conftest import emit_table


@pytest.fixture(scope="module")
def rs_problem():
    spectra, labels = SyntheticBigEarthNet(BigEarthNetConfig(
        n_classes=4, seed=3, noise_sigma=0.05)).pixels(1600)
    y = np.where(labels < 2, -1.0, 1.0)
    return train_test_split(spectra, y, test_fraction=0.2, seed=0)


def _template():
    return SVC(kernel="rbf", gamma=2.0, C=1.0)


def test_fig3_cascade_strong_scaling(benchmark, rs_problem):
    Xtr, Xte, ytr, yte = rs_problem

    serial_machine, t_serial = serial_train(Xtr, ytr, template=_template())
    serial_acc = serial_machine.score(Xte, yte)

    def run_cascade(p):
        def fn(comm):
            shard = np.arange(comm.rank, len(ytr), comm.size)
            return cascade_train(comm, Xtr[shard], ytr[shard],
                                 template=_template())

        t0 = time.perf_counter()
        result = run_spmd(fn, p)[0]
        wall = time.perf_counter() - t0
        return result, wall

    result8, _ = benchmark.pedantic(run_cascade, args=(8,), rounds=1,
                                    iterations=1)

    rows = [["serial", f"{t_serial * 1e3:.0f}", f"{serial_acc:.3f}", "1.0"]]
    for p in (2, 4, 8):
        result, wall = run_cascade(p)
        rows.append([f"cascade p={p}", f"{wall * 1e3:.0f}",
                     f"{result.score(Xte, yte):.3f}",
                     f"{t_serial / wall:.1f}"])
    emit_table("E4/Fig. 3 M — parallel SVM on the CM (strong scaling)",
               ["configuration", "train ms", "test acc", "speedup"], rows)
    benchmark.extra_info["scaling"] = rows

    # Quality preserved across the cascade.
    assert result8.score(Xte, yte) >= serial_acc - 0.03
    # Parallel training reduces wall time vs the serial SMO.
    p8_wall = float(rows[-1][1])
    assert p8_wall < t_serial * 1e3


def test_fig3_cascade_communicates_only_support_vectors(benchmark, rs_problem):
    Xtr, _, ytr, _ = rs_problem

    def fn(comm):
        shard = np.arange(comm.rank, len(ytr), comm.size)
        return cascade_train(comm, Xtr[shard], ytr[shard],
                             template=_template())

    result = benchmark.pedantic(lambda: run_spmd(fn, 4)[0], rounds=1,
                                iterations=1)
    frac = result.total_sv_exchanged / len(ytr)
    benchmark.extra_info["sv_fraction"] = frac
    emit_table("E4 — cascade communication volume",
               ["quantity", "value"],
               [["training rows", len(ytr)],
                ["support vectors exchanged", result.total_sv_exchanged],
                ["fraction", f"{frac:.2%}"]])
    assert frac < 0.5


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
