"""E6 — Sec. III-C, refs [10][11]: quantum SVM on the annealer.

Regenerates the QA lessons: the QSVM ensemble approaches the classical
SVM's accuracy on a binary RS problem while being capacity-bound
(sub-sampling), and the 5000-qubit Advantage fits larger sub-problems than
the 2000Q — the paper's '2000 qubits' → 'Leap/Advantage 5000 qubits and
35000 couplers' progression.
"""

import numpy as np
import pytest

from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.ml import train_test_split
from repro.quantum import (
    DWAVE_2000Q,
    DWAVE_ADVANTAGE,
    QSvmEnsemble,
    QuantumSVM,
    SimulatedQuantumAnnealer,
)
from repro.quantum.annealer import EmbeddingError
from repro.svm import SVC

from conftest import emit_table


@pytest.fixture(scope="module")
def rs_binary():
    # A harder binary RS problem: grassland vs heathland (nearby spectra).
    spectra, labels = SyntheticBigEarthNet(BigEarthNetConfig(
        n_classes=8, seed=5, noise_sigma=0.06)).pixels(600)
    keep = np.isin(labels, (6, 7))
    X = spectra[keep]
    y = np.where(labels[keep] == 6, -1.0, 1.0)
    return train_test_split(X, y, test_fraction=0.3, seed=0)


def test_fig3_qsvm_vs_classical(benchmark, rs_binary):
    Xtr, Xte, ytr, yte = rs_binary
    classical = SVC(kernel="rbf", gamma=4.0).fit(Xtr, ytr)
    classical_acc = classical.score(Xte, yte)

    def train_ensemble(device):
        annealer = SimulatedQuantumAnnealer.for_device(device, sweeps=80)
        return QSvmEnsemble(annealer, n_members=4, kernel="rbf", gamma=4.0,
                            num_reads=10, n_solutions=3).fit(Xtr, ytr)

    ens_2000 = benchmark.pedantic(train_ensemble, args=(DWAVE_2000Q,),
                                  rounds=1, iterations=1)
    ens_adv = train_ensemble(DWAVE_ADVANTAGE)

    rows = [
        ["classical SVM (full data)", len(ytr), f"{classical_acc:.3f}"],
        ["QSVM ensemble DW-2000Q", len(ens_2000.members_[0].y_),
         f"{ens_2000.score(Xte, yte):.3f}"],
        ["QSVM ensemble Advantage", len(ens_adv.members_[0].y_),
         f"{ens_adv.score(Xte, yte):.3f}"],
    ]
    emit_table("E6/Sec. III-C — QSVM ensembles vs classical SVM",
               ["method", "samples/machine", "test acc"], rows)
    benchmark.extra_info["qsvm"] = rows

    # Shape: QSVM approaches the classical accuracy (within 10 points) but
    # must sub-sample; the Advantage fits larger members than the 2000Q.
    assert ens_2000.score(Xte, yte) > classical_acc - 0.10
    assert len(ens_adv.members_[0].y_) > len(ens_2000.members_[0].y_)


def test_fig3_device_capacity_table(benchmark):
    def capacities():
        out = []
        for device in (DWAVE_2000Q, DWAVE_ADVANTAGE):
            annealer = SimulatedQuantumAnnealer.for_device(device)
            qsvm = QuantumSVM(annealer, n_bits=2)
            out.append((device, qsvm.max_training_samples()))
        return out

    caps = benchmark(capacities)
    rows = [[d.name, d.n_qubits, d.n_couplers, d.max_clique, cap]
            for d, cap in caps]
    emit_table("E6 — annealer budgets (paper: 2000 qubits -> 5000/35000)",
               ["device", "qubits", "couplers", "max clique",
                "samples/anneal"], rows)
    benchmark.extra_info["capacity"] = rows

    assert caps[0][0].n_qubits == 2048 and caps[1][0].n_qubits == 5000
    assert caps[1][1] > 2 * caps[0][1]


def test_fig3_oversized_problem_rejected(benchmark, rs_binary):
    """The sub-sampling requirement enforced, not merely documented."""
    Xtr, _, ytr, _ = rs_binary
    annealer = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=10)
    qsvm = QuantumSVM(annealer, kernel="rbf", gamma=4.0)

    def attempt():
        try:
            qsvm.fit(Xtr, ytr)
            return False
        except EmbeddingError:
            return True

    rejected = benchmark(attempt)
    assert rejected
    benchmark.extra_info["rejected_at"] = len(ytr)


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
