"""E3 — Fig. 3 (middle/bottom right): distributed ResNet training scaling.

Two halves, mirroring how the repo splits functional vs performance truth:

* **paper-scale series** (performance model): epoch time / speedup /
  efficiency for 1→128 A100 GPUs on the booster's InfiniBand-HDR fabric,
  naive [18] vs tuned [20] recipes,
* **functional runs** (real training over the simulated MPI): accuracy
  invariance across worker counts and measured ring-allreduce behaviour.
"""

import numpy as np
import pytest

from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.distributed import (
    DistributedOptimizer,
    DistributedTrainingPerfModel,
    broadcast_parameters,
)
from repro.ml import Adam, ArrayDataset, DistributedDataLoader, Tensor, cross_entropy
from repro.ml.metrics import accuracy
from repro.ml.models import resnet_small
from repro.mpi import run_spmd

from conftest import bench_quick, emit_table

GPU_COUNTS = [1, 2, 4, 8, 16, 32, 64, 96, 128]


def test_fig3_scaling_curve_naive_vs_tuned(benchmark):
    model = DistributedTrainingPerfModel()
    tuned = model.with_recipe(model.recipe.tuned())

    curve = benchmark(model.scaling_curve, GPU_COUNTS)
    tuned_curve = tuned.scaling_curve(GPU_COUNTS)

    rows = []
    for naive_pt, tuned_pt in zip(curve, tuned_curve):
        rows.append([
            naive_pt.n_gpus,
            f"{naive_pt.epoch_time_s:.1f}",
            f"{naive_pt.speedup:.1f}",
            f"{naive_pt.efficiency:.2f}",
            f"{tuned_pt.speedup:.1f}",
            f"{tuned_pt.efficiency:.2f}",
        ])
    emit_table(
        "E3/Fig. 3 — ResNet-50/BigEarthNet scaling on A100 booster",
        ["GPUs", "epoch s", "speedup", "eff", "tuned speedup", "tuned eff"],
        rows)
    benchmark.extra_info["scaling"] = rows

    by_gpus = {pt.n_gpus: pt for pt in curve}
    # Paper shape: significant speedup at 96 GPUs (the initial study) ...
    assert by_gpus[96].speedup > 48
    # ... speedup still grows to 128 ...
    assert by_gpus[128].speedup > by_gpus[96].speedup
    # ... and the tuned-[20] 128-GPU run beats the naive one clearly.
    tuned_128 = tuned_curve[-1]
    assert tuned_128.speedup > by_gpus[128].speedup * 1.1
    assert tuned_128.efficiency > 0.9


def test_fig3_v100_vs_a100_generation(benchmark):
    """The JURECA/JUWELS (V100) to booster (A100) hardware progression."""
    from repro.core.hardware import NVIDIA_A100, NVIDIA_V100

    def build():
        return (DistributedTrainingPerfModel(gpu=NVIDIA_V100).epoch_time(96),
                DistributedTrainingPerfModel(gpu=NVIDIA_A100).epoch_time(96))

    v100_t, a100_t = benchmark(build)
    rows = [["V100 x96", f"{v100_t:.1f}"], ["A100 x96", f"{a100_t:.1f}"]]
    emit_table("E3 — epoch time by GPU generation (96 GPUs)",
               ["configuration", "epoch s"], rows)
    benchmark.extra_info["generations"] = rows
    assert a100_t < v100_t


class TestFunctionalDistributedTraining:
    N_CLASSES = 4

    @pytest.fixture(scope="class")
    def data(self):
        ds = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=160, patch_size=8, n_classes=self.N_CLASSES, seed=0))
        X, y = ds.generate()
        return X[:120], y[:120], X[120:], y[120:]

    def _train(self, comm, Xtr, ytr, epochs=25):
        model = resnet_small(in_channels=12, n_classes=self.N_CLASSES,
                             seed=0)
        broadcast_parameters(model, comm)
        opt = DistributedOptimizer(Adam(model.parameters(), lr=3e-3), comm)
        loader = DistributedDataLoader(
            ArrayDataset(Xtr, ytr), batch_size=max(1, 40 // comm.size),
            rank=comm.rank, world_size=comm.size, seed=1)
        for epoch in range(epochs):
            loader.set_epoch(epoch)
            for xb, yb in loader:
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return model

    def test_fig3_accuracy_invariance_functional(self, benchmark, data):
        """'distributed DL training can significantly reduce the training
        time without affecting prediction accuracy' — real training runs."""
        Xtr, ytr, Xte, yte = data
        # Quick smoke mode trains fewer epochs, so the accuracy floor is
        # proportionally looser; the invariance *spread* bound stays.
        epochs = 10 if bench_quick() else 25

        def accuracy_for(ws):
            def fn(comm):
                model = self._train(comm, Xtr, ytr, epochs=epochs)
                return accuracy(model.predict(Xte), yte)

            return run_spmd(fn, ws, timeout=600)[0]

        acc4 = benchmark.pedantic(accuracy_for, args=(4,), rounds=1,
                                  iterations=1)
        accs = {1: accuracy_for(1), 2: accuracy_for(2), 4: acc4}
        rows = [[ws, f"{acc:.3f}"] for ws, acc in sorted(accs.items())]
        emit_table("E3 — functional accuracy vs worker count",
                   ["workers", "test accuracy"], rows)
        benchmark.extra_info["accuracies"] = rows

        chance = 1.0 / self.N_CLASSES
        assert min(accs.values()) > chance + (0.1 if bench_quick() else 0.3)
        assert max(accs.values()) - min(accs.values()) < 0.15


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
