"""E5 — Fig. 3 R: Spark-style analytics on the DAM's memory hierarchy.

Two halves of the paper's DAM story:

* the **autoencoder compression** pipeline of ref [7] (Haut et al.) run on
  the RDD engine: compression ratio vs reconstruction error,
* the **memory-tier sensitivity** that motivates the DAM: the same cached
  working set stays DRAM-resident on a DAM node but spills on a standard
  cluster node, and MLlib-style classifiers run on the engine.
"""

import numpy as np
import pytest

from repro.analytics import MiniSparkContext, RandomForest, RddLogisticRegression
from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.ml import Adam, Tensor, mse
from repro.ml.metrics import accuracy
from repro.ml.models import SpectralAutoencoder
from repro.storage.tiers import TieredStore

from conftest import emit_table

GiB = 1024 ** 3


@pytest.fixture(scope="module")
def spectra():
    ds = SyntheticBigEarthNet(BigEarthNetConfig(n_classes=6, seed=1,
                                                noise_sigma=0.02))
    return ds.pixels(800)


def _train_ae(spectra_arr, bottleneck, epochs=60):
    ae = SpectralAutoencoder(n_bands=12, bottleneck=bottleneck, hidden=16,
                             seed=0)
    opt = Adam(ae.parameters(), lr=5e-3)
    for _ in range(epochs):
        loss = mse(ae(Tensor(spectra_arr)), spectra_arr)
        ae.zero_grad()
        loss.backward()
        opt.step()
    return ae


def test_fig3_autoencoder_compression_sweep(benchmark, spectra):
    X, _ = spectra
    ae4 = benchmark.pedantic(_train_ae, args=(X, 4), rounds=1, iterations=1)

    rows = []
    for bottleneck in (2, 4, 6):
        ae = ae4 if bottleneck == 4 else _train_ae(X, bottleneck)
        rows.append([f"12 -> {bottleneck}",
                     f"{ae.compression_ratio:.1f}x",
                     f"{ae.reconstruction_error(X):.5f}"])
    emit_table("E5/Fig. 3 R — AE compression of RS spectra (ref [7])",
               ["bottleneck", "ratio", "reconstruction MSE"], rows)
    benchmark.extra_info["compression"] = rows

    errors = [float(r[2]) for r in rows]
    assert errors[0] >= errors[1] >= errors[2]   # more capacity, less error
    assert errors[2] < 0.01


def test_fig3_dam_memory_tier_sensitivity(benchmark):
    """The DAM's raison d'être: big cached working sets stay in DRAM."""
    def cache_working_set(store):
        ctx = MiniSparkContext(n_partitions=4, memory=store)
        rdd = ctx.parallelize(list(range(200_000))).cache()
        rdd.collect()
        return ctx.cached_fast_fraction()

    dam_frac = benchmark.pedantic(
        cache_working_set, args=(TieredStore.dam_node(),), rounds=1,
        iterations=1)
    tiny = TieredStore(hbm_GB=0, ddr_GB=2e-3, nvm_GB=4.0)
    small_frac = cache_working_set(tiny)

    # Analytic tier sweep: dataset size vs DRAM-resident fraction.
    rows = []
    for size_gb in (100, 400, 800, 2000):
        dam = TieredStore.dam_node()
        dam.put("ds", size_gb * GiB)
        cluster = TieredStore.cluster_node()
        cluster.put("ds", size_gb * GiB)
        rows.append([size_gb,
                     f"{dam.resident_fraction_fast('ds'):.2f}",
                     f"{cluster.resident_fraction_fast('ds'):.2f}",
                     f"{dam.read_time('ds'):.1f}",
                     f"{cluster.read_time('ds'):.1f}"])
    emit_table(
        "E5 — working-set residency: DAM node vs cluster node",
        ["size GB", "DAM fast frac", "cluster fast frac",
         "DAM read s", "cluster read s"], rows)
    benchmark.extra_info["tiers"] = rows

    assert dam_frac == pytest.approx(1.0)
    assert small_frac < 1.0
    # At 400 GB the DAM still holds everything DRAM+HBM-adjacent while the
    # 96 GB cluster node reads mostly from the PFS.
    assert float(rows[1][1]) > float(rows[1][2])
    assert float(rows[1][4]) > float(rows[1][3])


def test_fig3_mllib_classifiers_on_rdd(benchmark, spectra):
    """The footnote's MLlib stack: logistic regression + random forest."""
    X, labels = spectra
    y = (labels >= 3).astype(int)
    ctx = MiniSparkContext(n_partitions=4)
    rows_rdd = ctx.parallelize(list(zip(X, y)))

    lr_model = benchmark.pedantic(
        lambda: RddLogisticRegression(n_features=12, n_iterations=30).fit(rows_rdd),
        rounds=1, iterations=1)
    forest = RandomForest(n_trees=10, max_depth=5, seed=0).fit(X, y, ctx=ctx)

    rows = [
        ["logistic regression (treeAggregate)", f"{lr_model.score(X, y):.3f}"],
        ["random forest (partition-parallel)", f"{forest.score(X, y):.3f}"],
    ]
    emit_table("E5 — MLlib-style classifiers on the RDD engine",
               ["model", "train accuracy"], rows)
    benchmark.extra_info["mllib"] = rows
    assert lr_model.score(X, y) > 0.85
    assert forest.score(X, y) > 0.85


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
