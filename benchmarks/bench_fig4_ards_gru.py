"""E8 — Sec. IV-B, Fig. 4 A: ARDS time-series analysis.

Regenerates the case study's table: the paper's exact GRU (2 layers x 32
units, dropout 0.2, kernel+recurrent regularisation, Dense(1), MAE loss,
ADAM lr 1e-4 — scaled down for laptop wall-clock) and the 1-D CNN both
predict missing vitals values far better than clinical baselines; plus
Berlin-definition P/F monitoring over the synthetic cohort.
"""

import numpy as np
import pytest

from repro.datasets import (
    IcuCohort,
    IcuConfig,
    VITAL_CHANNELS,
    berlin_severity,
    make_imputation_windows,
)
from repro.ml import Adam, Tensor, l2_regularisation, mae, train_test_split
from repro.ml.metrics import mae_score
from repro.ml.models import Cnn1dForecaster, GruForecaster
from repro.ml.models.gru_forecaster import locf_baseline, mean_baseline

from conftest import emit_table

TARGET = 1  # SpO2


@pytest.fixture(scope="module")
def cohort():
    return IcuCohort(IcuConfig(n_patients=30, seed=0,
                               min_hours=30, max_hours=60)).generate()


@pytest.fixture(scope="module")
def windows(cohort):
    X, y, stats = make_imputation_windows(cohort, window=8,
                                          target_channel=TARGET)
    return train_test_split(X, y, test_fraction=0.25, seed=0)


def _fit(model, Xtr, ytr, lr=5e-3, epochs=10, reg_params=None):
    opt = Adam(model.parameters(), lr=lr)
    idx = np.arange(len(Xtr))
    rng = np.random.default_rng(0)
    for _ in range(epochs):
        rng.shuffle(idx)
        for s in range(0, len(idx), 64):
            b = idx[s:s + 64]
            loss = mae(model(Tensor(Xtr[b])), ytr[b])
            if reg_params:
                loss = loss + l2_regularisation(reg_params, 1e-5)
            model.zero_grad()
            loss.backward()
            opt.step()
    model.eval()
    return model


def test_fig4_imputation_model_comparison(benchmark, windows):
    Xtr, Xte, ytr, yte = windows

    gru = GruForecaster(Xtr.shape[2], hidden=16, seed=0)
    gru = benchmark.pedantic(
        _fit, args=(gru, Xtr, ytr),
        kwargs={"reg_params": gru.regularised_parameters()},
        rounds=1, iterations=1)
    cnn = _fit(Cnn1dForecaster(Xtr.shape[2], channels=16, seed=0), Xtr, ytr)

    rows = [
        ["GRU 2x(32) dropout 0.2 + reg (paper model)",
         f"{mae_score(gru.predict(Xte), yte):.3f}"],
        ["1-D CNN", f"{mae_score(cnn.predict(Xte), yte):.3f}"],
        ["last observation carried forward",
         f"{mae_score(locf_baseline(Xte, TARGET), yte):.3f}"],
        ["window mean", f"{mae_score(mean_baseline(Xte, TARGET), yte):.3f}"],
    ]
    emit_table("E8/Fig. 4 A — SpO2 missing-value prediction (MAE, "
               "standardised units)", ["method", "MAE"], rows)
    benchmark.extra_info["imputation"] = rows

    gru_mae, cnn_mae, locf, meanb = (float(r[1]) for r in rows)
    # Paper shape: both DL models 'promising' — they beat the baselines.
    assert gru_mae < locf and gru_mae < meanb
    assert cnn_mae < meanb


def test_fig4_paper_hyperparameters(benchmark, windows):
    """The verbatim Sec. IV-B configuration: GRU(32)x2, dropout 0.2, MAE,
    ADAM lr=1e-4 — loss decreases monotonically-ish from the start."""
    Xtr, Xte, ytr, yte = windows
    model = GruForecaster(Xtr.shape[2])      # hidden=32, dropout=0.2
    opt = Adam(model.parameters(), lr=1e-4)  # paper's learning rate

    def steps(n):
        losses = []
        for _ in range(n):
            loss = mae(model(Tensor(Xtr[:128])), ytr[:128])
            model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        return losses

    losses = benchmark.pedantic(steps, args=(10,), rounds=1, iterations=1)
    benchmark.extra_info["loss_curve"] = losses
    emit_table("E8 — paper hyperparameters sanity (first/last loss)",
               ["step", "MAE loss"],
               [[1, f"{losses[0]:.4f}"], [10, f"{losses[-1]:.4f}"]])
    assert losses[-1] < losses[0]


def test_fig4_berlin_definition_monitoring(benchmark, cohort):
    """P/F-ratio surveillance across the cohort: ARDS patients cross the
    300 mmHg Berlin threshold after onset, healthy ones do not."""
    def classify():
        out = []
        for rec in cohort:
            pf = rec.pf_ratio()
            flagged = bool((pf[6:] < 300).sum() >= 3)  # prolonged, not a blip
            out.append((rec.patient_id, rec.has_ards, flagged,
                        berlin_severity(float(pf.min()))))
        return out

    results = benchmark(classify)
    tp = sum(1 for _, ards, flag, _ in results if ards and flag)
    fn = sum(1 for _, ards, flag, _ in results if ards and not flag)
    fp = sum(1 for _, ards, flag, _ in results if not ards and flag)
    tn = sum(1 for _, ards, flag, _ in results if not ards and not flag)
    rows = [["true positives", tp], ["false negatives", fn],
            ["false positives", fp], ["true negatives", tn]]
    emit_table("E8 — Berlin-definition P/F<300 screening vs ground truth",
               ["outcome", "patients"], rows)
    benchmark.extra_info["screening"] = rows
    sensitivity = tp / max(tp + fn, 1)
    assert sensitivity > 0.9

    severities = {sev for _, ards, _, sev in results if ards}
    assert severities & {"moderate", "severe"}


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
