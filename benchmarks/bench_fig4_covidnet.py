"""E7 — Sec. IV-A, Fig. 4 B: COVID-Net chest-X-ray analysis.

Regenerates the case study's three quantitative claims:

* a COVID-Net-style CNN reproduces COVID-19 detection on (synthetic)
  COVIDx (accuracy + per-class recall table),
* it generalises to an unseen-hospital external validation set,
* A100-generation training/inference is significantly faster than
  V100-generation ('given its tensor cores').
"""

import numpy as np
import pytest

from repro.core.hardware import NVIDIA_A100, NVIDIA_V100
from repro.datasets import CXR_CLASSES, CxrConfig, SyntheticCovidx
from repro.ml import Adam, Tensor, cross_entropy, train_test_split
from repro.ml.metrics import accuracy, precision_recall_f1
from repro.ml.models import CovidNet

from conftest import bench_quick, emit_table


@pytest.fixture(scope="module")
def covidx():
    gen = SyntheticCovidx(CxrConfig(n_samples=240, image_size=32,
                                    noise_sigma=0.02, seed=0))
    X, y = gen.generate()
    return gen, train_test_split(X, y, test_fraction=0.25, seed=0)


def _train(Xtr, ytr, epochs=None):
    if epochs is None:
        # Quick smoke mode trains a third of the epochs; the assertions
        # below scale their accuracy floors to match.
        epochs = 14 if bench_quick() else 25
    model = CovidNet(base_width=8, n_blocks=2, seed=0)
    opt = Adam(model.parameters(), lr=3e-3)
    idx = np.arange(len(Xtr))
    rng = np.random.default_rng(0)
    for _ in range(epochs):
        rng.shuffle(idx)
        for s in range(0, len(idx), 32):
            b = idx[s:s + 32]
            loss = cross_entropy(model(Tensor(Xtr[b])), ytr[b])
            model.zero_grad()
            loss.backward()
            opt.step()
    return model


@pytest.fixture(scope="module")
def trained(covidx):
    _, (Xtr, Xte, ytr, yte) = covidx
    return _train(Xtr, ytr)


def test_fig4_covidnet_detection(benchmark, covidx, trained):
    gen, (Xtr, Xte, ytr, yte) = covidx
    pred = benchmark(trained.predict, Xte)
    scores = precision_recall_f1(pred, yte, 3)
    rows = [[name,
             f"{scores['precision'][i]:.2f}",
             f"{scores['recall'][i]:.2f}",
             f"{scores['f1'][i]:.2f}"]
            for i, name in enumerate(CXR_CLASSES)]
    rows.append(["overall accuracy", "", "", f"{accuracy(pred, yte):.3f}"])
    emit_table("E7/Fig. 4 B — COVID-Net on synthetic COVIDx",
               ["class", "precision", "recall", "F1"], rows)
    benchmark.extra_info["detection"] = rows
    quick = bench_quick()
    assert accuracy(pred, yte) > (0.6 if quick else 0.8)
    assert scores["recall"][2] > (0.5 if quick else 0.7)  # COVID sensitivity


def test_fig4_external_generalisation(benchmark, covidx, trained):
    """'validate that Covid-Net is able to generalize well to unseen
    datasets' (the pharma-collaboration set via B2DROP)."""
    gen, (Xtr, Xte, ytr, yte) = covidx
    Xe, ye = gen.generate_external_validation(90)
    acc_ext = benchmark(lambda: accuracy(trained.predict(Xe), ye))
    acc_int = accuracy(trained.predict(Xte), yte)
    rows = [["held-out (same hospital)", f"{acc_int:.3f}"],
            ["external (unseen hospital)", f"{acc_ext:.3f}"]]
    emit_table("E7 — generalisation to the unseen dataset",
               ["evaluation set", "accuracy"], rows)
    benchmark.extra_info["generalisation"] = rows
    assert acc_ext > (0.45 if bench_quick() else 0.55)


def test_fig4_a100_vs_v100_training_time(benchmark, trained):
    """Tensor-core generation speedup for training and inference."""
    flops_train_step = 3.0 * 2.0 * trained.n_parameters() * 32 * 32 * 32
    flops_infer = 2.0 * trained.n_parameters() * 32 * 32

    def times():
        out = {}
        for gpu in (NVIDIA_V100, NVIDIA_A100):
            sustained = gpu.tensor_flops * 0.08
            out[gpu.name] = (flops_train_step / sustained,
                             flops_infer / sustained)
        return out

    modelled = benchmark(times)
    rows = [[name, f"{t_train * 1e6:.1f}", f"{t_inf * 1e6:.2f}"]
            for name, (t_train, t_inf) in modelled.items()]
    speedup = modelled["NVIDIA V100"][0] / modelled["NVIDIA A100"][0]
    rows.append(["A100/V100 speedup", f"{speedup:.1f}x", f"{speedup:.1f}x"])
    emit_table("E7 — GPU-generation time model (batch-32 step / one image)",
               ["GPU", "train step µs", "inference µs"], rows)
    benchmark.extra_info["generation_speedup"] = speedup
    assert speedup == pytest.approx(2.5, rel=0.05)


def test_fig4_dataset_growth_retraining(benchmark, covidx):
    """Sec. IV-A: COVIDx 'was extended numerous times ... we used again' —
    retraining on a grown dataset keeps accuracy (no regression)."""
    gen, (Xtr, Xte, ytr, yte) = covidx
    extra_gen = SyntheticCovidx(CxrConfig(n_samples=120, image_size=32,
                                          noise_sigma=0.02, seed=99))
    Xn, yn = extra_gen.generate()
    X_grown = np.concatenate([Xtr, Xn])
    y_grown = np.concatenate([ytr, yn])

    model = benchmark.pedantic(_train, args=(X_grown, y_grown),
                               rounds=1, iterations=1)
    acc = accuracy(model.predict(Xte), yte)
    benchmark.extra_info["grown_dataset_accuracy"] = acc
    emit_table("E7 — retraining after dataset extension",
               ["training set", "test accuracy"],
               [[f"{len(ytr)} images", ""],
                [f"{len(y_grown)} images (extended)", f"{acc:.3f}"]])
    assert acc > (0.55 if bench_quick() else 0.75)


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
