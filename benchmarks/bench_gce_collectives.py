"""E9 — Fig. 1 GCE: the ESB's FPGA collective engine vs software MPI.

The GCE 'speeds up common MPI collective operations in hardware such as
MPI reduce operations'.  We regenerate: (a) the speedup table across rank
counts and payload sizes, (b) functional equality of the offloaded result
against the software ring at real (threaded) scale, (c) software-algorithm
selection as the crossover backdrop.
"""

import numpy as np
import pytest

from repro.mpi import GlobalCollectiveEngine, gce_allreduce, run_spmd
from repro.mpi.runtime import spmd_sim_times
from repro.simnet import CollectiveCosts, CommCostModel, LinkKind

from conftest import emit_table

FABRIC = CommCostModel.of_kind(LinkKind.INFINIBAND_HDR)


def test_gce_speedup_table(benchmark):
    gce = GlobalCollectiveEngine(FABRIC)

    def table():
        rows = []
        for p in (16, 64, 256, 1024):
            for nbytes, label in ((4 << 10, "4 KiB"), (1 << 20, "1 MiB"),
                                  (100 << 20, "100 MiB")):
                sw = gce.software_allreduce_time(p, nbytes)
                hw = gce.allreduce_time(p, nbytes)
                rows.append([p, label, f"{sw * 1e6:.1f}", f"{hw * 1e6:.1f}",
                             f"{sw / hw:.1f}x"])
        return rows

    rows = benchmark(table)
    emit_table("E9 — GCE-offloaded vs software ring allreduce (µs)",
               ["ranks", "payload", "software", "GCE", "speedup"], rows)
    benchmark.extra_info["gce"] = rows

    # Latency-bound collectives gain most; gains grow with rank count.
    speedups = {(r[0], r[1]): float(r[4][:-1]) for r in rows}
    assert speedups[(1024, "4 KiB")] > speedups[(16, "4 KiB")] > 1.0
    assert all(s >= 1.0 for s in speedups.values())


def test_gce_functional_equality(benchmark):
    """Offloaded reduction computes exactly the software result."""
    gce = GlobalCollectiveEngine(FABRIC)
    rng = np.random.default_rng(0)
    data = rng.normal(size=(8, 512))
    expected = data.sum(axis=0)

    def fn(comm):
        return gce_allreduce(comm, data[comm.rank].copy(), gce)

    outs = benchmark.pedantic(lambda: run_spmd(fn, 8), rounds=1,
                              iterations=1)
    for out in outs:
        np.testing.assert_allclose(out, expected, rtol=1e-12)
    benchmark.extra_info["max_abs_err"] = float(
        max(np.abs(out - expected).max() for out in outs))


def test_gce_simulated_clock_advantage(benchmark):
    """Run the same reduction through (a) software ring over the simulated
    MPI and (b) the GCE path, and compare the simulated clocks."""
    gce = GlobalCollectiveEngine(FABRIC)
    payload = np.ones(250_000)   # 2 MB

    def software(comm):
        comm.allreduce(payload.copy())
        return comm.sim_time

    def offloaded(comm):
        gce_allreduce(comm, payload.copy(), gce)
        return comm.sim_time

    def measure():
        _, t_sw = spmd_sim_times(software, 8, cost_model=FABRIC)
        _, t_hw = spmd_sim_times(offloaded, 8, cost_model=FABRIC)
        return max(t_sw), max(t_hw)

    t_sw, t_hw = benchmark(measure)
    rows = [["software ring (8 ranks, 2 MB)", f"{t_sw * 1e6:.1f}"],
            ["GCE offload (8 ranks, 2 MB)", f"{t_hw * 1e6:.1f}"]]
    emit_table("E9 — simulated clocks through the functional MPI (µs)",
               ["path", "time µs"], rows)
    benchmark.extra_info["clocks"] = rows
    assert t_hw < t_sw


def test_software_algorithm_selection_backdrop(benchmark):
    """MPI-style auto-selection: latency-optimal for small messages,
    bandwidth-optimal for large — the regime the GCE then beats."""
    costs = CollectiveCosts(FABRIC)

    def best_for(nbytes):
        from repro.simnet.costs import best_allreduce_time

        _, name = best_allreduce_time(64, nbytes, FABRIC.alpha, FABRIC.beta,
                                      FABRIC.gamma)
        return name

    choices = benchmark(lambda: {n: best_for(n)
                                 for n in (256, 64 << 10, 64 << 20)})
    rows = [[f"{n} B", alg] for n, alg in choices.items()]
    emit_table("E9 — software allreduce auto-selection at 64 ranks",
               ["payload", "chosen algorithm"], rows)
    benchmark.extra_info["selection"] = rows
    assert choices[256] == "recursive-doubling"
    assert choices[64 << 20] in ("ring", "rabenseifner")


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
