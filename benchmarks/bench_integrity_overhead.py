"""E16 — data integrity: verification overhead and drill determinism.

Three claims about the silent-corruption layer:

* **training overhead** — running elastic data-parallel training with the
  full integrity machinery on (checksummed message envelopes on every
  hop, ABFT checksum lanes piggybacked on the gradient allreduce,
  word-sum-verified checkpoint writes) costs <10% wall time over the
  identical run with verification off.  The budget holds on
  compute-representative workloads: a training step moves ~2x batch
  FLOPs per gradient byte, so checksum arithmetic (which runs at memory
  bandwidth) amortises against the matmuls.  On pure-collective
  microbenches the simulated wire is itself just memory passes and the
  same envelopes cost 25%+ — which is why this bench times training
  steps, not bare allreduces.
* **restore overhead** — ``restore_latest_verified`` (payload word-sum +
  per-shard digest check + lineage walk) stays within 10% of a
  seed-style restore (whole-payload CRC32 + unpickle).  The word-sum
  runs ~4x faster than CRC32, so the verified path typically comes in
  *under* the baseline despite doing strictly more checking.
* **determinism** — two same-seed SDC drills render byte-identical
  report and Prometheus artifacts (the property CI's drill job relies
  on to diff runs).

Runs standalone too (CI smoke): ``python
benchmarks/bench_integrity_overhead.py --quick``.
"""

import gc
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry                              # noqa: E402
from repro.distributed.horovod import run_elastic_training  # noqa: E402
from repro.ml.models import MLP                          # noqa: E402
from repro.resilience.drill import run_sdc_drill         # noqa: E402
from repro.resilience.integrity import IntegrityConfig   # noqa: E402
from repro.resilience.policy import CheckpointPolicy     # noqa: E402
from repro.storage.checkpoint import CheckpointManager   # noqa: E402
from repro.storage.nam import NetworkAttachedMemory      # noqa: E402
from repro.storage.pfs import ParallelFileSystem         # noqa: E402

from conftest import emit_table  # noqa: E402

OVERHEAD_BUDGET = 0.10          # verified may cost at most +10% wall time

WORLD_SIZE = 4
BATCH_SIZE = 4096               # compute-heavy: amortises checksum cost
LAYERS = [64, 256, 256, 2]


def _training_data(seed: int = 0):
    rng = np.random.default_rng(seed)
    n = 2048
    X = np.concatenate([rng.normal(-2.0, 1.0, size=(n, LAYERS[0])),
                        rng.normal(2.0, 1.0, size=(n, LAYERS[0]))])
    Y = np.array([0] * n + [1] * n)
    return X, Y


def _train(X, Y, n_steps: int, verify: bool):
    """One fault-free elastic run; ``verify`` arms the integrity layer."""
    mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=4),
                            pfs=ParallelFileSystem("pfs", n_targets=4))
    with telemetry.capture():
        return run_elastic_training(
            model_factory=lambda: MLP(LAYERS, seed=3),
            X=X, Y=Y,
            n_steps=n_steps,
            batch_size=BATCH_SIZE,
            world_size=WORLD_SIZE,
            seed=0,
            checkpoint_manager=mgr,
            checkpoint_policy=CheckpointPolicy(every_steps=3,
                                               replicate=True),
            integrity_config=IntegrityConfig() if verify else None,
        )


def _timed_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best wall seconds of two functions over interleaved rounds.

    Interleaved (a, b, a, b, ...) so slow drift in machine load hits both
    sides equally, and minimum rather than mean/median: scheduler and
    allocator noise is strictly additive, so the fastest observation is
    the least-contaminated estimate of each side's intrinsic cost.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        for fn, which in ((fn_a, "a"), (fn_b, "b")):
            gc.collect()
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if which == "a":
                best_a = min(best_a, dt)
            else:
                best_b = min(best_b, dt)
    return best_a, best_b


def measure_training_overhead(n_steps: int = 6, repeats: int = 5):
    X, Y = _training_data()

    def baseline():
        _train(X, Y, n_steps, verify=False)

    def verified():
        _train(X, Y, n_steps, verify=True)

    baseline()  # warm-up both paths (imports, allocator, caches)
    verified()
    base, full = _timed_pair(baseline, verified, repeats)
    overhead = full / base - 1.0
    rows = [["verification off", f"{base * 1e3:.1f}", "-"],
            ["verification on", f"{full * 1e3:.1f}",
             f"{overhead * 100:+.1f}%"]]
    return base, full, overhead, rows


def measure_restore_overhead(repeats: int = 30):
    """Verified lineage restore vs a seed-style CRC32-and-unpickle."""
    import pickle
    import zlib

    rng = np.random.default_rng(0)
    state = {f"layer{i}": rng.normal(size=(512, 256)) for i in range(8)}
    mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=4),
                            pfs=ParallelFileSystem("pfs", n_targets=4))
    with telemetry.capture():
        mgr.save("bench", step=1, state=state)
        rec = mgr.versions("bench", "nam")[-1]
        policy = CheckpointPolicy(fallback=False)

        def seed_style():
            zlib.crc32(rec.payload)
            pickle.loads(rec.payload)

        def verified():
            mgr.restore_latest_verified("bench", policy)

        seed_style()
        verified()
        base, full = _timed_pair(seed_style, verified, repeats)
    overhead = full / base - 1.0
    nbytes = len(rec.payload)
    rows = [[f"crc32 + unpickle ({nbytes >> 20} MiB)", f"{base * 1e3:.2f}",
             "-"],
            ["verified lineage restore", f"{full * 1e3:.2f}",
             f"{overhead * 100:+.1f}%"]]
    return base, full, overhead, rows


OVERHEAD_HEADER = ["mode", "best ms", "overhead"]
DETERMINISM_HEADER = ["artifact", "bytes", "byte-identical"]


def measure_determinism(quick: bool = True):
    report_a, prom_a = run_sdc_drill(seed=0, quick=quick, verify=True)
    report_b, prom_b = run_sdc_drill(seed=0, quick=quick, verify=True)
    text_a, text_b = report_a.to_text(), report_b.to_text()
    rows = [["report.txt", len(text_a),
             "yes" if text_a == text_b else "NO"],
            ["metrics.prom", len(prom_a),
             "yes" if prom_a == prom_b else "NO"]]
    identical = text_a == text_b and prom_a == prom_b
    return identical and report_a.ok, rows


def test_training_overhead(benchmark):
    from conftest import bench_quick

    # pedantic: measure_* already repeats and takes the best run —
    # wrapping it in calibration rounds would just multiply the wall time.
    quick = bench_quick()
    base, full, overhead, rows = benchmark.pedantic(
        measure_training_overhead,
        args=(4, 3) if quick else (6, 5), rounds=1, iterations=1)
    # The quick workload is too small to amortise measurement noise, so
    # its budget is doubled; the calibrated full run keeps the real one.
    budget = 2 * OVERHEAD_BUDGET if quick else OVERHEAD_BUDGET
    emit_table("E16 — integrity overhead (elastic training, "
               f"world {WORLD_SIZE}, batch {BATCH_SIZE})",
               OVERHEAD_HEADER, rows)
    benchmark.extra_info["overhead"] = overhead
    assert overhead < budget


def test_restore_overhead(benchmark):
    base, full, overhead, rows = benchmark.pedantic(
        measure_restore_overhead, rounds=1, iterations=1)
    emit_table("E16 — verified restore vs seed-style restore",
               OVERHEAD_HEADER, rows)
    benchmark.extra_info["overhead"] = overhead
    assert overhead < OVERHEAD_BUDGET


def test_drill_determinism(benchmark):
    ok, rows = benchmark.pedantic(
        measure_determinism, args=(True,), rounds=1, iterations=1)
    emit_table("E16 — same-seed SDC drill artifacts", DETERMINISM_HEADER,
               rows)
    benchmark.extra_info["identical"] = ok
    assert ok


def main(argv=None):
    from _common import export_bench_env, parse_bench_args
    ns = parse_bench_args(argv)
    export_bench_env(ns.quick, ns.seed)
    quick = ns.quick
    steps, repeats = (4, 3) if quick else (6, 5)
    base, full, overhead, rows = measure_training_overhead(steps, repeats)
    emit_table("E16 — integrity overhead (elastic training, "
               f"world {WORLD_SIZE}, batch {BATCH_SIZE})",
               OVERHEAD_HEADER, rows)
    _, _, r_overhead, r_rows = measure_restore_overhead(
        repeats=10 if quick else 30)
    emit_table("E16 — verified restore vs seed-style restore",
               OVERHEAD_HEADER, r_rows)
    identical, det_rows = measure_determinism(quick=True)
    emit_table("E16 — same-seed SDC drill artifacts", DETERMINISM_HEADER,
               det_rows)
    failed = False
    if overhead >= OVERHEAD_BUDGET:
        print(f"FAIL: training integrity overhead {overhead * 100:.1f}% >= "
              f"{OVERHEAD_BUDGET * 100:.0f}% budget", file=sys.stderr)
        failed = True
    if r_overhead >= OVERHEAD_BUDGET:
        print(f"FAIL: verified-restore overhead {r_overhead * 100:.1f}% >= "
              f"{OVERHEAD_BUDGET * 100:.0f}% budget", file=sys.stderr)
        failed = True
    if not identical:
        print("FAIL: same-seed drill artifacts differ or drill not ok",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"ok: training overhead {overhead * 100:+.1f}%, restore "
          f"{r_overhead * 100:+.1f}% (budget {OVERHEAD_BUDGET * 100:.0f}%), "
          f"drill artifacts byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
