"""E12 — Fig. 1's federation in action: jobs within vs across modules.

Two experiments the MSA design implies:

* **cross-module allreduce penalty** — the same Horovod-style job placed
  inside the booster vs spanning booster+cluster: federation latency and
  bottleneck bandwidth slow synchronisation, which is why data-parallel
  training is placed within one module,
* **co-allocation win** — an in-situ 'solver + analytics' job run (a) as a
  co-allocated multi-module phase (solver on ESB, analytics on DAM,
  coupled over the federation) vs (b) serialised phases: co-allocation
  overlaps the components.
"""

import numpy as np
import pytest

from repro.core import (
    BoosterModule,
    ClusterModule,
    CoAllocatedPhase,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    Job,
    JobPhase,
    MSASystem,
    MsaScheduler,
    StorageModule,
    WorkloadClass,
)
from repro.mpi import run_modular_spmd
from repro.simnet.link import LinkKind

from conftest import emit_table

FABRICS = {"booster": LinkKind.INFINIBAND_HDR,
           "cluster": LinkKind.INFINIBAND_EDR}


def test_cross_module_allreduce_penalty(benchmark):
    def fn(comm):
        for _ in range(4):
            comm.allreduce(np.ones(250_000))   # 2 MB gradients
        return comm.sim_time

    def measure():
        intra = max(run_modular_spmd(fn, ["booster"] * 8, FABRICS))
        spanning = max(run_modular_spmd(
            fn, ["booster"] * 4 + ["cluster"] * 4, FABRICS))
        return intra, spanning

    intra, spanning = benchmark(measure)
    rows = [
        ["8 ranks inside the booster", f"{intra * 1e6:.0f}"],
        ["4 booster + 4 cluster ranks", f"{spanning * 1e6:.0f}"],
        ["federation penalty", f"{spanning / intra:.2f}x"],
    ]
    emit_table("E12 — 4x 2MB allreduce: within vs across modules (µs, "
               "simulated)", ["placement", "time"], rows)
    benchmark.extra_info["penalty"] = rows
    assert spanning > intra * 1.2


def _system() -> MSASystem:
    sys = MSASystem("co")
    sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 8))
    sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 8))
    sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 4))
    sys.add_module("sssm", StorageModule("S", capacity_PB=1.0))
    return sys


def _components():
    return (
        JobPhase(name="solver", workload=WorkloadClass.SIMULATION_HIGHSCALE,
                 work_flops=1e17, nodes=6, uses_gpu=True,
                 parallel_fraction=0.99),
        JobPhase(name="analytics", workload=WorkloadClass.DATA_ANALYTICS,
                 work_flops=2e15, nodes=2, memory_GB_per_node=400.0),
    )


def test_coallocation_vs_serialised_phases(benchmark):
    solver, analytics = _components()

    def run(job):
        sched = MsaScheduler(_system())
        sched.submit(job)
        return sched.run()

    coupled = Job(name="insitu", phases=[CoAllocatedPhase(
        name="insitu", components=(solver, analytics),
        coupling_bytes=50e9)])
    serial = Job(name="staged", phases=[solver, analytics])

    co_report = benchmark.pedantic(run, args=(coupled,), rounds=1,
                                   iterations=1)
    serial_report = run(serial)
    rows = [
        ["co-allocated (ESB ∥ DAM)", f"{co_report.makespan / 3600:.2f}"],
        ["serialised phases", f"{serial_report.makespan / 3600:.2f}"],
        ["overlap win",
         f"{serial_report.makespan / co_report.makespan:.2f}x"],
    ]
    emit_table("E12 — in-situ solver+analytics: co-allocation vs staging "
               "(hours)", ["mode", "makespan"], rows)
    benchmark.extra_info["coalloc"] = rows

    assert co_report.makespan < serial_report.makespan
    modules = {a.module_key for a in co_report.allocations}
    assert modules == {"esb", "dam"}


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
