"""E10 — Sec. II-A NAM: shared datasets vs duplicate downloads.

The NAM 'enables ... sharing datasets over the network instead of duplicate
downloads of datasets by individual research group members'.  We regenerate
the sharing-vs-duplication table (time, external traffic, stored copies)
and the SSSM striping sweep that backs large staged datasets.
"""

import pytest

from repro.storage import DatasetSharingStudy, NetworkAttachedMemory, ParallelFileSystem

from conftest import emit_table

GiB = 1024 ** 3


def test_nam_sharing_vs_duplicates(benchmark):
    def sweep():
        rows = []
        for members in (2, 5, 10, 20):
            study = DatasetSharingStudy(dataset_bytes=50 * GiB,
                                        n_members=members)
            base = study.baseline_duplicate_downloads()
            nam = study.nam_shared()
            rows.append([
                members,
                f"{base['wall_time_s'] / 60:.0f}",
                f"{nam['wall_time_s'] / 60:.0f}",
                f"{study.speedup():.1f}x",
                f"{study.traffic_reduction():.0f}x",
            ])
        return rows

    rows = benchmark(sweep)
    emit_table(
        "E10 — 50 GiB dataset, N group members: duplicates vs NAM",
        ["members", "duplicates min", "NAM min", "speedup",
         "traffic reduction"], rows)
    benchmark.extra_info["sharing"] = rows

    speedups = [float(r[3][:-1]) for r in rows]
    assert all(s > 1.5 for s in speedups)
    assert speedups[-1] > speedups[0]           # grows with group size
    reductions = [float(r[4][:-1]) for r in rows]
    assert reductions == [2.0, 5.0, 10.0, 20.0]  # exactly N copies saved


def test_nam_capacity_discipline(benchmark):
    """The NAM is a finite shared resource; eviction reclaims it."""
    def exercise():
        nam = NetworkAttachedMemory(capacity_GB=100.0)
        nam.stage("bigearthnet-a", 60 * GiB)
        try:
            nam.stage("bigearthnet-b", 60 * GiB)
            overflow_caught = False
        except MemoryError:
            overflow_caught = True
        nam.evict("bigearthnet-a")
        nam.stage("bigearthnet-b", 60 * GiB)
        return overflow_caught

    assert benchmark(exercise)


def test_sssm_striping_sweep(benchmark):
    """The SSSM side of staging: stripe width vs read time (Lustre-style)."""
    def sweep():
        pfs = ParallelFileSystem("JUST", n_targets=32, target_GBps=5.0)
        rows = []
        for stripes in (1, 4, 16, 32):
            handle = pfs.create(f"/covid-x-{stripes}", 120 * GiB,
                                stripe_count=stripes)
            rows.append([stripes, f"{pfs.read_time(handle):.1f}",
                         f"{pfs.aggregate_read_GBps(handle):.0f}"])
        return rows

    rows = benchmark(sweep)
    emit_table("E10 — SSSM striping: 120 GiB staged dataset",
               ["stripe count", "read s", "layout GB/s"], rows)
    benchmark.extra_info["striping"] = rows
    times = [float(r[1]) for r in rows]
    assert times == sorted(times, reverse=True)
    assert times[0] / times[-1] > 8


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
