"""E13 — Fig. 3 A: '(near) real-time processing in case of earth disasters'.

A Poisson scene stream served by an ESB inference pool on the DES engine:
latency percentiles vs offered load, and the provisioning answer — how many
nodes keep p99 under a disaster-response deadline as the scene rate grows.
"""

import pytest

from repro.core.streaming import (
    StreamingConfig,
    capacity_for_deadline,
    simulate_stream,
)

from conftest import emit_table


def test_latency_vs_load(benchmark):
    def sweep():
        rows = []
        for rate in (2.0, 6.0, 10.0, 14.0):
            config = StreamingConfig(
                arrival_rate_per_s=rate, service_time_s=0.5,
                n_servers=8, duration_s=1500.0, seed=0)
            report = simulate_stream(config)
            rows.append([
                f"{rate:.0f}",
                f"{config.offered_load:.2f}",
                f"{report.p50:.2f}",
                f"{report.p99:.2f}",
                f"{report.utilisation:.2f}",
                report.max_queue_depth,
            ])
        return rows

    rows = benchmark(sweep)
    emit_table("E13/Fig. 3 A — scene stream on 8 ESB nodes "
               "(0.5 s/scene inference)",
               ["scenes/s", "ρ", "p50 s", "p99 s", "util", "max queue"],
               rows)
    benchmark.extra_info["latency"] = rows

    p99s = [float(r[3]) for r in rows]
    assert p99s == sorted(p99s)                 # latency grows with load
    assert p99s[0] < 1.0                        # light load ≈ service time
    assert p99s[-1] > p99s[0] * 2               # saturation hurts


def test_capacity_planning_for_deadline(benchmark):
    deadline = 2.0     # seconds from scene arrival to classification

    def plan():
        rows = []
        for rate in (4.0, 8.0, 16.0):
            n, report = capacity_for_deadline(
                arrival_rate_per_s=rate, service_time_s=0.5,
                deadline_s=deadline, duration_s=800.0)
            rows.append([f"{rate:.0f}", n, f"{report.p99:.2f}",
                         f"{report.utilisation:.2f}"])
        return rows

    rows = benchmark(plan)
    emit_table(f"E13 — minimal ESB nodes for p99 ≤ {deadline:.0f} s",
               ["scenes/s", "nodes", "p99 s", "util"], rows)
    benchmark.extra_info["capacity"] = rows

    nodes = [int(r[1]) for r in rows]
    assert nodes == sorted(nodes)               # capacity grows with rate
    assert all(float(r[2]) <= deadline for r in rows)


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
