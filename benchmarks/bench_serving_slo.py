"""E14 — online serving: SLO capacity, module-aware autoscaling, failover.

Three views of the serving subsystem on the small MSA testbed:

* the **capacity surface** — p99 and goodput over arrival rate × fixed
  replica count, showing where each pool size falls over its SLO cliff,
* the **capacity point** — the minimal fixed pool holding p99 under the
  deadline at each rate,
* **autoscaling vs fixed** — the headline claim: at a rate where one
  pinned replica blows the deadline by orders of magnitude, the
  autoscaler meets it with the same hardware pool.

Runs standalone too (CI smoke): ``python benchmarks/bench_serving_slo.py
--quick`` prints the same tables from a reduced sweep, no pytest needed.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.serving import (     # noqa: E402  (path bootstrap above)
    AutoscalerConfig,
    ServingConfig,
    TraceConfig,
    simulate_serving,
)

from conftest import emit_table  # noqa: E402

#: Heavy requests (32-patch scenes) put the ESB capacity knee near 95 req/s
#: per replica — low enough to sweep past with small traces.
SAMPLES_PER_REQUEST = 32
SLO_DEADLINE_S = 0.5


def _run(rate, replicas, duration_s=30.0, autoscale=False, max_replicas=8,
         seed=0):
    config = ServingConfig(
        trace=TraceConfig(rate_per_s=rate, duration_s=duration_s,
                          slo_deadline_s=SLO_DEADLINE_S,
                          samples_per_request=SAMPLES_PER_REQUEST,
                          seed=seed, key_universe=1 << 20),
        autoscaler=AutoscalerConfig(enabled=autoscale,
                                    min_replicas=replicas if autoscale else 1,
                                    max_replicas=max_replicas),
        initial_replicas=replicas,
    )
    return simulate_serving(config)


def sweep_capacity_surface(rates, replica_counts, duration_s=30.0):
    rows = []
    for rate in rates:
        for n in replica_counts:
            rep = _run(rate, n, duration_s=duration_s)
            rows.append([
                f"{rate:.0f}", n,
                f"{rep.p99 * 1e3:.1f}",
                f"{rep.goodput_per_s:.1f}",
                f"{rep.metrics.deadline_miss_rate:.3f}",
                "yes" if rep.meets_slo() else "NO",
            ])
    return rows


def capacity_points(rates, max_replicas=8, duration_s=30.0):
    rows = []
    for rate in rates:
        for n in range(1, max_replicas + 1):
            rep = _run(rate, n, duration_s=duration_s)
            if rep.meets_slo():
                rows.append([f"{rate:.0f}", n, f"{rep.p99 * 1e3:.1f}",
                             f"{rep.goodput_per_s:.1f}"])
                break
        else:
            rows.append([f"{rate:.0f}", f">{max_replicas}", "-", "-"])
    return rows


def autoscale_vs_fixed(rate, duration_s=40.0):
    fixed = _run(rate, 1, duration_s=duration_s, autoscale=False)
    auto = _run(rate, 1, duration_s=duration_s, autoscale=True)
    rows = [
        ["fixed x1", f"{fixed.p99 * 1e3:.1f}",
         f"{fixed.goodput_per_s:.1f}", fixed.metrics.deadline_misses,
         fixed.peak_replicas, "yes" if fixed.meets_slo() else "NO"],
        ["autoscaled", f"{auto.p99 * 1e3:.1f}",
         f"{auto.goodput_per_s:.1f}", auto.metrics.deadline_misses,
         auto.peak_replicas, "yes" if auto.meets_slo() else "NO"],
    ]
    return fixed, auto, rows


SURFACE_HEADER = ["req/s", "replicas", "p99 ms", "goodput/s", "miss rate",
                  "meets SLO"]
POINT_HEADER = ["req/s", "min replicas", "p99 ms", "goodput/s"]
VS_HEADER = ["pool", "p99 ms", "goodput/s", "misses", "peak", "meets SLO"]


def test_capacity_surface(benchmark):
    rows = benchmark(sweep_capacity_surface, (60.0, 120.0, 240.0), (1, 2, 4))
    emit_table(f"E14 — serving capacity surface "
               f"(p99 SLO {SLO_DEADLINE_S * 1e3:.0f} ms, "
               f"{SAMPLES_PER_REQUEST}-patch scenes)",
               SURFACE_HEADER, rows)
    benchmark.extra_info["surface"] = rows

    by_cell = {(r[0], r[1]): r for r in rows}
    # More replicas never hurt the tail at a given rate...
    for rate in ("60", "120", "240"):
        p99s = [float(by_cell[(rate, n)][2]) for n in (1, 2, 4)]
        assert p99s[0] >= p99s[-1]
    # ...and a single replica cannot carry the heaviest rate.
    assert by_cell[("240", 1)][5] == "NO"
    assert by_cell[("240", 4)][5] == "yes"


def test_capacity_point(benchmark):
    rows = benchmark(capacity_points, (60.0, 120.0, 240.0))
    emit_table(f"E14 — minimal replicas for p99 ≤ "
               f"{SLO_DEADLINE_S * 1e3:.0f} ms", POINT_HEADER, rows)
    benchmark.extra_info["capacity"] = rows

    needed = [int(r[1]) for r in rows]
    assert needed == sorted(needed)             # capacity grows with rate
    assert needed[-1] > needed[0]               # the sweep spans the knee


def test_autoscale_beats_fixed(benchmark):
    fixed, auto, rows = benchmark(autoscale_vs_fixed, 150.0)
    emit_table("E14 — autoscaled pool vs pinned single replica at 150 req/s",
               VS_HEADER, rows)
    benchmark.extra_info["autoscale_vs_fixed"] = rows

    # The acceptance claim: same hardware, same trace — the fixed pool
    # misses the deadline, the autoscaled pool meets it.
    assert not fixed.meets_slo()
    assert auto.meets_slo()
    assert auto.goodput_per_s > fixed.goodput_per_s * 2
    assert auto.peak_replicas > 1


def main(argv=None):
    from _common import export_bench_env, parse_bench_args
    ns = parse_bench_args(argv)
    export_bench_env(ns.quick, ns.seed)
    quick = ns.quick
    if quick:
        rates, replicas, duration = (60.0, 240.0), (1, 4), 10.0
    else:
        rates, replicas, duration = (60.0, 120.0, 240.0), (1, 2, 4), 30.0
    emit_table(f"E14 — serving capacity surface "
               f"(p99 SLO {SLO_DEADLINE_S * 1e3:.0f} ms)", SURFACE_HEADER,
               sweep_capacity_surface(rates, replicas, duration_s=duration))
    emit_table(f"E14 — minimal replicas for p99 ≤ "
               f"{SLO_DEADLINE_S * 1e3:.0f} ms", POINT_HEADER,
               capacity_points(rates, duration_s=duration))
    fixed, auto, rows = autoscale_vs_fixed(150.0,
                                           duration_s=10.0 if quick else 40.0)
    emit_table("E14 — autoscaled pool vs pinned single replica at 150 req/s",
               VS_HEADER, rows)
    if fixed.meets_slo() or not auto.meets_slo():
        print("FAIL: autoscaling did not beat the fixed pool", file=sys.stderr)
        return 1
    print("ok: autoscaled pool meets the SLO the fixed pool misses")
    return 0


if __name__ == "__main__":
    sys.exit(main())
