"""E1 — Table I + Fig. 1: MSA system construction and spec validation.

Regenerates Table I (the DEEP DAM) and the JUWELS module totals the paper
quotes in Sec. II-B, and times full MSA-system construction including the
federated topology.
"""

import pytest

from repro.core import deep_system, juwels_system
from conftest import emit_table


def test_table1_deep_dam_specs(benchmark):
    deep = benchmark(deep_system)
    dam = deep.module("dam")
    spec = dam.node_spec
    rows = [
        ["CPU", "16 nodes with 2x Intel Xeon Cascade Lake",
         f"{dam.n_nodes} nodes with {spec.cpu_sockets}x {spec.cpu.name}"],
        ["GPU", "16 NVIDIA V100", f"{dam.total_gpus} {spec.gpus[0].name}"],
        ["FPGA", "16 Intel STRATIX10 PCIe3",
         f"{dam.total_fpgas} {spec.fpgas[0].name}"],
        ["DDR4/node", "384 GB", f"{spec.memory.ddr_GB:.0f} GB"],
        ["HBM2/node", "32 GB", f"{spec.memory.hbm_GB:.0f} GB"],
        ["NVMe/node", "2x 1.5 TB", f"{spec.storage.devices}x "
         f"{spec.storage.capacity_TB_each} TB"],
        ["NVM aggregate", "32 TB", f"{dam.total_nvm_GB / 1024:.0f} TB"],
    ]
    emit_table("E1/Table I — DEEP DAM: paper vs built",
               ["item", "paper", "built"], rows)
    benchmark.extra_info["table1"] = rows

    assert dam.n_nodes == 16
    assert dam.total_gpus == 16
    assert dam.total_fpgas == 16
    assert spec.memory.ddr_GB == 384.0
    assert dam.total_nvm_GB == pytest.approx(32 * 1024)


def test_table1_juwels_totals(benchmark):
    ju = benchmark(juwels_system)
    cluster_cores = (ju.module("cluster").total_cpu_cores
                     + ju.module("cluster_gpu").total_cpu_cores)
    booster_cores = (ju.module("booster").total_cpu_cores
                     + ju.module("booster_svc").total_cpu_cores)
    cluster_gpus = ju.module("cluster_gpu").total_gpus
    booster_gpus = ju.module("booster").total_gpus
    rows = [
        ["cluster nodes", 2583,
         ju.module("cluster").n_nodes + ju.module("cluster_gpu").n_nodes],
        ["cluster CPU cores", 122_768, cluster_cores],
        ["cluster GPUs", 224, cluster_gpus],
        ["booster nodes", 940,
         ju.module("booster").n_nodes + ju.module("booster_svc").n_nodes],
        ["booster CPU cores", 45_024, booster_cores],
        ["booster GPUs", 3744, booster_gpus],
    ]
    emit_table("E1 — JUWELS (Sec. II-B): paper vs built",
               ["quantity", "paper", "built"], rows)
    benchmark.extra_info["juwels"] = rows

    assert abs(cluster_cores - 122_768) / 122_768 < 0.011
    assert abs(booster_cores - 45_024) / 45_024 < 0.01
    assert cluster_gpus == 224
    assert booster_gpus == 3744


def test_federation_construction(benchmark):
    """Fig. 1's federated network over all module fabrics."""
    def build():
        deep = deep_system()
        return deep.federation

    topo = benchmark(build)
    benchmark.extra_info["terminals"] = len(topo.terminals)
    assert ("federation", 0) in topo.graph.nodes
    # Inter-module transfers cross the federation and cost more.
    deep = deep_system()
    intra = deep.module("cm").topology.transfer_time(
        ("node", 0), ("node", 1), 1e9)
    inter = deep.inter_module_transfer_time("cm", "dam", 1e9)
    assert inter > intra


def main(argv=None):
    """Standalone smoke run — common flags live in benchmarks/_common.py."""
    from _common import standalone_main
    return standalone_main(__file__, argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
