"""E15 — unified telemetry: tracing overhead and artifact determinism.

Two claims about the observability layer:

* **overhead** — running the canonical serving scenario with full
  telemetry capture (spans + metrics on every instrumented site) costs
  <15% wall time over the same run with the disabled defaults.  The
  disabled path is one attribute check per site, so most of the budget
  is the enabled path's span recording.
* **determinism** — two same-seed captures export byte-identical
  Chrome-trace / Prometheus / summary artifacts (the property the trace
  tests assert per-scenario; here it's the headline table).

Runs standalone too (CI smoke): ``python
benchmarks/bench_telemetry_overhead.py --quick``.
"""

import gc
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry                              # noqa: E402
from repro.serving.engine import ServingConfig, simulate_serving  # noqa: E402
from repro.serving.request import TraceConfig            # noqa: E402
from repro.telemetry.scenarios import trace_serving_scenario  # noqa: E402

from conftest import emit_table  # noqa: E402

OVERHEAD_BUDGET = 0.15          # traced may cost at most +15% wall time


def _workload(duration_s: float):
    """One serving run — the repo's busiest instrumentation surface."""
    config = ServingConfig(
        trace=TraceConfig(rate_per_s=150.0, duration_s=duration_s,
                          samples_per_request=16, seed=0,
                          key_universe=1 << 20),
        initial_replicas=2,
    )
    return simulate_serving(config)


def _timed_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best wall seconds of two functions over interleaved rounds.

    Interleaved (a, b, a, b, ...) so slow drift in machine load hits both
    sides equally, and minimum rather than mean/median: scheduler and
    allocator noise is strictly additive, so the fastest observation is
    the least-contaminated estimate of each side's intrinsic cost.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        for fn, which in ((fn_a, "a"), (fn_b, "b")):
            gc.collect()
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if which == "a":
                best_a = min(best_a, dt)
            else:
                best_b = min(best_b, dt)
    return best_a, best_b


def measure_overhead(duration_s: float = 20.0, repeats: int = 7):
    def untraced():
        _workload(duration_s)

    def traced():
        with telemetry.capture():
            _workload(duration_s)

    untraced()  # warm-up both paths (imports, allocator, caches)
    traced()
    base, full = _timed_pair(untraced, traced, repeats)
    overhead = full / base - 1.0
    rows = [["telemetry off", f"{base * 1e3:.1f}", "-"],
            ["telemetry on", f"{full * 1e3:.1f}", f"{overhead * 100:+.1f}%"]]
    return base, full, overhead, rows


OVERHEAD_HEADER = ["mode", "best ms", "overhead"]
DETERMINISM_HEADER = ["artifact", "bytes", "byte-identical"]


def measure_determinism(quick: bool):
    a = trace_serving_scenario(seed=0, quick=quick)
    b = trace_serving_scenario(seed=0, quick=quick)
    rows = [["trace.json", len(a.trace_json),
             "yes" if a.trace_json == b.trace_json else "NO"],
            ["metrics.prom", len(a.prometheus),
             "yes" if a.prometheus == b.prometheus else "NO"],
            ["summary.txt", len(a.summary),
             "yes" if a.summary == b.summary else "NO"]]
    identical = (a.trace_json == b.trace_json
                 and a.prometheus == b.prometheus and a.summary == b.summary)
    return identical, rows


def test_tracing_overhead(benchmark):
    # pedantic: measure_overhead already repeats and takes the best run —
    # wrapping it in calibration rounds would just multiply the wall time.
    base, full, overhead, rows = benchmark.pedantic(
        measure_overhead, rounds=1, iterations=1)
    emit_table("E15 — telemetry capture overhead (serving scenario)",
               OVERHEAD_HEADER, rows)
    benchmark.extra_info["overhead"] = overhead
    assert overhead < OVERHEAD_BUDGET


def test_artifact_determinism(benchmark):
    identical, rows = benchmark.pedantic(
        measure_determinism, args=(True,), rounds=1, iterations=1)
    emit_table("E15 — same-seed capture artifacts", DETERMINISM_HEADER, rows)
    benchmark.extra_info["identical"] = identical
    assert identical


def main(argv=None):
    from _common import export_bench_env, parse_bench_args
    ns = parse_bench_args(argv)
    export_bench_env(ns.quick, ns.seed)
    quick = ns.quick
    duration, repeats = (8.0, 5) if quick else (20.0, 7)
    base, full, overhead, rows = measure_overhead(duration, repeats)
    emit_table("E15 — telemetry capture overhead (serving scenario)",
               OVERHEAD_HEADER, rows)
    identical, det_rows = measure_determinism(quick)
    emit_table("E15 — same-seed capture artifacts", DETERMINISM_HEADER,
               det_rows)
    if overhead >= OVERHEAD_BUDGET:
        print(f"FAIL: tracing overhead {overhead * 100:.1f}% >= "
              f"{OVERHEAD_BUDGET * 100:.0f}% budget", file=sys.stderr)
        return 1
    if not identical:
        print("FAIL: same-seed artifacts differ", file=sys.stderr)
        return 1
    print(f"ok: tracing overhead {overhead * 100:+.1f}% "
          f"(budget {OVERHEAD_BUDGET * 100:.0f}%), artifacts byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
