"""Shared helpers for the per-experiment benchmark harness.

Every bench regenerates one of the paper's tables/figures (see DESIGN.md's
experiment index).  Conventions:

* the timed kernel goes through the ``benchmark`` fixture,
* the regenerated rows/series are attached to ``benchmark.extra_info`` (so
  ``--benchmark-json`` exports them) **and** echoed through
  :func:`emit_table` (visible with ``-s``; always appended to
  ``benchmarks/results.txt``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """One results.txt per bench session."""
    RESULTS_PATH.write_text("")
    yield


def emit_table(title: str, header: list[str], rows: list[list]) -> str:
    """Format, print and persist one experiment table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)]
    lines = [title, "-" * len(title)]
    lines.append("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("".join(str(c).rjust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n\n")
    return text
