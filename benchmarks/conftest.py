"""Shared helpers for the per-experiment benchmark harness.

Every bench regenerates one of the paper's tables/figures (see DESIGN.md's
experiment index).  Conventions:

* the timed kernel goes through the ``benchmark`` fixture,
* the regenerated rows/series are attached to ``benchmark.extra_info`` (so
  ``--benchmark-json`` exports them) **and** echoed through
  :func:`emit_table` (visible with ``-s``; always appended to
  ``benchmarks/results.txt``),
* workload knobs honour the common ``--quick``/``--seed`` contract via
  :func:`_common.bench_quick` / :func:`_common.bench_seed` — see
  ``benchmarks/_common.py``, which also provides each module's
  standalone ``main()``.
"""

from __future__ import annotations

import pytest

from _common import (  # noqa: F401 — shared namespace for bench modules
    RESULTS_PATH,
    bench_quick,
    bench_seed,
    emit_table,
)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """One results.txt per bench session."""
    RESULTS_PATH.write_text("")
    yield
