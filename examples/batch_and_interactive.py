#!/usr/bin/env python
"""Batch scripts, Gantt traces, co-allocation and scale-out inference.

The operator-and-user workflow layer added on top of the MSA core:

* submit ``#SBATCH``/``#PHASE`` job scripts (what the Jupyter kernels
  abstract away from medical experts — Sec. IV),
* export the resulting schedule as a Chrome-trace Gantt chart,
* run a co-allocated in-situ job (solver on the ESB ∥ analytics on the
  DAM — the conclusions' 'matching combinations of MSA module resources'),
* scale inference out across ranks and verify it is exact (the paper's
  CM-train / ESB-infer pattern).

Run:  python examples/batch_and_interactive.py
"""

import json

import numpy as np

from repro.core import (
    CoAllocatedPhase,
    Job,
    JobPhase,
    MsaScheduler,
    WorkloadClass,
    deep_system,
    schedule_workload,
)
from repro.core.batch import parse_job_script, schedule_to_chrome_trace
from repro.distributed import distributed_evaluate, inference_scaleout_time
from repro.ml import Adam, Tensor, cross_entropy
from repro.ml.models import MLP
from repro.mpi import run_spmd

SCRIPT = """#!/bin/sh
#SBATCH --job-name=rs-train-pipeline
#SBATCH --begin=0
#PHASE name=stage-bigearthnet workload=simulation-lowscale nodes=4 work=5e14 memory=64 io=120
#PHASE name=train-resnet workload=ml-training nodes=16 work=1e18 gpu tensor-cores parallel=0.998 comm=8
#PHASE name=evaluate workload=ml-inference nodes=8 work=2e16 gpu parallel=0.99
"""


def batch_section() -> None:
    print("=" * 72)
    print("Batch front end: #SBATCH/#PHASE script -> scheduler -> Gantt")
    print("=" * 72)
    job = parse_job_script(SCRIPT)
    print(f"parsed job {job.name!r}: "
          f"{[p.name for p in job.phases]}")
    report = schedule_workload(deep_system(), [job])
    for alloc in report.allocations:
        print(f"  {alloc.phase_name:<20} -> {alloc.module_key:<4} "
              f"x{len(alloc.nodes):<3} [{alloc.start:>8.0f} s "
              f"… {alloc.end:>8.0f} s]")
    trace = schedule_to_chrome_trace(report)
    print(f"Gantt trace: {len(trace['traceEvents'])} events "
          f"({len(json.dumps(trace))} bytes of chrome://tracing JSON)")


def coallocation_section() -> None:
    print("\n" + "=" * 72)
    print("Co-allocation: in-situ solver ∥ analytics across modules")
    print("=" * 72)
    solver = JobPhase(name="solver",
                      workload=WorkloadClass.SIMULATION_HIGHSCALE,
                      work_flops=1e17, nodes=6, uses_gpu=True,
                      parallel_fraction=0.99)
    analytics = JobPhase(name="analytics",
                         workload=WorkloadClass.DATA_ANALYTICS,
                         work_flops=2e15, nodes=2,
                         memory_GB_per_node=400.0)
    coupled = Job(name="insitu", phases=[CoAllocatedPhase(
        name="insitu", components=(solver, analytics),
        coupling_bytes=50e9)])
    staged = Job(name="staged", phases=[solver, analytics])

    for job in (coupled, staged):
        sched = MsaScheduler(deep_system())
        sched.submit(job)
        report = sched.run()
        print(f"{job.name:<8}: makespan {report.makespan / 3600:6.2f} h  "
              f"({', '.join(sorted({a.module_key for a in report.allocations}))})")


def inference_section() -> None:
    print("\n" + "=" * 72)
    print("Scale-out inference on the ESB (exact distributed evaluation)")
    print("=" * 72)
    rng = np.random.default_rng(0)
    X = np.concatenate([rng.normal(-2, 1, (80, 2)), rng.normal(2, 1, (80, 2))])
    y = np.array([0] * 80 + [1] * 80)
    model = MLP([2, 8, 2], seed=0)
    opt = Adam(model.parameters(), lr=0.02)
    for _ in range(40):
        loss = cross_entropy(model(Tensor(X)), y)
        model.zero_grad()
        loss.backward()
        opt.step()

    def fn(comm):
        return distributed_evaluate(comm, model.predict, X, y, n_classes=2)

    for workers in (1, 4):
        result = run_spmd(fn, workers)[0]
        print(f"{workers} rank(s): accuracy {result['accuracy']:.3f} over "
              f"{result['n_samples']} samples (bitwise identical)")

    print("\nanalytic scale-out (100k samples, 0.1 ms/sample):")
    for p in (1, 8, 32, 75):
        t = inference_scaleout_time(100_000, per_sample_s=1e-4, n_ranks=p)
        print(f"  {p:>3} ESB ranks: {t:7.2f} s")


if __name__ == "__main__":
    batch_section()
    coallocation_section()
    inference_section()
