#!/usr/bin/env python
"""Health sciences case studies (paper Sec. IV).

Three sub-studies, exactly as the paper structures them:

* **COVID-19 chest X-ray analysis** (IV-A): train a COVID-Net-style CNN on
  synthetic COVIDx, evaluate on held-out data and on an 'unseen hospital'
  external validation set, and compare V100- vs A100-generation
  training-time (the cuDNN/tensor-core speedup the paper reports),
* **ARDS time-series analysis** (IV-B): the 2×GRU(32)+dropout(0.2) model
  with MAE loss and Adam(1e-4) vs the 1-D CNN and clinical baselines for
  missing-value prediction; Berlin-definition P/F monitoring,
* **neuroscience workflows** (IV-C): the CBRAIN → Bourreau → JUWELS
  container path with DataLad-managed BigBrain data.

Run:  python examples/health_sciences.py
"""

import numpy as np

from repro.core.hardware import NVIDIA_A100, NVIDIA_V100
from repro.datasets import (
    CxrConfig,
    IcuCohort,
    IcuConfig,
    SyntheticCovidx,
    berlin_severity,
    make_imputation_windows,
)
from repro.ml import Adam, Tensor, cross_entropy, mae, train_test_split
from repro.ml.metrics import accuracy, mae_score, precision_recall_f1
from repro.ml.models import CovidNet, Cnn1dForecaster, GruForecaster
from repro.ml.models.gru_forecaster import locf_baseline, mean_baseline
from repro.workflows import (
    Bourreau,
    CbrainPortal,
    ContainerImage,
    DataLadDataset,
    NeuroTool,
)
from repro.workflows.containers import juwels_singularity


def covid_cxr_study() -> None:
    print("=" * 72)
    print("IV-A  COVID-19 chest X-ray analysis (COVID-Net on COVIDx)")
    print("=" * 72)
    gen = SyntheticCovidx(CxrConfig(n_samples=240, image_size=32,
                                    noise_sigma=0.02, seed=0))
    X, y = gen.generate()
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)

    model = CovidNet(base_width=8, n_blocks=2, seed=0)
    opt = Adam(model.parameters(), lr=3e-3)
    idx = np.arange(len(Xtr))
    rng = np.random.default_rng(0)
    for epoch in range(25):
        rng.shuffle(idx)
        for s in range(0, len(idx), 32):
            b = idx[s:s + 32]
            loss = cross_entropy(model(Tensor(Xtr[b])), ytr[b])
            model.zero_grad()
            loss.backward()
            opt.step()

    pred = model.predict(Xte)
    scores = precision_recall_f1(pred, yte, 3)
    print(f"held-out accuracy       : {accuracy(pred, yte):.3f}")
    for i, name in enumerate(("normal", "pneumonia", "covid19")):
        print(f"  {name:<10} precision={scores['precision'][i]:.2f} "
              f"recall={scores['recall'][i]:.2f}")
    Xe, ye = gen.generate_external_validation(90)
    print(f"external-hospital acc   : {accuracy(model.predict(Xe), ye):.3f} "
          "(generalisation check, Sec. IV-A)")

    # GPU-generation comparison: same model, A100 tensor cores vs V100.
    flops_per_image = 2.0 * model.n_parameters() * 32 * 32  # crude but fair
    for gpu in (NVIDIA_V100, NVIDIA_A100):
        t = flops_per_image / (gpu.tensor_flops * 0.08)
        print(f"modelled time/image on {gpu.name:<12}: {t * 1e6:7.2f} µs")
    ratio = NVIDIA_A100.tensor_tflops / NVIDIA_V100.tensor_tflops
    print(f"-> A100 generation is {ratio:.1f}x faster: 'inference and "
          "training time ... significantly faster as with GPUs of the "
          "previous generation given its tensor cores'")


def ards_study() -> None:
    print("\n" + "=" * 72)
    print("IV-B  ARDS time-series analysis (MIMIC-III-like ICU vitals)")
    print("=" * 72)
    cohort = IcuCohort(IcuConfig(n_patients=30, seed=0,
                                 min_hours=30, max_hours=60))
    records = cohort.generate()
    n_ards = sum(r.has_ards for r in records)
    print(f"cohort: {len(records)} ICU stays, {n_ards} develop ARDS")

    # Berlin-definition monitoring on one ARDS patient.
    patient = next(r for r in records if r.has_ards)
    pf = patient.pf_ratio()
    onset = patient.ards_onset_hour
    print(f"patient {patient.patient_id}: onset hour {onset}, "
          f"P/F {pf[onset - 1]:.0f} -> {pf.min():.0f} mmHg "
          f"(worst severity: {berlin_severity(float(pf.min()))})")

    target = 1  # SpO2
    X, y, _ = make_imputation_windows(records, window=8,
                                      target_channel=target)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
    print(f"imputation task: {X.shape[0]} windows of "
          f"{X.shape[1]} h x {X.shape[2]} vitals")

    def fit(model, lr=5e-3, epochs=10):
        opt = Adam(model.parameters(), lr=lr)
        idx = np.arange(len(Xtr))
        rng = np.random.default_rng(0)
        for _ in range(epochs):
            rng.shuffle(idx)
            for s in range(0, len(idx), 64):
                b = idx[s:s + 64]
                loss = mae(model(Tensor(Xtr[b])), ytr[b])
                model.zero_grad()
                loss.backward()
                opt.step()
        model.eval()
        return mae_score(model.predict(Xte), yte)

    rows = [
        ("GRU (2x32, dropout 0.2, paper model)",
         fit(GruForecaster(X.shape[2], hidden=16, seed=0))),
        ("1-D CNN",
         fit(Cnn1dForecaster(X.shape[2], channels=16, seed=0))),
        ("last observation carried forward",
         mae_score(locf_baseline(Xte, target), yte)),
        ("window mean",
         mae_score(mean_baseline(Xte, target), yte)),
    ]
    print(f"\n{'method':<40} {'MAE (standardised)':>20}")
    for name, score in rows:
        print(f"{name:<40} {score:>20.3f}")
    print("-> 'One-Dimensional CNN as promising method as well as GRUs for "
          "predicting missing values in time-series data'")


def neuroscience_study() -> None:
    print("\n" + "=" * 72)
    print("IV-C  Neuroscience: CBRAIN -> Bourreau -> JUWELS (HIBALL)")
    print("=" * 72)
    portal = CbrainPortal()
    bigbrain = DataLadDataset("bigbrain", "2020.1", size_TB=2.5)
    tool = NeuroTool(
        "bigbrain-segmentation",
        ContainerImage("bigbrain-segment", "1.0", format="docker",
                       layers=("ubuntu:20.04", "pip:nibabel", "model:unet")),
        requires_dataset=bigbrain,
    )
    portal.register_tool(tool)
    juwels = Bourreau("bourreau-juwels", "JUWELS", juwels_singularity())
    juwels.install_dataset(bigbrain)
    portal.register_bourreau(juwels)

    print(f"registered sites        : {portal.sites}")
    print(f"runnable for the tool   : "
          f"{portal.runnable_sites('bigbrain-segmentation')}")
    token = portal.launch("bigbrain-segmentation")
    print(f"execution token         : {token}")
    print("-> a neuroscientist used JUWELS 'without knowing the details of "
          "the system': Docker image auto-converted to Singularity, data "
          "via DataLad, routing via Bourreau.")


if __name__ == "__main__":
    covid_cxr_study()
    ards_study()
    neuroscience_study()
