#!/usr/bin/env python
"""Operating an MSA: scheduling, storage, the GCE, and cloud economics.

The 'operator's view' of the paper: the experiments that justify the MSA's
design decisions —

* the Fig. 2 workload-placement comparison (MSA vs homogeneous cluster vs
  homogeneous booster) on time-to-solution and energy,
* the SSSM parallel filesystem serving BigEarthNet-scale staging,
* the NAM's shared datasets vs per-group duplicate downloads,
* the ESB's FPGA Global Collective Engine vs software allreduce,
* the cloud cost reality ($24/h p3.16xlarge vs HPC grants).

Run:  python examples/msa_operations.py
      python examples/msa_operations.py --faults seed=7,crash=cm:2,straggler=esb:1

The ``--faults`` flag replays the same operations under a deterministic
fault plan (node crashes, stragglers, link degradation) and prints the
recovery report: retries, backoff, MTTR and lost node-seconds.
"""

import argparse

from repro.core import (
    ClusterModule,
    BoosterModule,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    MSASystem,
    StorageModule,
    homogeneous_system,
    schedule_workload,
    synthetic_workload_mix,
)
from repro.mpi import GlobalCollectiveEngine
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy
from repro.simnet import CommCostModel, LinkKind
from repro.storage import DatasetSharingStudy, ParallelFileSystem
from repro.workflows.cloud import AWS_P3_16XLARGE, CampaignSpec, CloudCostModel

GiB = 1024 ** 3


def fig2_placement() -> None:
    print("=" * 72)
    print("Fig. 2: mixed workloads on MSA vs homogeneous systems")
    print("=" * 72)

    def msa():
        sys = MSASystem("MSA")
        sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 64))
        sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 61))
        sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 16))
        sys.add_module("sssm", StorageModule("SSSM", capacity_PB=2.0))
        return sys

    jobs = lambda: synthetic_workload_mix(n_jobs=18, seed=7,
                                          mean_interarrival_s=120.0)
    systems = {
        "MSA (CM+ESB+DAM)": schedule_workload(msa(), jobs()),
        "cluster-only": schedule_workload(
            homogeneous_system("cluster-only", DEEP_CM_NODE, 141), jobs()),
        "booster-only": schedule_workload(
            homogeneous_system("booster-only", DEEP_ESB_NODE, 141,
                               as_booster=True), jobs()),
    }
    print(f"{'system':<18} {'makespan (h)':>13} {'turnaround (h)':>15} "
          f"{'energy (kWh)':>13}")
    for name, report in systems.items():
        print(f"{name:<18} {report.makespan / 3600:>13.1f} "
              f"{report.mean_turnaround / 3600:>15.1f} "
              f"{report.energy_kwh:>13.0f}")
    print("-> each application part on a matching module: better time to "
          "solution AND energy (the MSA's core claim).")


def storage_section() -> None:
    print("\n" + "=" * 72)
    print("SSSM: striped parallel filesystem (Lustre/GPFS class)")
    print("=" * 72)
    pfs = ParallelFileSystem("JUST", n_targets=32, target_GBps=5.0)
    for stripes in (1, 4, 16, 32):
        f = pfs.create(f"/bigearthnet-{stripes}", 120 * GiB,
                       stripe_count=stripes)
        print(f"stripe_count={stripes:>2}: 120 GiB staged in "
              f"{pfs.read_time(f):6.1f} s "
              f"({pfs.aggregate_read_GBps(f):5.0f} GB/s layout peak)")

    print("\nNAM: shared datasets vs duplicate downloads (Sec. II-A)")
    for members in (4, 10, 20):
        study = DatasetSharingStudy(dataset_bytes=50 * GiB, n_members=members)
        print(f"{members:>3} group members: NAM is {study.speedup():5.1f}x "
              f"faster, external traffic / {study.traffic_reduction():.0f}")


def gce_section() -> None:
    print("\n" + "=" * 72)
    print("ESB Global Collective Engine: in-network vs software allreduce")
    print("=" * 72)
    gce = GlobalCollectiveEngine(CommCostModel.of_kind(LinkKind.INFINIBAND_HDR))
    print(f"{'ranks':>6} {'payload':>9} {'software':>11} {'GCE':>11} "
          f"{'speedup':>8}")
    for p in (16, 64, 256, 1024):
        for nbytes, label in ((4096, "4 KiB"), (100 << 20, "100 MiB")):
            sw = gce.software_allreduce_time(p, nbytes)
            hw = gce.allreduce_time(p, nbytes)
            print(f"{p:>6} {label:>9} {sw * 1e6:>9.1f}µs {hw * 1e6:>9.1f}µs "
                  f"{sw / hw:>8.1f}x")


def cloud_section() -> None:
    print("\n" + "=" * 72)
    print("Cloud economics: why the 128-GPU studies stay on HPC grants")
    print("=" * 72)
    model = CloudCostModel(instance=AWS_P3_16XLARGE)
    campaign = CampaignSpec(n_gpus=128, hours_per_run=10, n_runs=5)
    cost = model.cloud_cost_usd(campaign)
    print(f"campaign: 128 GPUs x 10 h x 5 runs = "
          f"{campaign.gpu_hours:,.0f} GPU-hours")
    print(f"AWS p3.16xlarge @ ${AWS_P3_16XLARGE.usd_per_hour}/h: "
          f"${cost:,.0f}")
    print(f"PRACE-style HPC grant: "
          f"${model.grant_cost_usd(campaign, grant_gpu_hours=50_000):,.0f}")
    print("-> 'we need to use still the cost-free HPC computational time "
          "grants to be feasible'")


def resilience_section(faults: str) -> None:
    print("\n" + "=" * 72)
    print(f"Operating under faults: --faults {faults}")
    print("=" * 72)
    system = MSASystem("MSA")
    system.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 64))
    system.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 61))
    system.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 16))
    system.add_module("sssm", StorageModule("SSSM", capacity_PB=2.0))
    targets = {k: m.n_nodes for k, m in system.compute_modules().items()}
    plan = FaultPlan.parse(faults, targets=targets, horizon_s=4 * 3600.0)

    jobs = synthetic_workload_mix(n_jobs=18, seed=7, mean_interarrival_s=120.0)
    report = schedule_workload(
        system, jobs,
        fault_injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_retries=3, base_delay_s=30.0,
                                 backoff_factor=2.0, jitter=0.25,
                                 seed=plan.seed))
    print(report.summary())
    res = report.resilience
    for t, spec in res.faults_injected:
        where = f"{spec.module}:{spec.node}" if spec.node >= 0 else spec.module
        print(f"  t={t:>9.0f}s  {spec.kind.value:<13} {where}")
    for rq in res.requeues:
        print(f"  t={rq.time:>9.0f}s  requeued {rq.job_name} "
              f"(attempt {rq.attempt}, backoff {rq.backoff_s:.0f}s)")
    if report.failed_jobs:
        print(f"  permanently failed: {', '.join(report.failed_jobs)}")
    print("-> faults are ordinary simulated events; same plan, same seed, "
          "same schedule — every time.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Operating an MSA: scheduling, storage, GCE, cloud "
                    "economics — optionally under a deterministic fault plan.")
    parser.add_argument(
        "--faults", metavar="PLAN", default=None,
        help='fault plan, e.g. "seed=7,crash=cm:2,straggler=esb:1,'
             'degrade=cm:1,repair=600" (see FaultPlan.parse)')
    cli = parser.parse_args()
    fig2_placement()
    storage_section()
    gce_section()
    cloud_section()
    if cli.faults:
        resilience_section(cli.faults)
