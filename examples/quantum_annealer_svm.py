#!/usr/bin/env python
"""Quantum Module case study (paper Sec. III-C): SVMs on a quantum annealer.

Reproduces the lessons of refs [10]/[11]:

* SVM training cast as a QUBO and solved on a **simulated D-Wave**,
* the hardware budget in action: the 2000Q's clique capacity forces
  sub-sampling; the Advantage system (5000 qubits / 35000 couplers via
  JUNIQ) fits larger sub-problems,
* the **ensemble** construction over sub-samples, compared against a
  classical SMO-trained SVM — the QSVM approaches (not beats) it, and is
  binary-only.

Run:  python examples/quantum_annealer_svm.py
"""

import time

import numpy as np

from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.ml import train_test_split
from repro.quantum import (
    DWAVE_2000Q,
    DWAVE_ADVANTAGE,
    QSvmEnsemble,
    QuantumSVM,
    SimulatedQuantumAnnealer,
)
from repro.quantum.annealer import EmbeddingError
from repro.svm import SVC


def main() -> None:
    # Binary RS problem: water vs vegetation pixels.
    spectra, labels = SyntheticBigEarthNet(BigEarthNetConfig(
        n_classes=10, seed=5, noise_sigma=0.03)).pixels(400)
    keep = np.isin(labels, (4, 8))          # broadleaf-forest vs water-body
    X = spectra[keep]
    y = np.where(labels[keep] == 8, 1.0, -1.0)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=0)
    print(f"binary RS task: {len(ytr)} train / {len(yte)} test pixels")

    print("\n" + "=" * 72)
    print("Device budgets (the sub-sampling constraint)")
    print("=" * 72)
    for device in (DWAVE_2000Q, DWAVE_ADVANTAGE):
        annealer = SimulatedQuantumAnnealer.for_device(device, sweeps=60)
        qsvm = QuantumSVM(annealer, kernel="rbf", gamma=2.0, n_bits=2)
        print(f"{device.name:<10}: {device.n_qubits} qubits, "
              f"{device.n_couplers} couplers, K_{device.max_clique} cliques "
              f"-> max {qsvm.max_training_samples()} samples per anneal")

    print("\nAttempting to train on the full set on the 2000Q:")
    annealer_2000 = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=60)
    try:
        QuantumSVM(annealer_2000, kernel="rbf", gamma=2.0).fit(Xtr, ytr)
    except EmbeddingError as exc:
        print(f"  EmbeddingError: {exc}")
        print("  -> exactly the paper's limitation: 'the requirement to "
              "sub-sample from large quantities of data'")

    print("\n" + "=" * 72)
    print("QSVM ensembles vs classical SVM")
    print("=" * 72)
    rows = []
    t0 = time.time()
    classical = SVC(kernel="rbf", gamma=2.0).fit(Xtr, ytr)
    rows.append(("classical SVM (SMO, full data)",
                 classical.score(Xte, yte), time.time() - t0))

    for device in (DWAVE_2000Q, DWAVE_ADVANTAGE):
        annealer = SimulatedQuantumAnnealer.for_device(device, sweeps=60)
        t0 = time.time()
        ens = QSvmEnsemble(annealer, n_members=3, kernel="rbf", gamma=2.0,
                           num_reads=8, n_solutions=3).fit(Xtr, ytr)
        member_n = len(ens.members_[0].y_)
        rows.append((f"QSVM ensemble on {device.name} "
                     f"(3 x {member_n}-sample members)",
                     ens.score(Xte, yte), time.time() - t0))

    print(f"{'method':<52} {'accuracy':>9} {'time':>7}")
    for name, acc, t in rows:
        print(f"{name:<52} {acc:>9.3f} {t:>6.1f}s")
    print("\n-> QA 'enables new approaches for RS research, but are still "
          "limited by having only binary classification or the requirement "
          "to sub-sample ... and using ensemble methods' — and the larger "
          "Advantage budget allows bigger sub-problems per anneal.")


if __name__ == "__main__":
    main()
