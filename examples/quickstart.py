#!/usr/bin/env python
"""Quickstart: build an MSA system, run distributed training on it.

Walks through the library's three core layers in ~a minute of laptop time:

1. construct the DEEP modular supercomputer (Fig. 1 / Table I of the paper)
   and inspect its modules,
2. schedule a small heterogeneous workload mix onto it (Fig. 2),
3. run real Horovod-style data-parallel training of a small ResNet on
   synthetic BigEarthNet patches over the simulated MPI, and check that
   accuracy is invariant in the number of workers (Fig. 3's key claim).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import deep_system, schedule_workload, synthetic_workload_mix
from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.distributed import DistributedOptimizer, broadcast_parameters
from repro.ml import Adam, ArrayDataset, DistributedDataLoader, Tensor, cross_entropy
from repro.ml.metrics import accuracy
from repro.ml.models import resnet_small
from repro.mpi import run_spmd


def show_the_machine() -> None:
    print("=" * 72)
    print("1. The DEEP modular supercomputer (Sec. II-B, Table I)")
    print("=" * 72)
    deep = deep_system()
    print(deep.describe())
    dam = deep.module("dam")
    print(f"\nDAM aggregate NVM: {dam.total_nvm_GB / 1024:.0f} TB "
          "(the paper: 'an aggregated 32 TB of NVM')")


def schedule_some_jobs() -> None:
    print("\n" + "=" * 72)
    print("2. Heterogeneous workload scheduling (Fig. 2)")
    print("=" * 72)
    jobs = synthetic_workload_mix(n_jobs=8, seed=1, mean_interarrival_s=60.0)
    report = schedule_workload(deep_system(), jobs)
    print(report.summary())
    print("\nphase placements:")
    for alloc in report.allocations[:10]:
        print(f"  {alloc.job_name:>18} / {alloc.phase_name:<14} -> "
              f"{alloc.module_key:<5} x{len(alloc.nodes)} nodes "
              f"({alloc.duration:,.0f} s)")


def train_distributed() -> None:
    print("\n" + "=" * 72)
    print("3. Horovod-style distributed DL training (Fig. 3)")
    print("=" * 72)
    ds = SyntheticBigEarthNet(BigEarthNetConfig(
        n_samples=160, patch_size=8, n_classes=4, seed=0))
    X, y = ds.generate()
    cut = 120
    Xtr, ytr, Xte, yte = X[:cut], y[:cut], X[cut:], y[cut:]

    def train(comm):
        model = resnet_small(in_channels=12, n_classes=4, seed=0)
        broadcast_parameters(model, comm)
        opt = DistributedOptimizer(Adam(model.parameters(), lr=3e-3), comm)
        loader = DistributedDataLoader(
            ArrayDataset(Xtr, ytr), batch_size=max(1, 40 // comm.size),
            rank=comm.rank, world_size=comm.size, seed=1)
        for epoch in range(25):
            loader.set_epoch(epoch)
            for xb, yb in loader:
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return (accuracy(model.predict(Xte), yte), comm.sim_time)

    print(f"{'workers':>8} {'test acc':>9} {'simulated comm time':>20}")
    for workers in (1, 2, 4):
        acc, sim_t = run_spmd(train, workers)[0]
        print(f"{workers:>8} {acc:>9.2f} {sim_t * 1e3:>17.2f} ms")
    print("\n-> accuracy holds as workers scale: the paper's 'significant "
          "speed-up of training time without loosing accuracy'.")


if __name__ == "__main__":
    show_the_machine()
    schedule_some_jobs()
    train_distributed()
