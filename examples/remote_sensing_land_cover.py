#!/usr/bin/env python
"""Remote sensing case study (paper Sec. III): land-cover classification.

Reproduces the RS workflow end to end:

* synthetic BigEarthNet multispectral patches (the paper's [19] corpus),
* the **parallel cascade SVM** on CPU partitions — the paper's MPI SVM
  package [16] for when data is 'relatively moderate (i.e., DL not always
  successful)',
* **distributed ResNet training** with Horovod-style ring allreduce,
* the **Fig. 3 scaling study** at paper scale (1 → 128 A100 GPUs) via the
  calibrated performance model, including the Sedona-et-al.-tuned 128-GPU
  configuration [20].

Run:  python examples/remote_sensing_land_cover.py
"""

import time

import numpy as np

from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.distributed import DistributedTrainingPerfModel
from repro.ml import train_test_split
from repro.mpi import run_spmd
from repro.svm import SVC, MulticlassSVC
from repro.svm.cascade import cascade_train, serial_train


def parallel_svm_section() -> None:
    print("=" * 72)
    print("Parallel cascade SVM on the Cluster Module (paper ref [16])")
    print("=" * 72)
    # Per-pixel spectra: a moderate-size, SVM-friendly problem.
    spectra, labels = SyntheticBigEarthNet(BigEarthNetConfig(
        n_classes=2, seed=3, noise_sigma=0.03)).pixels(800)
    y = np.where(labels == 0, -1.0, 1.0)
    Xtr, Xte, ytr, yte = train_test_split(spectra, y, test_fraction=0.25,
                                          seed=0)

    machine, t_serial = serial_train(Xtr, ytr,
                                     template=SVC(kernel="rbf", gamma=2.0))
    print(f"serial SMO      : acc={machine.score(Xte, yte):.3f} "
          f"train={t_serial * 1e3:7.1f} ms")

    for p in (2, 4, 8):
        def fn(comm):
            shard = np.arange(comm.rank, len(ytr), comm.size)
            return cascade_train(comm, Xtr[shard], ytr[shard],
                                 template=SVC(kernel="rbf", gamma=2.0))

        t0 = time.perf_counter()
        result = run_spmd(fn, p)[0]
        wall = time.perf_counter() - t0
        print(f"cascade p={p:<2}    : acc={result.score(Xte, yte):.3f} "
              f"wall={wall * 1e3:7.1f} ms  "
              f"(sv exchanged: {result.total_sv_exchanged})")


def scaling_study_section() -> None:
    print("\n" + "=" * 72)
    print("Fig. 3: ResNet-50 / BigEarthNet scaling on the JUWELS booster")
    print("=" * 72)
    model = DistributedTrainingPerfModel()   # A100s, InfiniBand HDR
    print(f"model: {model.model_shape.name}, "
          f"{model.model_shape.n_parameters / 1e6:.1f} M parameters")
    print(f"\n{'GPUs':>5} {'epoch (s)':>10} {'speedup':>9} "
          f"{'efficiency':>11} {'comm frac':>10}")
    for pt in model.scaling_curve([1, 2, 4, 8, 16, 32, 64, 96, 128]):
        print(f"{pt.n_gpus:>5} {pt.epoch_time_s:>10.1f} {pt.speedup:>9.1f} "
              f"{pt.efficiency:>11.2f} {pt.comm_fraction:>10.2f}")

    tuned = model.with_recipe(model.recipe.tuned())
    t96 = model.scaling_curve([96])[0]
    t128 = tuned.scaling_curve([128])[0]
    print(f"\ninitial study @ 96 GPUs : speedup {t96.speedup:6.1f} "
          f"(efficiency {t96.efficiency:.2f})")
    print(f"tuned [20]   @ 128 GPUs : speedup {t128.speedup:6.1f} "
          f"(efficiency {t128.efficiency:.2f})")
    print("-> 'even a better speed-up on JUWELS using 128 interconnected "
          "GPUs after having more experience with Horovod'")


def multiclass_svm_section() -> None:
    print("\n" + "=" * 72)
    print("Multi-class land-cover SVM (one-vs-rest over CORINE classes)")
    print("=" * 72)
    ds = SyntheticBigEarthNet(BigEarthNetConfig(n_classes=5, seed=7,
                                                noise_sigma=0.02))
    spectra, labels = ds.pixels(600)
    Xtr, Xte, ytr, yte = train_test_split(spectra, labels,
                                          test_fraction=0.25, seed=1)
    clf = MulticlassSVC(kernel="rbf", gamma=2.0).fit(Xtr, ytr)
    print(f"5-class pixel classification accuracy: "
          f"{clf.score(Xte, yte):.3f}")


if __name__ == "__main__":
    parallel_svm_section()
    scaling_study_section()
    multiclass_svm_section()
