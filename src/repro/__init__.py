"""repro — reproduction of *Practice and Experience in using Parallel and
Scalable Machine Learning with Heterogenous Modular Supercomputing
Architectures* (Riedel et al., 2021).

The package rebuilds the paper's full stack as a laptop-runnable simulation:

==================  =========================================================
``repro.simnet``    discrete-event engine, interconnect topologies, alpha-beta
                    collective cost models
``repro.core``      the MSA itself: modules (CM/ESB/DAM/SSSM/NAM/QM), DEEP
                    and JUWELS presets, heterogeneous workload scheduling,
                    energy accounting
``repro.mpi``       in-process SPMD MPI (mpi4py-flavoured) with real
                    collective algorithms and simulated clocks, plus the
                    FPGA Global Collective Engine
``repro.storage``   Lustre-like parallel filesystem, Network Attached
                    Memory, DAM memory tiers
``repro.ml``        NumPy autograd DL framework (layers, GRU, ResNet,
                    COVID-Net, optimisers, data pipeline)
``repro.distributed``  Horovod-style data parallelism, DeepSpeed-ZeRO-style
                    sharding, the Fig. 3 scaling performance model
``repro.svm``       SMO + MPI cascade SVM (the paper's parallel SVM, [16])
``repro.quantum``   simulated quantum annealer (2000Q / Advantage budgets)
                    and the QUBO SVM with ensembles ([10], [11])
``repro.analytics`` mini-Spark RDD engine + MLlib-like algorithms (DAM)
``repro.datasets``  synthetic BigEarthNet / COVIDx / MIMIC-III stand-ins
``repro.workflows`` container/Jupyter/CBRAIN interoperability and cloud
                    cost models
==================  =========================================================

See ``DESIGN.md`` for the substitution table and per-experiment index, and
``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "simnet",
    "core",
    "mpi",
    "storage",
    "ml",
    "distributed",
    "svm",
    "quantum",
    "analytics",
    "datasets",
    "workflows",
]
