"""Spark-style data analytics for the DAM (Sec. III-B, Fig. 3 R).

The paper's DAM exists to run "big data analytics stacks like Apache Spark
that require a high amount of memory to work fast".  This package rebuilds
the needed slice of that stack:

* :mod:`repro.analytics.rdd` — a mini RDD engine: lazy, lineage-tracked,
  partitioned collections with map/filter/reduceByKey/join and
  memory-accounted caching against a :class:`~repro.storage.tiers.TieredStore`,
* :mod:`repro.analytics.mllib` — MLlib-like algorithms on RDDs: logistic
  regression (treeAggregate-style gradient aggregation), k-means, and the
  random-forest classifier the paper's footnote highlights.
"""

from repro.analytics.rdd import MiniSparkContext, RDD
from repro.analytics.dask_like import Delayed, delayed, compute
from repro.analytics.mllib import (
    RddLogisticRegression,
    RddKMeans,
    RandomForest,
    DecisionTree,
)

__all__ = [
    "MiniSparkContext",
    "RDD",
    "Delayed",
    "delayed",
    "compute",
    "RddLogisticRegression",
    "RddKMeans",
    "RandomForest",
    "DecisionTree",
]
