"""A Dask-like delayed task graph (the paper's Jupyter companion tool).

Sec. III-B: "To use Jupyter straightforward with DL packages and Dask
[22] ... we usually define our own Kernel".  Dask's core abstraction is the
*delayed* computation: calls build a task DAG which a scheduler executes
with maximal sharing (each task once) and optional thread parallelism.

This mini implementation provides:

* :func:`delayed` — wrap a function so calls build graph nodes instead of
  executing,
* :meth:`Delayed.compute` — execute the DAG (topologically, each node
  once, even when referenced repeatedly — the diamond-sharing property),
* :func:`compute` — evaluate several delayed values with a *shared* cache,
* a threaded executor for embarrassing parallelism across independent
  branches (NumPy releases the GIL).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

_id_counter = itertools.count()


class Delayed:
    """A node in a lazy task graph."""

    __slots__ = ("func", "args", "kwargs", "key", "name")

    def __init__(self, func: Callable, args: tuple, kwargs: dict,
                 name: str = "") -> None:
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.key = next(_id_counter)
        self.name = name or getattr(func, "__name__", "task")

    def __repr__(self) -> str:
        return f"Delayed({self.name}#{self.key})"

    # -- graph construction sugar -----------------------------------------
    def __add__(self, other: Any) -> "Delayed":
        return delayed(lambda a, b: a + b, name="add")(self, other)

    def __mul__(self, other: Any) -> "Delayed":
        return delayed(lambda a, b: a * b, name="mul")(self, other)

    __radd__ = __add__
    __rmul__ = __mul__

    # -- execution -----------------------------------------------------------
    def _dependencies(self) -> list["Delayed"]:
        deps = [a for a in self.args if isinstance(a, Delayed)]
        deps += [v for v in self.kwargs.values() if isinstance(v, Delayed)]
        return deps

    def compute(self, n_workers: int = 1,
                _cache: Optional[dict] = None) -> Any:
        """Evaluate the graph below this node.

        ``n_workers > 1`` executes independent ready tasks concurrently.
        A shared ``_cache`` lets :func:`compute` evaluate several outputs
        without recomputing common subgraphs.
        """
        cache: dict[int, Any] = _cache if _cache is not None else {}
        order = self._topological_order(cache)
        if n_workers <= 1:
            for node in order:
                cache[node.key] = node._run(cache)
            return cache[self.key]
        return self._parallel_execute(order, cache, n_workers)

    def _topological_order(self, cache: dict) -> list["Delayed"]:
        order: list[Delayed] = []
        seen: set[int] = set()
        stack: list[tuple["Delayed", bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node.key in seen or node.key in cache:
                continue
            seen.add(node.key)
            stack.append((node, True))
            for dep in node._dependencies():
                if dep.key not in seen and dep.key not in cache:
                    stack.append((dep, False))
        return order

    def _run(self, cache: dict) -> Any:
        args = [cache[a.key] if isinstance(a, Delayed) else a
                for a in self.args]
        kwargs = {k: cache[v.key] if isinstance(v, Delayed) else v
                  for k, v in self.kwargs.items()}
        return self.func(*args, **kwargs)

    def _parallel_execute(self, order: list["Delayed"], cache: dict,
                          n_workers: int) -> Any:
        remaining = {node.key: node for node in order}
        dependents: dict[int, list[int]] = {}
        blockers: dict[int, int] = {}
        for node in order:
            deps = [d for d in node._dependencies() if d.key in remaining]
            blockers[node.key] = len(deps)
            for dep in deps:
                dependents.setdefault(dep.key, []).append(node.key)
        lock = threading.Lock()
        done = threading.Event()
        errors: list[BaseException] = []

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            def submit_ready(keys):
                for key in keys:
                    pool.submit(run_one, remaining[key])

            def run_one(node: "Delayed") -> None:
                try:
                    result = node._run(cache)
                except BaseException as exc:   # noqa: BLE001
                    with lock:
                        errors.append(exc)
                        done.set()
                    return
                newly_ready = []
                with lock:
                    cache[node.key] = result
                    del remaining[node.key]
                    for dep_key in dependents.get(node.key, ()):
                        blockers[dep_key] -= 1
                        if blockers[dep_key] == 0:
                            newly_ready.append(dep_key)
                    if not remaining:
                        done.set()
                submit_ready(newly_ready)

            with lock:
                initial = [k for k, node in remaining.items()
                           if blockers[k] == 0]
            submit_ready(initial)
            if order:
                done.wait()
        if errors:
            raise errors[0]
        return cache[self.key]


def delayed(func: Callable, name: str = "") -> Callable[..., Delayed]:
    """Wrap ``func`` so calls build :class:`Delayed` nodes."""
    def wrapper(*args, **kwargs) -> Delayed:
        return Delayed(func, args, kwargs, name=name)

    wrapper.__name__ = f"delayed({getattr(func, '__name__', 'func')})"
    return wrapper


def compute(*values: Delayed, n_workers: int = 1) -> tuple:
    """Evaluate several delayed values with one shared cache."""
    cache: dict[int, Any] = {}
    out = []
    for value in values:
        if isinstance(value, Delayed):
            out.append(value.compute(n_workers=n_workers, _cache=cache))
        else:
            out.append(value)
    return tuple(out)
