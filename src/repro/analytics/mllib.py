"""MLlib-like algorithms on the mini-Spark RDD engine.

The paper's DAM analytics footnote points at Spark MLlib's
classification/regression stack ("robust classifiers often used", naming
the random forest).  Provided here:

* :class:`RddLogisticRegression` — binary logistic regression whose
  gradient is computed with ``treeAggregate`` over partitions (MLlib's
  exact execution pattern),
* :class:`RddKMeans` — Lloyd's algorithm with partition-local statistics,
* :class:`DecisionTree` / :class:`RandomForest` — CART trees with Gini
  impurity; the forest trains its trees partition-parallel on bootstrap
  samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics.rdd import MiniSparkContext, RDD


# ---------------------------------------------------------------------------
# logistic regression (treeAggregate gradients)
# ---------------------------------------------------------------------------

class RddLogisticRegression:
    """Binary logistic regression over (x, y) row RDDs, y ∈ {0, 1}."""

    def __init__(self, n_features: int, lr: float = 0.5,
                 n_iterations: int = 50, l2: float = 1e-4) -> None:
        if n_features < 1 or n_iterations < 1:
            raise ValueError("n_features and n_iterations must be >= 1")
        self.n_features = n_features
        self.lr = lr
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self.loss_history: list[float] = []

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))

    def fit(self, rows: RDD) -> "RddLogisticRegression":
        n_total = rows.count()
        if n_total == 0:
            raise ValueError("empty training RDD")
        for _ in range(self.n_iterations):
            w, b = self.weights, self.bias

            def seq_op(acc, row):
                gw, gb, loss, n = acc
                x, y = row
                p = float(self._sigmoid(np.dot(w, x) + b))
                err = p - y
                gw = gw + err * np.asarray(x)
                gb += err
                eps = 1e-12
                loss += -(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
                return (gw, gb, loss, n + 1)

            def comb_op(a, c):
                return (a[0] + c[0], a[1] + c[1], a[2] + c[2], a[3] + c[3])

            zero = (np.zeros(self.n_features), 0.0, 0.0, 0)
            gw, gb, loss, n = rows.tree_aggregate(zero, seq_op, comb_op)
            gw = gw / n + self.l2 * self.weights
            gb /= n
            self.weights = self.weights - self.lr * gw
            self.bias = self.bias - self.lr * gb
            self.loss_history.append(loss / n)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._sigmoid(np.asarray(X) @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())


# ---------------------------------------------------------------------------
# k-means
# ---------------------------------------------------------------------------

class RddKMeans:
    """Lloyd's algorithm with per-partition sufficient statistics."""

    def __init__(self, k: int, n_iterations: int = 20, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.n_iterations = n_iterations
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")

    def fit(self, rows: RDD) -> "RddKMeans":
        sample = rows.take(max(self.k * 10, 50))
        if len(sample) < self.k:
            raise ValueError("fewer points than clusters")
        rng = np.random.default_rng(self.seed)
        pick = rng.choice(len(sample), size=self.k, replace=False)
        centroids = np.asarray([sample[i] for i in pick], dtype=np.float64)

        for _ in range(self.n_iterations):
            def seq_op(acc, x):
                sums, counts, inertia = acc
                x = np.asarray(x, dtype=np.float64)
                d = ((centroids - x) ** 2).sum(axis=1)
                j = int(d.argmin())
                sums[j] = sums[j] + x
                counts[j] += 1
                return (sums, counts, inertia + float(d[j]))

            def comb_op(a, b):
                return ([sa + sb for sa, sb in zip(a[0], b[0])],
                        [ca + cb for ca, cb in zip(a[1], b[1])],
                        a[2] + b[2])

            zero = ([np.zeros(centroids.shape[1]) for _ in range(self.k)],
                    [0] * self.k, 0.0)
            sums, counts, inertia = rows.tree_aggregate(zero, seq_op, comb_op)
            new = centroids.copy()
            for j in range(self.k):
                if counts[j] > 0:
                    new[j] = sums[j] / counts[j]
            self.inertia_ = inertia
            if np.allclose(new, centroids, atol=1e-9):
                centroids = new
                break
            centroids = new
        self.centroids = centroids
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise RuntimeError("fit before predicting")
        X = np.asarray(X, dtype=np.float64)
        d = ((X[:, None, :] - self.centroids[None, :, :]) ** 2).sum(axis=2)
        return d.argmin(axis=1)


# ---------------------------------------------------------------------------
# decision tree + random forest
# ---------------------------------------------------------------------------

@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    prediction: int = 0
    is_leaf: bool = False


class DecisionTree:
    """CART classifier with Gini impurity and depth/size limits."""

    def __init__(self, max_depth: int = 6, min_samples_split: int = 4,
                 max_features: Optional[int] = None, seed: int = 0) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.root: Optional[_TreeNode] = None
        self.n_classes_: int = 0

    @staticmethod
    def _gini(counts: np.ndarray) -> float:
        total = counts.sum()
        if total == 0:
            return 0.0
        p = counts / total
        return float(1.0 - (p ** 2).sum())

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    rng: np.random.Generator) -> Optional[tuple[int, float, float]]:
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = rng.choice(d, size=self.max_features, replace=False)
        parent_counts = np.bincount(y, minlength=self.n_classes_)
        parent_gini = self._gini(parent_counts)
        best = None
        best_gain = 1e-9
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            left = np.zeros(self.n_classes_, dtype=np.int64)
            right = parent_counts.copy()
            for i in range(n - 1):
                left[ys[i]] += 1
                right[ys[i]] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                nl, nr = i + 1, n - i - 1
                gain = parent_gini - (
                    nl * self._gini(left) + nr * self._gini(right)
                ) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (int(f), float(0.5 * (xs[i] + xs[i + 1])), gain)
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int,
              rng: np.random.Generator) -> _TreeNode:
        counts = np.bincount(y, minlength=self.n_classes_)
        majority = int(counts.argmax())
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or counts.max() == len(y)):
            return _TreeNode(prediction=majority, is_leaf=True)
        split = self._best_split(X, y, rng)
        if split is None:
            return _TreeNode(prediction=majority, is_leaf=True)
        f, thr, _ = split
        mask = X[:, f] <= thr
        node = _TreeNode(feature=f, threshold=thr)
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        node.prediction = majority
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) == 0:
            raise ValueError("empty training set")
        self.n_classes_ = int(y.max()) + 1
        rng = np.random.default_rng(self.seed)
        self.root = self._grow(X, y, 0, rng)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("fit before predicting")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X), dtype=np.int64)
        for i, x in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())


class RandomForest:
    """Bagged CART trees; training parallelises over RDD partitions."""

    def __init__(self, n_trees: int = 10, max_depth: int = 6,
                 max_features: Optional[int] = None, seed: int = 0) -> None:
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray,
            ctx: Optional[MiniSparkContext] = None) -> "RandomForest":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))

        def train_one(tree_idx: int) -> DecisionTree:
            rng = np.random.default_rng(self.seed + tree_idx)
            boot = rng.integers(0, n, size=n)
            tree = DecisionTree(max_depth=self.max_depth,
                                max_features=max_features,
                                seed=self.seed + tree_idx)
            tree.fit(X[boot], y[boot])
            return tree

        if ctx is not None:
            # Distribute tree indices over the RDD engine's partitions —
            # MLlib's embarrassingly-parallel forest pattern.
            rdd = ctx.parallelize(range(self.n_trees), name="forest-trees")
            self.trees_ = rdd.map(train_one).collect()
        else:
            self.trees_ = [train_one(i) for i in range(self.n_trees)]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("fit before predicting")
        votes = np.stack([t.predict(X) for t in self.trees_], axis=1)
        n_classes = max(t.n_classes_ for t in self.trees_)
        out = np.empty(len(X), dtype=np.int64)
        for i in range(len(X)):
            out[i] = np.bincount(votes[i], minlength=n_classes).argmax()
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
