"""A mini Spark: lazy, partitioned, lineage-tracked RDDs.

Semantics follow Spark's: transformations (``map``, ``filter``,
``flatMap``, ``mapPartitions``, ``reduceByKey``, ``join``, ``union``) are
lazy and build a lineage DAG; actions (``collect``, ``count``, ``reduce``,
``take``, ``sum``) trigger evaluation.  ``cache()`` materialises partitions
and charges their size to a :class:`~repro.storage.tiers.TieredStore`, so
the DAM-vs-cluster memory experiments (E5) can measure how much of a
working set stays in DRAM-class tiers.

Execution is deterministic, partition-at-a-time; hash partitioning drives
the shuffle for key-based operations.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Iterable, Optional

from repro.storage.tiers import TieredStore


def _default_partitioner(key: Any, n: int) -> int:
    return hash(key) % n


def _sizeof(partitions: list[list]) -> int:
    """Rough in-memory footprint of materialised partitions."""
    total = 0
    for part in partitions:
        total += sys.getsizeof(part)
        for item in part[:64]:
            total += sys.getsizeof(item)
        if len(part) > 64:
            # Extrapolate from the sample to avoid O(n) sizeof on big data.
            sample = sum(sys.getsizeof(i) for i in part[:64]) / 64
            total += int(sample * (len(part) - 64))
    return total


class RDD:
    """A lazy, partitioned collection."""

    def __init__(self, ctx: "MiniSparkContext",
                 compute: Callable[[], list[list]],
                 name: str = "rdd",
                 parents: tuple["RDD", ...] = ()) -> None:
        self.ctx = ctx
        self._compute = compute
        self.name = name
        self.parents = parents
        self._cached: Optional[list[list]] = None
        self._cache_requested = False

    # -- evaluation -------------------------------------------------------
    def _partitions(self) -> list[list]:
        if self._cached is not None:
            self.ctx.cache_hits += 1
            return self._cached
        parts = self._compute()
        if self._cache_requested:
            self._cached = parts
            self.ctx._account_cache(self.name, parts)
        return parts

    def cache(self) -> "RDD":
        """Materialise on first evaluation; charge the memory tiers."""
        self._cache_requested = True
        return self

    def unpersist(self) -> "RDD":
        if self._cached is not None:
            self.ctx._release_cache(self.name)
            self._cached = None
        self._cache_requested = False
        return self

    @property
    def n_partitions(self) -> int:
        return self.ctx.n_partitions

    # -- transformations (lazy) --------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        def compute():
            return [[fn(x) for x in part] for part in self._partitions()]
        return RDD(self.ctx, compute, name=f"{self.name}.map", parents=(self,))

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        def compute():
            return [[x for x in part if pred(x)] for part in self._partitions()]
        return RDD(self.ctx, compute, name=f"{self.name}.filter", parents=(self,))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        def compute():
            return [[y for x in part for y in fn(x)] for part in self._partitions()]
        return RDD(self.ctx, compute, name=f"{self.name}.flatMap", parents=(self,))

    def map_partitions(self, fn: Callable[[list], Iterable[Any]]) -> "RDD":
        def compute():
            return [list(fn(part)) for part in self._partitions()]
        return RDD(self.ctx, compute, name=f"{self.name}.mapPartitions",
                   parents=(self,))

    def union(self, other: "RDD") -> "RDD":
        if other.ctx is not self.ctx:
            raise ValueError("RDDs belong to different contexts")
        def compute():
            a, b = self._partitions(), other._partitions()
            return [pa + pb for pa, pb in zip(a, b)]
        return RDD(self.ctx, compute, name=f"{self.name}.union",
                   parents=(self, other))

    # -- shuffles --------------------------------------------------------------
    def _shuffle_by_key(self, parts: list[list]) -> list[list]:
        n = self.ctx.n_partitions
        out: list[list] = [[] for _ in range(n)]
        for part in parts:
            for kv in part:
                if not (isinstance(kv, tuple) and len(kv) == 2):
                    raise TypeError("key-based operations need (key, value) pairs")
                out[_default_partitioner(kv[0], n)].append(kv)
        self.ctx.shuffles += 1
        self.ctx.shuffled_records += sum(len(p) for p in out)
        return out

    def reduce_by_key(self, fn: Callable[[Any, Any], Any]) -> "RDD":
        def compute():
            # Map-side combine first (Spark's combiner), then shuffle.
            combined = []
            for part in self._partitions():
                acc: dict = {}
                for k, v in part:
                    acc[k] = fn(acc[k], v) if k in acc else v
                combined.append(list(acc.items()))
            shuffled = self._shuffle_by_key(combined)
            out = []
            for part in shuffled:
                acc = {}
                for k, v in part:
                    acc[k] = fn(acc[k], v) if k in acc else v
                out.append(sorted(acc.items(), key=lambda kv: repr(kv[0])))
            return out
        return RDD(self.ctx, compute, name=f"{self.name}.reduceByKey",
                   parents=(self,))

    def group_by_key(self) -> "RDD":
        def compute():
            shuffled = self._shuffle_by_key(self._partitions())
            out = []
            for part in shuffled:
                acc: dict = {}
                for k, v in part:
                    acc.setdefault(k, []).append(v)
                out.append(sorted(acc.items(), key=lambda kv: repr(kv[0])))
            return out
        return RDD(self.ctx, compute, name=f"{self.name}.groupByKey",
                   parents=(self,))

    def join(self, other: "RDD") -> "RDD":
        """Inner join on keys: (k, (v_self, v_other))."""
        if other.ctx is not self.ctx:
            raise ValueError("RDDs belong to different contexts")
        def compute():
            left = self._shuffle_by_key(self._partitions())
            right = other._shuffle_by_key(other._partitions())
            out = []
            for lp, rp in zip(left, right):
                lmap: dict = {}
                for k, v in lp:
                    lmap.setdefault(k, []).append(v)
                part = []
                for k, v in rp:
                    for lv in lmap.get(k, ()):
                        part.append((k, (lv, v)))
                out.append(sorted(part, key=lambda kv: repr(kv[0])))
            return out
        return RDD(self.ctx, compute, name=f"{self.name}.join",
                   parents=(self, other))

    # -- actions ---------------------------------------------------------------------
    def collect(self) -> list:
        return [x for part in self._partitions() for x in part]

    def count(self) -> int:
        return sum(len(part) for part in self._partitions())

    def take(self, k: int) -> list:
        out: list = []
        for part in self._partitions():
            for x in part:
                out.append(x)
                if len(out) == k:
                    return out
        return out

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        acc = None
        first = True
        for part in self._partitions():
            for x in part:
                acc = x if first else fn(acc, x)
                first = False
        if first:
            raise ValueError("reduce of empty RDD")
        return acc

    def sum(self) -> Any:
        return self.reduce(lambda a, b: a + b)

    def tree_aggregate(self, zero: Any, seq_op: Callable[[Any, Any], Any],
                       comb_op: Callable[[Any, Any], Any]) -> Any:
        """Per-partition fold + pairwise combine (Spark's treeAggregate)."""
        partials = []
        for part in self._partitions():
            acc = zero
            for x in part:
                acc = seq_op(acc, x)
            partials.append(acc)
        while len(partials) > 1:
            nxt = []
            for i in range(0, len(partials) - 1, 2):
                nxt.append(comb_op(partials[i], partials[i + 1]))
            if len(partials) % 2 == 1:
                nxt.append(partials[-1])
            partials = nxt
        return partials[0] if partials else zero


class MiniSparkContext:
    """Driver: creates RDDs, tracks shuffles and cache-memory placement."""

    def __init__(self, n_partitions: int = 4,
                 memory: Optional[TieredStore] = None) -> None:
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.memory = memory or TieredStore.dam_node()
        self.shuffles = 0
        self.shuffled_records = 0
        self.cache_hits = 0
        self._cached_names: set[str] = set()
        self._cache_seq = 0

    def parallelize(self, data: Iterable[Any], name: str = "data") -> RDD:
        items = list(data)
        n = self.n_partitions
        parts = [items[i::n] for i in range(n)]
        return RDD(self, lambda: [list(p) for p in parts], name=name)

    def range(self, n: int) -> RDD:
        return self.parallelize(range(n), name=f"range({n})")

    # -- cache accounting against the tier hierarchy -----------------------------
    def _account_cache(self, name: str, parts: list[list]) -> None:
        self._cache_seq += 1
        unique = f"{name}#{self._cache_seq}"
        self.memory.put(unique, _sizeof(parts))
        self._cached_names.add(unique)

    def _release_cache(self, name: str) -> None:
        for unique in sorted(self._cached_names):
            if unique.startswith(f"{name}#"):
                self.memory.drop(unique)
                self._cached_names.discard(unique)
                return

    def cached_fast_fraction(self) -> float:
        """Fraction of cached bytes resident in DRAM-class tiers."""
        if not self._cached_names:
            return 1.0
        fracs = [
            self.memory.resident_fraction_fast(name)
            for name in self._cached_names
        ]
        return float(sum(fracs) / len(fracs))
