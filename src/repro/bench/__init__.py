"""Perf-regression harness: ``repro bench`` → deterministic ``BENCH_*.json``.

The quantitative backbone for every speed claim the repo makes (ROADMAP
item 4).  See :mod:`repro.bench.schema` for the artifact contract,
:mod:`repro.bench.timing` for the measurement discipline and
:mod:`repro.bench.cases` for what is measured.
"""

from repro.bench.registry import (
    BenchCase,
    Budget,
    CaseRun,
    all_cases,
    areas,
    bench_case,
    cases_for,
)
from repro.bench.schema import (
    CORE_AREAS,
    SCHEMA_ID,
    BenchSchemaError,
    dumps_canonical,
    env_fingerprint,
    loads_validated,
    validate_artifact,
)
from repro.bench.timing import (
    FULL_POLICY,
    QUICK_POLICY,
    FakeClock,
    TimingError,
    TimingPolicy,
    TimingResult,
    measure_interleaved,
    reject_outliers,
    summarize,
)

__all__ = [
    "BenchCase",
    "Budget",
    "CaseRun",
    "all_cases",
    "areas",
    "bench_case",
    "cases_for",
    "CORE_AREAS",
    "SCHEMA_ID",
    "BenchSchemaError",
    "dumps_canonical",
    "env_fingerprint",
    "loads_validated",
    "validate_artifact",
    "FULL_POLICY",
    "QUICK_POLICY",
    "FakeClock",
    "TimingError",
    "TimingPolicy",
    "TimingResult",
    "measure_interleaved",
    "reject_outliers",
    "summarize",
]
