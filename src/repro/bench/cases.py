"""The registered micro-benchmark cases behind ``repro bench``.

Five core areas mirror the substrate layers the repo's perf story rests
on (ROADMAP item 4):

* ``events``   — DES kernel throughput (`repro.simnet.events`),
* ``mpi``      — point-to-point / collective message cost and the
  checksummed-envelope tax (`repro.mpi`, `repro.resilience.integrity`),
* ``training`` — fused-gradient allreduce step (`repro.distributed`),
* ``serving``  — end-to-end online-serving latency tail (`repro.serving`),
* ``tensor``   — the lazy tensor engine: fusion ratios, buffer
  allocations per step and per-kernel device charges (`repro.ml.engine`).

Every case reports **deterministic** metrics (simulated time, operation
counters, rates over simulated seconds) plus digests that pin functional
outputs bit-for-bit, and separately hands the runner wall-clock
candidates for the interleaved min-of-K timer.  Keeping the two apart is
what makes ``BENCH_<area>.json`` byte-identical across same-seed runs
while still letting CI watch real speed through the timing companion.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.bench.registry import Budget, CaseRun, bench_case

# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def stable_digest(*parts: Any) -> str:
    """Short hex digest of heterogeneous values, stable across runs.

    Arrays hash dtype/shape/bytes; floats hash their shortest repr (the
    same rendering JSON uses), so a digest match implies the JSON artifact
    would render the values identically too.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(f"nd:{part.dtype.str}:{part.shape}:".encode())
            h.update(part.tobytes())
        elif isinstance(part, (list, tuple)):
            h.update(b"seq:")
            h.update(":".join(repr(float(x)) if isinstance(x, float)
                              else repr(x) for x in part).encode())
        elif isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"|")
    return h.hexdigest()


def _round6(value: float) -> float:
    """Stabilize derived ratios: 6 significant-ish decimals is plenty for
    regression tracking and keeps artifacts readable."""
    return float(f"{value:.6g}")


# ---------------------------------------------------------------------------
# events — DES kernel
# ---------------------------------------------------------------------------


def _des_workload(n_procs: int, n_hops: int, seed: int):
    """A self-driving event soup: processes hopping through timeouts and
    contending on a shared resource — the scheduler/serving usage shape."""
    from repro.simnet.events import Resource, Simulator

    sim = Simulator()
    res = Resource(sim, capacity=max(2, n_procs // 8), name="gate")
    rng = np.random.default_rng(seed)
    delays = rng.uniform(0.1, 2.0, size=(n_procs, n_hops))
    trace: list[float] = []

    def worker(idx: int):
        for hop in range(n_hops):
            yield sim.timeout(float(delays[idx, hop]))
            grant = res.acquire()
            yield grant
            yield sim.timeout(0.05)
            res.release()
        trace.append(sim.now)

    for i in range(n_procs):
        sim.process(worker(i), name=f"w{i}")
    sim.run()
    return sim, trace


@bench_case(
    "des_event_throughput", area="events",
    budgets={
        "events_processed": Budget("lower", 0.10),
        "sim_rate_events_per_s": Budget("higher", 0.10),
    },
    description="DES kernel: timer + resource handoff event soup",
)
def des_event_throughput(quick: bool, seed: int) -> CaseRun:
    n_procs, n_hops = (48, 24) if quick else (256, 64)
    sim, trace = _des_workload(n_procs, n_hops, seed)
    metrics = {
        "events_processed": float(sim.events_processed),
        "final_sim_time_s": _round6(sim.now),
        "sim_rate_events_per_s": _round6(sim.events_processed / sim.now),
    }
    digests = {"completion_trace": stable_digest(trace, sim.now)}
    return CaseRun(
        metrics=metrics, digests=digests,
        wall_candidates={
            "event_loop": lambda: _des_workload(n_procs, n_hops, seed)},
        wall_ops={"event_loop": sim.events_processed},
    )


# ---------------------------------------------------------------------------
# mpi — message rate and the envelope tax
# ---------------------------------------------------------------------------


def _pingpong(rounds: int, payload_words: int, seed: int, integrity=None):
    """2-rank ping-pong; returns (rank-0 final buffer, per-rank states).

    Built on a raw :class:`~repro.mpi.transport.Transport` (rather than
    :func:`~repro.mpi.runtime.run_spmd`) so the per-rank counters survive
    for the deterministic metrics.
    """
    import threading

    from repro.mpi.comm import Communicator
    from repro.mpi.transport import Transport

    base = np.arange(payload_words, dtype=np.float64) + float(seed)
    transport = Transport(2)
    results: list[Any] = [None, None]

    def worker(rank: int) -> None:
        comm = Communicator(transport, rank, integrity=integrity)
        buf = base.copy()
        if rank == 0:
            for _ in range(rounds):
                comm.send(buf, dest=1, tag=1)
                buf = comm.recv(source=1, tag=2)
            results[0] = buf
        else:
            for _ in range(rounds):
                got = comm.recv(source=0, tag=1)
                comm.send(got + 1.0, dest=0, tag=2)

    threads = [threading.Thread(target=worker, args=(r,), daemon=True)
               for r in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return results[0], transport.states


@bench_case(
    "p2p_message_rate", area="mpi",
    budgets={
        "sim_time_s": Budget("lower", 0.15),
        "sim_msgs_per_s": Budget("higher", 0.15),
    },
    description="2-rank ping-pong over the mailbox transport",
)
def p2p_message_rate(quick: bool, seed: int) -> CaseRun:
    rounds, words = (120, 256) if quick else (1500, 256)
    final, states = _pingpong(rounds, words, seed)
    msgs = sum(s.messages_sent for s in states)
    sim_t = max(s.sim_time for s in states)
    metrics = {
        "messages_total": float(msgs),
        "bytes_total": float(sum(s.bytes_sent for s in states)),
        "sim_time_s": _round6(sim_t),
        "sim_msgs_per_s": _round6(msgs / sim_t),
    }
    return CaseRun(
        metrics=metrics,
        digests={"final_payload": stable_digest(final)},
        wall_candidates={
            "pingpong": lambda: _pingpong(rounds, words, seed)},
        wall_ops={"pingpong": 2 * rounds},
    )


@bench_case(
    "envelope_overhead", area="mpi",
    budgets={
        "checksums_per_message": Budget("lower", 0.0),
        "sim_time_s": Budget("lower", 0.15),
    },
    description="checksummed-envelope tax on the p2p path (verify on, "
                "no active corruption)",
)
def envelope_overhead(quick: bool, seed: int) -> CaseRun:
    from repro.resilience.integrity import IntegrityConfig, IntegrityContext

    rounds, words = (120, 1024) if quick else (1200, 1024)

    def ctx():
        return IntegrityContext(config=IntegrityConfig())

    final, states = _pingpong(rounds, words, seed, integrity=ctx())
    msgs = sum(s.messages_sent for s in states)
    checksums = sum(s.envelope_checksums for s in states)
    fastpath = sum(s.envelope_fastpath for s in states)
    sim_t = max(s.sim_time for s in states)
    metrics = {
        "messages_total": float(msgs),
        "envelope_checksums": float(checksums),
        "envelope_fastpath": float(fastpath),
        "checksums_per_message": _round6(checksums / msgs),
        "sim_time_s": _round6(sim_t),
    }
    return CaseRun(
        metrics=metrics,
        digests={"final_payload": stable_digest(final)},
        wall_candidates={
            "verify_on": lambda: _pingpong(rounds, words, seed,
                                           integrity=ctx()),
            "verify_off": lambda: _pingpong(rounds, words, seed),
        },
        wall_ops={"verify_on": 2 * rounds, "verify_off": 2 * rounds},
    )


def _allreduce_workload(iters: int, size: int, world: int, seed: int):
    from repro.mpi.runtime import run_spmd

    def fn(comm):
        rng = np.random.default_rng([seed, comm.rank])
        acc = None
        for _ in range(iters):
            local = rng.standard_normal(size)
            out = comm.allreduce(local)
            acc = out if acc is None else acc + out
        return acc, comm.sim_time, comm.state.bytes_sent

    return run_spmd(fn, world)


@bench_case(
    "ring_allreduce_rate", area="mpi",
    budgets={
        "sim_time_s": Budget("lower", 0.15),
    },
    description="4-rank ring allreduce of a fused-size buffer",
)
def ring_allreduce_rate(quick: bool, seed: int) -> CaseRun:
    iters, size, world = (8, 8192, 4) if quick else (40, 32768, 4)
    results = _allreduce_workload(iters, size, world, seed)
    accs = [r[0] for r in results]
    sim_t = max(r[1] for r in results)
    metrics = {
        "sim_time_s": _round6(sim_t),
        "bytes_sent_total": float(sum(r[2] for r in results)),
        "sim_allreduces_per_s": _round6(iters / sim_t),
    }
    return CaseRun(
        metrics=metrics,
        digests={"reduced": stable_digest(accs[0])},
        wall_candidates={
            "allreduce": lambda: _allreduce_workload(iters, size, world,
                                                     seed)},
        wall_ops={"allreduce": iters},
    )


# ---------------------------------------------------------------------------
# training — fused-gradient allreduce step
# ---------------------------------------------------------------------------


def _training_workload(steps: int, world: int, seed: int):
    from repro.distributed.horovod import (DistributedOptimizer,
                                           broadcast_parameters)
    from repro.ml.losses import cross_entropy
    from repro.ml.models import MLP
    from repro.ml.optim import SGD
    from repro.ml.tensor import Tensor
    from repro.mpi.runtime import run_spmd

    rng = np.random.default_rng(seed)
    X = rng.standard_normal((64, 24))
    y = rng.integers(0, 4, size=64)

    def fn(comm):
        model = MLP([24, 48, 4], seed=seed)
        broadcast_parameters(model, comm)
        opt = DistributedOptimizer(SGD(model.parameters(), lr=0.05), comm)
        losses = []
        for step in range(steps):
            lo = (step * 16) % 48
            shard = slice(lo + comm.rank * 4, lo + (comm.rank + 1) * 4)
            loss = cross_entropy(model(Tensor(X[shard])), y[shard])
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.item()))
        state = model.state_dict()
        return {
            "losses": losses,
            "weights": np.concatenate([state[k].ravel()
                                       for k in sorted(state)]),
            "sim_time": comm.sim_time,
            "bytes": opt.bytes_communicated,
            "calls": opt.allreduce_calls,
            "fusion_allocs": opt.fusion_allocs,
            "fusion_reuses": opt.fusion_reuses,
        }

    return run_spmd(fn, world)


@bench_case(
    "fused_allreduce_step", area="training",
    budgets={
        "fusion_allocs_per_step": Budget("lower", 0.0),
        "sim_time_s": Budget("lower", 0.15),
        "bytes_per_step": Budget("lower", 0.05),
    },
    description="data-parallel MLP steps through the fused-buffer "
                "gradient allreduce",
)
def fused_allreduce_step(quick: bool, seed: int) -> CaseRun:
    steps, world = (12, 4) if quick else (48, 4)
    results = _training_workload(steps, world, seed)
    r0 = results[0]
    metrics = {
        "steps": float(steps),
        "sim_time_s": _round6(max(r["sim_time"] for r in results)),
        "bytes_per_step": _round6(r0["bytes"] / steps),
        "allreduce_calls": float(r0["calls"]),
        "fusion_allocs_per_step": _round6(r0["fusion_allocs"] / steps),
        "fusion_reuses_per_step": _round6(r0["fusion_reuses"] / steps),
    }
    digests = {
        "loss_trajectory": stable_digest(r0["losses"]),
        "final_weights": stable_digest(*(r["weights"] for r in results)),
    }
    return CaseRun(
        metrics=metrics, digests=digests,
        wall_candidates={
            "train_steps": lambda: _training_workload(steps, world, seed)},
        wall_ops={"train_steps": steps},
    )


@bench_case(
    "engine_lazy_train_step", area="training",
    budgets={
        "alloc_reduction": Budget("higher", 0.0),
        "weights_bitwise_equal": Budget("higher", 0.0),
        "modeled_step_speedup": Budget("higher", 0.0),
    },
    description="training step under ENGINE=lazy: allocation and modeled "
                "sim-gpu step-time gain over eager dispatch, outputs "
                "bit-identical",
)
def engine_lazy_train_step(quick: bool, seed: int) -> CaseRun:
    steps = 6 if quick else 24
    _, e_weights, eager = _engine_train("eager", steps, seed)
    _, l_weights, lazy = _engine_train("lazy", steps, seed)
    fused_s, unfused_s, kernels = _simgpu_step_cost(32, seed)
    metrics = {
        "steps": float(steps),
        "eager_allocs_per_step": _round6(eager["eager_ops"] / steps),
        "lazy_allocs_per_step": _round6(lazy["kernel_allocs"] / steps),
        "alloc_reduction": _round6(
            eager["eager_alloc_bytes"] / lazy["kernel_alloc_bytes"]),
        "step_compute_fused_us": _round6(fused_s * 1e6),
        "step_compute_unfused_us": _round6(unfused_s * 1e6),
        "modeled_step_speedup": _round6(unfused_s / fused_s),
        "weights_bitwise_equal": float(
            np.array_equal(e_weights.view(np.uint64),
                           l_weights.view(np.uint64))),
    }
    return CaseRun(
        metrics=metrics,
        digests={"final_weights": stable_digest(l_weights)},
        wall_candidates={
            "lazy_steps": lambda: _engine_train("lazy", steps, seed)},
        wall_ops={"lazy_steps": steps},
    )


# ---------------------------------------------------------------------------
# tensor — the lazy engine: fusion, allocations, per-kernel device cost
# ---------------------------------------------------------------------------


def _engine_chain(mode: str, n: int, seed: int):
    """A matmul feeding a diamond of elementwise chains with reduce
    epilogues — the fusion shapes the engine exists for.  Returns the
    realized output and the engine-stat snapshot for ``mode``."""
    from repro.ml import engine as eng
    from repro.ml.tensor import Tensor

    rng = np.random.default_rng(seed)
    xs = rng.standard_normal((n, n))
    ws = rng.standard_normal((n, n))
    with eng.engine(mode):
        with eng.collect() as stats:
            x, w = Tensor(xs), Tensor(ws)
            h = x @ w + 1.0
            y = ((h * 2.0).tanh().relu() + h.sigmoid()).sum(axis=1)
            out = np.array(y.numpy(), copy=True)
            snap = stats.snapshot()
    return out, snap


@bench_case(
    "fused_elementwise_chain", area="tensor",
    budgets={
        "lazy_kernels": Budget("lower", 0.0),
        "lazy_allocs": Budget("lower", 0.0),
        "alloc_bytes_reduction": Budget("higher", 0.0),
        "outputs_bitwise_equal": Budget("higher", 0.0),
    },
    description="elementwise/reduce chain fusion: eager op-by-op vs "
                "fused lazy kernels, bit-identical outputs",
)
def fused_elementwise_chain(quick: bool, seed: int) -> CaseRun:
    n = 96 if quick else 384
    eager_out, eager = _engine_chain("eager", n, seed)
    lazy_out, lazy = _engine_chain("lazy", n, seed)
    metrics = {
        "eager_ops": float(eager["eager_ops"]),
        "eager_alloc_bytes": float(eager["eager_alloc_bytes"]),
        "lazy_kernels": float(lazy["kernels"]),
        "lazy_fused_ops": float(lazy["fused_ops"]),
        "lazy_allocs": float(lazy["kernel_allocs"]),
        "lazy_alloc_bytes": float(lazy["kernel_alloc_bytes"]),
        "ops_per_kernel": _round6(lazy["fused_ops"] / lazy["kernels"]),
        "alloc_bytes_reduction": _round6(
            eager["eager_alloc_bytes"] / lazy["kernel_alloc_bytes"]),
        "outputs_bitwise_equal": float(
            np.array_equal(eager_out.view(np.uint64),
                           lazy_out.view(np.uint64))),
    }
    return CaseRun(
        metrics=metrics,
        digests={"chain_output": stable_digest(lazy_out)},
        wall_candidates={
            "eager": lambda: _engine_chain("eager", n, seed),
            "lazy": lambda: _engine_chain("lazy", n, seed),
        },
        wall_ops={"eager": eager["eager_ops"], "lazy": lazy["fused_ops"]},
    )


def _engine_train(mode: str, steps: int, seed: int):
    """Single-rank MLP training under the requested engine mode."""
    from repro.ml import engine as eng
    from repro.ml.losses import cross_entropy
    from repro.ml.models import MLP
    from repro.ml.optim import SGD
    from repro.ml.tensor import Tensor

    rng = np.random.default_rng(seed)
    X = rng.standard_normal((48, 24))
    y = rng.integers(0, 4, size=48)
    with eng.engine(mode):
        model = MLP([24, 48, 4], seed=seed)
        opt = SGD(model.parameters(), lr=0.05)
        losses = []
        with eng.collect() as stats:
            for step in range(steps):
                lo = (step * 16) % 48
                loss = cross_entropy(model(Tensor(X[lo:lo + 16])),
                                     y[lo:lo + 16])
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(float(loss.item()))
            snap = stats.snapshot()
    state = model.state_dict()
    weights = np.concatenate([state[k].ravel() for k in sorted(state)])
    return losses, weights, snap


def _simgpu_step_cost(batch: int, seed: int):
    """Per-kernel sim-gpu charge of one forward+loss graph: fused vs the
    one-kernel-per-op counterfactual (all from shapes — deterministic)."""
    from repro.ml import engine as eng
    from repro.ml.engine import get_device, schedule
    from repro.ml.losses import cross_entropy
    from repro.ml.models import MLP
    from repro.ml.tensor import Tensor

    rng = np.random.default_rng(seed)
    X = rng.standard_normal((batch, 24))
    y = rng.integers(0, 4, size=batch)
    dev = get_device("sim-gpu")
    with eng.engine("lazy"):
        model = MLP([24, 48, 4], seed=seed)
        loss = cross_entropy(model(Tensor(X)), y)
        kernels = schedule(loss._payload())
    fused = sum(dev.kernel_time_s(k.flops, k.bytes_moved, k.n_ops)
                for k in kernels)
    unfused = sum(dev.unfused_time_s(k) for k in kernels)
    return fused, unfused, kernels


@bench_case(
    "mlp_train_step_engine", area="tensor",
    budgets={
        "lazy_allocs_per_step": Budget("lower", 0.0),
        "alloc_reduction": Budget("higher", 0.0),
        "weights_bitwise_equal": Budget("higher", 0.0),
    },
    description="MLP train steps: ENGINE=lazy vs eager allocations, "
                "bitwise-identical weights",
)
def mlp_train_step_engine(quick: bool, seed: int) -> CaseRun:
    steps = 6 if quick else 24
    e_losses, e_weights, eager = _engine_train("eager", steps, seed)
    l_losses, l_weights, lazy = _engine_train("lazy", steps, seed)
    metrics = {
        "steps": float(steps),
        "eager_allocs_per_step": _round6(eager["eager_ops"] / steps),
        "lazy_allocs_per_step": _round6(lazy["kernel_allocs"] / steps),
        "alloc_reduction": _round6(
            eager["eager_alloc_bytes"] / lazy["kernel_alloc_bytes"]),
        "kernels_per_step": _round6(lazy["kernels"] / steps),
        "recomputes_per_step": _round6(lazy["recomputes"] / steps),
        "weights_bitwise_equal": float(
            np.array_equal(e_weights.view(np.uint64),
                           l_weights.view(np.uint64))),
    }
    digests = {
        "loss_trajectory": stable_digest(l_losses),
        "final_weights": stable_digest(l_weights),
    }
    return CaseRun(
        metrics=metrics, digests=digests,
        wall_candidates={
            "eager": lambda: _engine_train("eager", steps, seed),
            "lazy": lambda: _engine_train("lazy", steps, seed),
        },
        wall_ops={"eager": steps, "lazy": steps},
    )


@bench_case(
    "simgpu_kernel_charge", area="tensor",
    budgets={
        "kernels": Budget("lower", 0.0),
        "modeled_fusion_speedup": Budget("higher", 0.0),
    },
    description="sim-gpu device: per-fused-kernel A100 roofline charge "
                "vs the kernel-per-op counterfactual",
)
def simgpu_kernel_charge(quick: bool, seed: int) -> CaseRun:
    batch = 16 if quick else 64
    fused_s, unfused_s, kernels = _simgpu_step_cost(batch, seed)
    total_ops = sum(k.n_ops for k in kernels)
    metrics = {
        "kernels": float(len(kernels)),
        "graph_ops": float(total_ops),
        "fused_time_us": _round6(fused_s * 1e6),
        "unfused_time_us": _round6(unfused_s * 1e6),
        "modeled_fusion_speedup": _round6(unfused_s / fused_s),
    }
    return CaseRun(
        metrics=metrics,
        digests={"kernel_plan": stable_digest(
            [k.name for k in kernels])},
        wall_candidates={
            "plan_and_price": lambda: _simgpu_step_cost(batch, seed)},
        wall_ops={"plan_and_price": total_ops},
    )


# ---------------------------------------------------------------------------
# serving — latency tail of the online plane
# ---------------------------------------------------------------------------


def _serving_workload(quick: bool, seed: int):
    from repro.serving.engine import ServingConfig, simulate_serving
    from repro.serving.request import TraceConfig

    config = ServingConfig(
        trace=TraceConfig(rate_per_s=80.0,
                          duration_s=6.0 if quick else 30.0,
                          samples_per_request=4, seed=seed,
                          key_universe=1 << 16),
        initial_replicas=2,
    )
    return simulate_serving(config)


@bench_case(
    "serving_latency_tail", area="serving",
    budgets={
        "p99_s": Budget("lower", 0.25),
        "completed": Budget("higher", 0.05),
    },
    description="online serving: simulated latency tail under a Poisson "
                "arrival trace",
)
def serving_latency_tail(quick: bool, seed: int) -> CaseRun:
    report = _serving_workload(quick, seed)
    summary = report.metrics.latency_summary()
    metrics = {
        "admitted": float(report.metrics.admitted),
        "completed": float(report.metrics.completed),
        "p50_s": _round6(summary.p50_s),
        "p99_s": _round6(summary.p99_s),
    }
    return CaseRun(
        metrics=metrics,
        digests={"report": stable_digest(report.to_text())},
        wall_candidates={
            "serve": lambda: _serving_workload(quick, seed)},
        wall_ops={"serve": max(1, report.metrics.completed)},
    )


def _defended_workload(quick: bool, seed: int, defend: bool, hedge: bool):
    """One serving run against a gray-failed replica.

    Capacity is pinned (autoscaler off) so the latency tail measures the
    defense layer, not scale-up lag, and the gray failure targets the
    booster node the first replica deterministically lands on.
    """
    from repro.resilience.faults import FaultInjector, FaultKind, \
        FaultPlan, FaultSpec
    from repro.serving import AutoscalerConfig, DefenseConfig
    from repro.serving.engine import ServingConfig, simulate_serving
    from repro.serving.request import TraceConfig

    duration = 6.0 if quick else 12.0
    plan = FaultPlan(seed=seed + 5, specs=(
        FaultSpec(kind=FaultKind.GRAY_FAILURE, time=2.0, module="esb",
                  node=0, duration=duration - 4.0, magnitude=8.0,
                  probability=0.6),
    ))
    config = ServingConfig(
        trace=TraceConfig(rate_per_s=120.0, duration_s=duration,
                          seed=seed + 3),
        initial_replicas=3,
        autoscaler=AutoscalerConfig(enabled=False),
        defense=DefenseConfig(enabled=defend, hedging_enabled=hedge),
    )
    return simulate_serving(config, fault_injector=FaultInjector(plan))


@bench_case(
    "serving_hedged_tail", area="serving",
    budgets={
        "defended_p99_s": Budget("lower", 0.25),
        "p99_cut_ratio": Budget("higher", 0.20),
        "duplicate_work_ratio": Budget("lower", 0.50),
        "duplicate_within_budget": Budget("higher", 0.0),
        "lost_requests": Budget("lower", 0.0),
    },
    description="gray-failure defense: hedged-request tail cut vs the "
                "undefended control, duplicate-work overhead within the "
                "15% budget",
)
def serving_hedged_tail(quick: bool, seed: int) -> CaseRun:
    """Three legs over the identical trace + fault plan: bare engine,
    defenses without hedging (isolates the breaker/brownout effect), and
    the full defense stack.  ``p99_cut_ratio`` is the headline — how many
    times the defended tail beats the undefended one."""
    undefended = _defended_workload(quick, seed, defend=False, hedge=False)
    nohedge = _defended_workload(quick, seed, defend=True, hedge=False)
    defended = _defended_workload(quick, seed, defend=True, hedge=True)
    dup_ratio = defended.duplicate_work_ratio
    metrics = {
        "undefended_p99_s": _round6(undefended.p99),
        "nohedge_p99_s": _round6(nohedge.p99),
        "defended_p99_s": _round6(defended.p99),
        "p99_cut_ratio": _round6(undefended.p99 / defended.p99
                                 if defended.p99 > 0 else 1.0),
        "hedges_issued": float(defended.metrics.hedges_issued),
        "hedges_backup_won": float(defended.metrics.hedges_backup_won),
        "duplicate_work_ratio": _round6(dup_ratio),
        "duplicate_within_budget": 1.0 if dup_ratio < 0.15 else 0.0,
        "breaker_transitions": float(defended.breaker_transitions),
        "lost_requests": float(defended.metrics.admitted
                               - defended.metrics.completed),
    }
    digests = {
        "undefended_report": stable_digest(undefended.to_text()),
        "defended_report": stable_digest(defended.to_text()),
    }
    return CaseRun(
        metrics=metrics, digests=digests,
        wall_candidates={
            "defended_serve": lambda: _defended_workload(
                quick, seed, defend=True, hedge=True)},
        wall_ops={"defended_serve": max(1, defended.metrics.completed)},
    )


def ensure_cases_loaded() -> None:
    """Importing this module registers everything; hook for the runner."""
