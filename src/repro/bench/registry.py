"""Registry of benchmark cases, grouped by artifact area.

A :class:`BenchCase` bundles one measurable scenario: a builder that runs
the deterministic workload and reports metrics/digests, plus (optionally)
wall-clock candidates for the timing engine.  Cases register themselves
with :func:`bench_case` at import time; the runner materializes one
``BENCH_<area>.json`` per area from every case registered under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional


@dataclass(frozen=True)
class Budget:
    """Regression budget for one deterministic metric.

    ``direction`` names the *good* direction — ``higher`` for rates,
    ``lower`` for costs; ``tolerance`` is the relative change in the bad
    direction that ``--compare`` tolerates before failing (e.g. 0.1 =
    a 10% regression budget).
    """

    direction: str
    tolerance: float = 0.10

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError("direction must be 'higher' or 'lower'")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")


@dataclass
class CaseRun:
    """What one executed case hands the runner.

    ``metrics`` — deterministic numbers (simulated rates, counters);
    ``digests`` — hex strings pinning functional outputs bit-for-bit;
    ``wall_candidates`` — zero-arg callables for the interleaved timer,
    kept out of the deterministic artifact entirely.
    """

    metrics: dict[str, float]
    digests: dict[str, str] = field(default_factory=dict)
    wall_candidates: dict[str, Callable[[], object]] = field(
        default_factory=dict)
    #: Number of logical operations one wall candidate call covers, per
    #: candidate — lets the timing artifact report per-op cost.
    wall_ops: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchCase:
    name: str
    area: str
    run: Callable[[bool, int], CaseRun]   #: run(quick, seed)
    budgets: Mapping[str, Budget] = field(default_factory=dict)
    description: str = ""


_REGISTRY: dict[str, BenchCase] = {}


def bench_case(name: str, area: str,
               budgets: Optional[Mapping[str, Budget]] = None,
               description: str = ""):
    """Decorator registering ``fn(quick, seed) -> CaseRun`` as a case."""
    def deco(fn: Callable[[bool, int], CaseRun]) -> Callable:
        register(BenchCase(name=name, area=area, run=fn,
                           budgets=dict(budgets or {}),
                           description=description))
        return fn
    return deco


def register(case: BenchCase) -> None:
    if case.name in _REGISTRY:
        raise ValueError(f"duplicate bench case {case.name!r}")
    _REGISTRY[case.name] = case


def all_cases() -> list[BenchCase]:
    """Every registered case in registration (= definition) order."""
    return list(_REGISTRY.values())


def areas() -> list[str]:
    seen: dict[str, None] = {}
    for case in _REGISTRY.values():
        seen.setdefault(case.area)
    return list(seen)


def cases_for(selected: Optional[Iterable[str]] = None) -> list[BenchCase]:
    """Cases filtered to ``selected`` areas (all areas when None)."""
    if selected is None:
        return all_cases()
    wanted = set(selected)
    unknown = wanted - set(areas())
    if unknown:
        raise ValueError(f"unknown bench areas: {sorted(unknown)} "
                         f"(have {areas()})")
    return [c for c in _REGISTRY.values() if c.area in wanted]
