"""Execute the bench registry and emit / compare ``BENCH_*.json``.

The runner is the machinery behind ``repro bench``:

* run every registered case (optionally filtered by area) at a given
  (quick, seed) point,
* fold case results into one deterministic artifact per area plus one
  wall-clock timing companion (interleaved min-of-K over the cases' wall
  candidates),
* write both families to an output directory, artifacts canonically
  serialized so same-seed runs are byte-identical,
* ``--compare``: load a committed baseline directory and fail on any
  budgeted metric regressing beyond its tolerance.

Exit-code contract (used by CI): 0 = ok, 1 = regression or budget
violation, 2 = schema/usage error.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.bench import cases as _cases  # noqa: F401 — registers the registry
from repro.bench.registry import BenchCase, cases_for
from repro.bench.schema import (
    SCHEMA_ID,
    BenchSchemaError,
    dumps_canonical,
    env_fingerprint,
    loads_validated,
    validate_artifact,
)
from repro.bench.timing import (
    FULL_POLICY,
    QUICK_POLICY,
    TimingPolicy,
    measure_interleaved,
)

TIMING_SCHEMA_ID = "repro-bench-timing/1"

#: The committed baseline directory (repo-root relative fallback to cwd).
_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE_DIR = _REPO_ROOT / "benchmarks" / "baselines"


@dataclass
class AreaArtifacts:
    """One area's pair of artifacts."""

    area: str
    doc: dict                       #: deterministic BENCH_<area>.json body
    timing_doc: Optional[dict]      #: wall TIMING_<area>.json body (or None)


def run_bench(
    areas: Optional[Iterable[str]] = None,
    quick: bool = True,
    seed: int = 0,
    wall: bool = True,
    policy: Optional[TimingPolicy] = None,
    clock: Callable[[], float] = time.perf_counter,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, AreaArtifacts]:
    """Run the registry; returns artifacts keyed by area."""
    selected = cases_for(list(areas) if areas is not None else None)
    if policy is None:
        policy = QUICK_POLICY if quick else FULL_POLICY
    env = env_fingerprint()
    mode = "quick" if quick else "full"
    by_area: dict[str, AreaArtifacts] = {}
    for case in selected:
        if progress is not None:
            progress(f"[{case.area}] {case.name} ...")
        run = case.run(quick, seed)
        arts = by_area.get(case.area)
        if arts is None:
            arts = AreaArtifacts(
                area=case.area,
                doc={"schema": SCHEMA_ID, "area": case.area, "mode": mode,
                     "seed": seed, "env": env, "cases": {}},
                timing_doc={"schema": TIMING_SCHEMA_ID, "area": case.area,
                            "mode": mode, "seed": seed, "cases": {}}
                if wall else None,
            )
            by_area[case.area] = arts
        arts.doc["cases"][case.name] = {
            "description": case.description,
            "metrics": dict(run.metrics),
            "digests": dict(run.digests),
            "budgets": {m: {"direction": b.direction,
                            "tolerance": b.tolerance}
                        for m, b in case.budgets.items()},
        }
        if wall and run.wall_candidates:
            timed = measure_interleaved(run.wall_candidates, policy=policy,
                                        clock=clock)
            arts.timing_doc["cases"][case.name] = {
                name: {
                    "best_s": r.best_s,
                    "median_s": r.median_s,
                    "mean_s": r.mean_s,
                    "per_op_s": r.scaled(run.wall_ops.get(name, 1)),
                    "rounds": len(r.samples),
                    "outliers_dropped": r.outliers_dropped,
                }
                for name, r in timed.items()
            }
    for arts in by_area.values():
        validate_artifact(arts.doc)
    return by_area


def write_artifacts(artifacts: Mapping[str, AreaArtifacts],
                    out_dir: str | pathlib.Path) -> list[pathlib.Path]:
    """Write BENCH/TIMING files; returns the paths written."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for area in sorted(artifacts):
        arts = artifacts[area]
        path = out / f"BENCH_{area}.json"
        path.write_text(dumps_canonical(arts.doc))
        written.append(path)
        if arts.timing_doc is not None:
            tpath = out / f"TIMING_{area}.json"
            tpath.write_text(dumps_canonical(arts.timing_doc))
            written.append(tpath)
    return written


def load_artifact_dir(path: str | pathlib.Path) -> dict[str, dict]:
    """Load every ``BENCH_*.json`` under ``path``, validated."""
    root = pathlib.Path(path)
    if not root.is_dir():
        raise BenchSchemaError(f"baseline directory {root} does not exist")
    docs: dict[str, dict] = {}
    for file in sorted(root.glob("BENCH_*.json")):
        doc = loads_validated(file.read_text())
        docs[doc["area"]] = doc
    if not docs:
        raise BenchSchemaError(f"no BENCH_*.json artifacts under {root}")
    return docs


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One compared metric."""

    area: str
    case: str
    metric: str
    baseline: float
    current: float
    direction: str
    tolerance: float

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    @property
    def regressed(self) -> bool:
        change = self.rel_change
        if self.direction == "higher":      # higher is better
            return change < -self.tolerance
        return change > self.tolerance      # lower is better

    @property
    def improved(self) -> bool:
        change = self.rel_change
        if self.direction == "higher":
            return change > self.tolerance
        return change < -self.tolerance

    def describe(self) -> str:
        arrow = {"higher": "↑ better", "lower": "↓ better"}[self.direction]
        return (f"{self.area}/{self.case}/{self.metric}: "
                f"{self.baseline:g} -> {self.current:g} "
                f"({self.rel_change:+.1%}, {arrow}, "
                f"budget ±{self.tolerance:.0%})")


@dataclass
class CompareReport:
    regressions: list[Delta] = field(default_factory=list)
    improvements: list[Delta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_text(self) -> str:
        lines = []
        if self.regressions:
            lines.append(f"REGRESSIONS ({len(self.regressions)}):")
            lines += [f"  {d.describe()}" for d in self.regressions]
        if self.improvements:
            lines.append(f"improvements ({len(self.improvements)}):")
            lines += [f"  {d.describe()}" for d in self.improvements]
        if self.notes:
            lines.append("notes:")
            lines += [f"  {n}" for n in self.notes]
        if not lines:
            lines.append("no budgeted metric moved beyond tolerance")
        return "\n".join(lines)


def compare_docs(current: Mapping[str, dict],
                 baseline: Mapping[str, dict]) -> CompareReport:
    """Diff current deterministic artifacts against a baseline set.

    Budgets attached to the *current* artifact govern (the code under
    test owns its budgets); metrics present on one side only and digest
    drift are reported as notes, never as failures — digests pin
    bit-exactness across same-code runs, not across code changes.
    """
    report = CompareReport()
    for area in sorted(baseline):
        if area not in current:
            report.regressions.append(Delta(
                area=area, case="-", metric="artifact-present",
                baseline=1.0, current=0.0, direction="higher",
                tolerance=0.0))
            continue
        base_cases = baseline[area]["cases"]
        cur_cases = current[area]["cases"]
        if (baseline[area].get("mode") != current[area].get("mode")
                or baseline[area].get("seed") != current[area].get("seed")):
            report.notes.append(
                f"{area}: comparing across mode/seed "
                f"({baseline[area].get('mode')}/{baseline[area].get('seed')}"
                f" vs {current[area].get('mode')}/"
                f"{current[area].get('seed')}) — deltas may be workload-"
                "size effects")
        for cname in sorted(base_cases):
            if cname not in cur_cases:
                report.notes.append(f"{area}/{cname}: case removed")
                continue
            base = base_cases[cname]
            cur = cur_cases[cname]
            budgets = cur.get("budgets") or base.get("budgets") or {}
            for metric, budget in sorted(budgets.items()):
                if metric not in base["metrics"]:
                    report.notes.append(
                        f"{area}/{cname}/{metric}: new budgeted metric "
                        "(no baseline)")
                    continue
                if metric not in cur["metrics"]:
                    report.notes.append(
                        f"{area}/{cname}/{metric}: metric dropped")
                    continue
                delta = Delta(
                    area=area, case=cname, metric=metric,
                    baseline=float(base["metrics"][metric]),
                    current=float(cur["metrics"][metric]),
                    direction=budget["direction"],
                    tolerance=float(budget["tolerance"]))
                if delta.regressed:
                    report.regressions.append(delta)
                elif delta.improved:
                    report.improvements.append(delta)
            for dname, dval in sorted((cur.get("digests") or {}).items()):
                if (base.get("digests", {}).get(dname) not in (None, dval)):
                    report.notes.append(
                        f"{area}/{cname}/digest:{dname}: functional output "
                        "changed vs baseline (expected only when the code "
                        "change intends it)")
    return report


def compare_timing(current: Mapping[str, dict],
                   baseline: Mapping[str, dict],
                   tolerance: float = 0.5) -> CompareReport:
    """Diff wall-clock timing artifacts (best_s per candidate).

    Wall time is noisy, so the default tolerance is wide; this path is
    for local use and trend dashboards, not the deterministic CI gate.
    """
    report = CompareReport()
    for area in sorted(baseline):
        if area not in current:
            report.notes.append(f"{area}: no current timing artifact")
            continue
        for cname, base_case in sorted(baseline[area]["cases"].items()):
            cur_case = current[area]["cases"].get(cname, {})
            for cand, base_r in sorted(base_case.items()):
                if cand not in cur_case:
                    report.notes.append(
                        f"{area}/{cname}/{cand}: candidate missing")
                    continue
                delta = Delta(
                    area=area, case=cname, metric=f"{cand}.best_s",
                    baseline=float(base_r["best_s"]),
                    current=float(cur_case[cand]["best_s"]),
                    direction="lower", tolerance=tolerance)
                if delta.regressed:
                    report.regressions.append(delta)
                elif delta.improved:
                    report.improvements.append(delta)
    return report
