"""The ``BENCH_<area>.json`` artifact schema and its validator.

Two artifact families per area, split by determinism:

* ``BENCH_<area>.json`` — the **deterministic** perf artifact that is
  committed per PR and byte-compared across runs.  Everything in it is a
  pure function of (code, seed, quick flag, environment): simulated-time
  rates and percentiles, operation counters the optimizations move
  (checksums per message, buffer allocations per step, events processed),
  and digests pinning the functional outputs bit-for-bit.  Wall-clock
  numbers are banned here by construction.
* ``TIMING_<area>.json`` — the wall-clock companion (interleaved
  min-of-K results).  Inherently noisy, never byte-compared, never
  committed; CI uploads it as a trend artifact.

The validator is hand-rolled (no jsonschema dependency) and is the same
code path for artifacts we emit and artifacts we load for ``--compare``,
so a drifted baseline fails loudly instead of comparing garbage.
"""

from __future__ import annotations

import json
import platform
from typing import Any, Mapping

import numpy as np

SCHEMA_ID = "repro-bench/1"

#: Areas the acceptance gate requires; the registry may add more.
CORE_AREAS = ("events", "mpi", "training", "serving", "tensor")


class BenchSchemaError(ValueError):
    """An artifact (emitted or loaded) violates the bench schema."""


def env_fingerprint() -> dict[str, str]:
    """The environment stamp embedded in every deterministic artifact.

    Only machine-stable facts: two same-seed runs on one machine must
    produce byte-identical artifacts, so nothing time- or pid-derived
    belongs here.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "system": platform.system(),
        "machine": platform.machine(),
    }


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise BenchSchemaError(msg)


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_artifact(doc: Mapping[str, Any]) -> None:
    """Validate one deterministic ``BENCH_<area>.json`` document."""
    _require(isinstance(doc, Mapping), "artifact must be a JSON object")
    _require(doc.get("schema") == SCHEMA_ID,
             f"schema must be {SCHEMA_ID!r}, got {doc.get('schema')!r}")
    _require(isinstance(doc.get("area"), str) and doc["area"],
             "area must be a non-empty string")
    _require(doc.get("mode") in ("quick", "full"),
             "mode must be 'quick' or 'full'")
    _require(isinstance(doc.get("seed"), int) and not isinstance(
        doc.get("seed"), bool), "seed must be an integer")
    env = doc.get("env")
    _require(isinstance(env, Mapping), "env fingerprint missing")
    for key in ("python", "numpy", "system", "machine"):
        _require(isinstance(env.get(key), str),
                 f"env.{key} must be a string")
    cases = doc.get("cases")
    _require(isinstance(cases, Mapping) and cases,
             "cases must be a non-empty object")
    for name, case in cases.items():
        _require(isinstance(case, Mapping), f"case {name!r} must be object")
        metrics = case.get("metrics")
        _require(isinstance(metrics, Mapping) and metrics,
                 f"case {name!r} needs a non-empty metrics object")
        for mname, value in metrics.items():
            _require(_is_number(value),
                     f"metric {name}.{mname} must be a number, "
                     f"got {type(value).__name__}")
        digests = case.get("digests", {})
        _require(isinstance(digests, Mapping),
                 f"case {name!r} digests must be an object")
        for dname, value in digests.items():
            _require(isinstance(value, str),
                     f"digest {name}.{dname} must be a string")
        budgets = case.get("budgets", {})
        _require(isinstance(budgets, Mapping),
                 f"case {name!r} budgets must be an object")
        for mname, budget in budgets.items():
            _require(isinstance(budget, Mapping),
                     f"budget {name}.{mname} must be an object")
            _require(budget.get("direction") in ("higher", "lower"),
                     f"budget {name}.{mname}.direction must be "
                     "'higher' or 'lower'")
            _require(_is_number(budget.get("tolerance"))
                     and 0 <= budget["tolerance"],
                     f"budget {name}.{mname}.tolerance must be >= 0")
            _require(mname in metrics,
                     f"budget {name}.{mname} has no matching metric")


def dumps_canonical(doc: Mapping[str, Any]) -> str:
    """Byte-deterministic serialization: sorted keys, fixed separators,
    trailing newline.  ``json.dumps`` renders identical floats identically
    (shortest-repr), so determinism reduces to value determinism."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def loads_validated(text: str) -> dict[str, Any]:
    """Parse and validate an artifact; raises :class:`BenchSchemaError`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"artifact is not valid JSON: {exc}") from exc
    validate_artifact(doc)
    return doc
