"""Wall-clock timing engine for the perf-regression harness.

The measurement discipline mirrors what the telemetry/integrity overhead
benches already do by hand, made reusable and unit-testable:

* **interleaved rounds** — all candidates run once per round in a fixed
  order (a, b, c, a, b, c, ...), so slow drift in machine load (thermal
  throttle, a background indexer) contaminates every candidate equally
  instead of biasing whichever ran last,
* **warmup discard** — the first ``warmup`` rounds are executed but never
  recorded; they absorb import costs, allocator growth and cache warming,
* **min-of-K** — the summary statistic is the *minimum* over recorded
  rounds: scheduler preemption and GC pauses are strictly additive noise,
  so the fastest observation is the least-contaminated estimate of the
  intrinsic cost,
* **outlier rejection** — samples beyond ``outlier_factor`` x the median
  are dropped before the secondary statistics (median/mean) are computed,
  and the number dropped is reported, so a wildly contended run is visible
  in the artifact instead of silently skewing it.

The clock is injectable (``clock=time.perf_counter`` by default), which is
what lets the test suite drive the whole policy with a fake clock and zero
wall-clock flakiness.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence


class TimingError(ValueError):
    """Raised for invalid timing policies (e.g. zero measured rounds)."""


@dataclass(frozen=True)
class TimingPolicy:
    """How a set of candidate callables is measured.

    ``rounds`` counts the *recorded* rounds; ``warmup`` rounds run before
    them and are discarded.  ``outlier_factor`` is the median multiple
    beyond which a sample is treated as contaminated.  ``collect_gc``
    forces a collection before every timed call so allocator state from
    the previous candidate is not charged to the next one.
    """

    rounds: int = 5
    warmup: int = 1
    outlier_factor: float = 4.0
    collect_gc: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise TimingError("need at least one measured round")
        if self.warmup < 0:
            raise TimingError("warmup cannot be negative")
        if self.outlier_factor <= 1.0:
            raise TimingError("outlier_factor must exceed 1.0")


QUICK_POLICY = TimingPolicy(rounds=3, warmup=1)
FULL_POLICY = TimingPolicy(rounds=7, warmup=2)


@dataclass(frozen=True)
class TimingResult:
    """The measured cost of one candidate."""

    name: str
    best_s: float                 #: min over kept samples — the headline
    median_s: float
    mean_s: float
    samples: tuple[float, ...]    #: every recorded (post-warmup) sample
    outliers_dropped: int

    @property
    def ops_per_s(self) -> float:
        return 1.0 / self.best_s if self.best_s > 0 else float("inf")

    def scaled(self, n_ops: int) -> float:
        """Best per-operation seconds when one sample covers ``n_ops``."""
        if n_ops < 1:
            raise TimingError("n_ops must be positive")
        return self.best_s / n_ops


def _median(xs: Sequence[float]) -> float:
    s = sorted(xs)
    mid = len(s) // 2
    if len(s) % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def reject_outliers(samples: Sequence[float], factor: float
                    ) -> tuple[list[float], int]:
    """Drop samples beyond ``factor`` x median; returns (kept, n_dropped).

    The median itself is robust to the outliers being rejected, and the
    minimum can never be rejected (it is <= median < cutoff), so the
    headline min-of-K statistic is unaffected by this filter — it only
    cleans up the secondary median/mean columns.
    """
    if not samples:
        return [], 0
    cutoff = _median(samples) * factor
    kept = [s for s in samples if s <= cutoff]
    return kept, len(samples) - len(kept)


def summarize(name: str, samples: Sequence[float],
              policy: TimingPolicy) -> TimingResult:
    """Fold raw recorded samples into a :class:`TimingResult`."""
    if not samples:
        raise TimingError(f"no samples recorded for {name!r}")
    kept, dropped = reject_outliers(samples, policy.outlier_factor)
    return TimingResult(
        name=name,
        best_s=min(samples),
        median_s=_median(kept),
        mean_s=sum(kept) / len(kept),
        samples=tuple(samples),
        outliers_dropped=dropped,
    )


def measure_interleaved(
    candidates: Mapping[str, Callable[[], object]],
    policy: Optional[TimingPolicy] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> dict[str, TimingResult]:
    """Interleaved min-of-K measurement of every candidate callable.

    Each round runs every candidate once, in the mapping's iteration
    order; the first ``policy.warmup`` rounds are discarded.  Returns one
    :class:`TimingResult` per candidate, keyed by name.
    """
    if not candidates:
        raise TimingError("need at least one candidate")
    policy = policy or TimingPolicy()
    recorded: dict[str, list[float]] = {name: [] for name in candidates}
    for round_no in range(policy.warmup + policy.rounds):
        for name, fn in candidates.items():
            if policy.collect_gc:
                gc.collect()
            t0 = clock()
            fn()
            dt = clock() - t0
            if round_no >= policy.warmup:
                recorded[name].append(dt)
    return {name: summarize(name, samples, policy)
            for name, samples in recorded.items()}


@dataclass
class FakeClock:
    """Deterministic clock for testing timing logic without wall time.

    ``script`` holds the durations successive ``(start, stop)`` pairs
    should observe; each timed call consumes one entry (cycling when
    exhausted).  Between calls the clock also advances by ``skew`` to
    model non-timed work.
    """

    script: Sequence[float]
    skew: float = 0.0
    _now: float = 0.0
    _i: int = 0
    _phase: int = field(default=0, repr=False)

    def __call__(self) -> float:
        if self._phase == 0:            # start of a timed region
            self._now += self.skew
            self._phase = 1
        else:                           # end of a timed region
            self._now += self.script[self._i % len(self.script)]
            self._i += 1
            self._phase = 0
        return self._now
