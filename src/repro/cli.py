"""Command-line front end: ``python -m repro.cli <command>``.

Commands mirror the operator tasks the examples walk through:

* ``systems`` — print the DEEP and JUWELS inventories (Table I / Sec. II-B),
* ``schedule`` — run a synthetic Fig. 2 workload mix through a system and
  print the schedule report,
* ``scaling`` — print the Fig. 3 distributed-training scaling series,
* ``submit`` — compile an ``#SBATCH``/``#PHASE`` job script and schedule it,
* ``serve`` — run an online-serving scenario (arrivals, SLO, autoscaling,
  optional fault plan) and print the serving report,
* ``trace`` — run a canonical traced scenario under the unified telemetry
  layer and write Chrome-trace / Prometheus / summary artifacts,
* ``drill`` — run a resilience drill; ``drill sdc`` injects silent data
  corruption end-to-end and exits non-zero on any undetected corruption,
  ``drill chaos`` throws partitions, gray failures and a crash at the
  serving plane and exits non-zero if any admitted request is lost,
* ``bench`` — run the perf-regression harness: deterministic
  ``BENCH_<area>.json`` artifacts plus wall-clock timing companions, with
  ``--compare`` failing on budgeted-metric regressions vs the committed
  baseline,
* ``experiments`` — list every experiment and the bench that regenerates it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

EXPERIMENTS = [
    ("E1", "Table I + Fig. 1 (MSA systems)",
     "benchmarks/bench_table1_msa_systems.py"),
    ("E2", "Fig. 2 (workload placement MSA vs homogeneous)",
     "benchmarks/bench_fig2_workload_placement.py"),
    ("E3", "Fig. 3 (distributed ResNet scaling, 96/128 GPUs)",
     "benchmarks/bench_fig3_resnet_scaling.py"),
    ("E4", "Fig. 3 M (parallel cascade SVM)",
     "benchmarks/bench_fig3_parallel_svm.py"),
    ("E5", "Fig. 3 R (Spark analytics + AE on the DAM)",
     "benchmarks/bench_fig3_spark_dam.py"),
    ("E6", "Sec. III-C (quantum SVM ensembles)",
     "benchmarks/bench_fig3_quantum_svm.py"),
    ("E7", "Sec. IV-A / Fig. 4 B (COVID-Net CXR)",
     "benchmarks/bench_fig4_covidnet.py"),
    ("E8", "Sec. IV-B / Fig. 4 A (ARDS GRU time series)",
     "benchmarks/bench_fig4_ards_gru.py"),
    ("E9", "Fig. 1 GCE (FPGA collective engine)",
     "benchmarks/bench_gce_collectives.py"),
    ("E10", "Sec. II-A NAM (dataset sharing)",
     "benchmarks/bench_nam_sharing.py"),
    ("E11", "Sec. III-B (cloud interop + economics)",
     "benchmarks/bench_cloud_interop.py"),
    ("E12", "Fig. 1 federation (cross-module jobs, co-allocation)",
     "benchmarks/bench_modular_placement.py"),
    ("E13", "Fig. 3 A ((near) real-time disaster processing)",
     "benchmarks/bench_realtime_stream.py"),
    ("E14", "online serving (SLO capacity, autoscaling, failover)",
     "benchmarks/bench_serving_slo.py"),
    ("E15", "unified telemetry traces (chrome://tracing / Perfetto)",
     "benchmarks/bench_telemetry_overhead.py"),
    ("E16", "SDC drill (silent-corruption detection, rollback, overhead)",
     "benchmarks/bench_integrity_overhead.py"),
    ("E17", "perf-regression harness (repro bench -> BENCH_*.json)",
     "src/repro/bench/"),
    ("E18", "lazy tensor engine (fused op graphs, cpu/sim-gpu backends)",
     "src/repro/ml/engine/"),
    ("E19", "chaos drill (partitions, gray failures, hedging, brownout)",
     "src/repro/resilience/chaosdrill.py"),
    ("ABL", "design-choice ablations",
     "benchmarks/bench_ablations.py"),
]


def _build_system(name: str):
    from repro.core import deep_system, juwels_system

    if name == "deep":
        return deep_system()
    if name == "juwels":
        return juwels_system()
    raise SystemExit(f"unknown system {name!r} (choose deep or juwels)")


def cmd_systems(args: argparse.Namespace) -> int:
    for name in ("deep", "juwels"):
        system = _build_system(name)
        print(system.describe())
        print(f"  totals: {system.total_nodes} nodes, "
              f"{system.total_cpu_cores:,} CPU cores, "
              f"{system.total_gpus:,} GPUs, "
              f"{system.peak_flops / 1e15:.1f} PFLOP/s peak")
        print()
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core import schedule_workload, synthetic_workload_mix

    system = _build_system(args.system)
    jobs = synthetic_workload_mix(n_jobs=args.jobs, seed=args.seed,
                                  mean_interarrival_s=args.interarrival)
    report = schedule_workload(system, jobs)
    print(report.summary())
    if args.placements:
        print("\nplacements:")
        for alloc in report.allocations:
            print(f"  {alloc.job_name:>20}/{alloc.phase_name:<22} -> "
                  f"{alloc.module_key:<12} x{len(alloc.nodes):<4} "
                  f"{alloc.duration:>12,.0f} s")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.distributed import DistributedTrainingPerfModel

    model = DistributedTrainingPerfModel()
    if args.tuned:
        model = model.with_recipe(model.recipe.tuned())
    print(f"{'GPUs':>6} {'epoch s':>9} {'speedup':>9} {'efficiency':>11}")
    for pt in model.scaling_curve(args.gpus):
        print(f"{pt.n_gpus:>6} {pt.epoch_time_s:>9.1f} {pt.speedup:>9.1f} "
              f"{pt.efficiency:>11.2f}")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.core import schedule_workload
    from repro.core.batch import parse_job_script

    with open(args.script) as fh:
        job = parse_job_script(fh.read())
    system = _build_system(args.system)
    report = schedule_workload(system, [job])
    print(f"job {job.name!r}: completed at "
          f"{report.completion_times[job.name]:,.0f} s")
    for alloc in report.allocations:
        print(f"  {alloc.phase_name:<22} -> {alloc.module_key:<12} "
              f"x{len(alloc.nodes)} [{alloc.start:,.0f} … {alloc.end:,.0f}] s")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience.faults import FaultInjector, FaultPlan
    from repro.serving import (
        AdmissionPolicy,
        ArrivalPattern,
        AutoscalerConfig,
        DefenseConfig,
        ServingConfig,
        TraceConfig,
        simulate_serving,
    )

    system = _build_system(args.system)
    config = ServingConfig(
        trace=TraceConfig(
            pattern=ArrivalPattern(args.scenario),
            rate_per_s=args.rate,
            duration_s=args.duration,
            slo_deadline_s=args.slo,
            samples_per_request=args.samples,
            seed=args.seed,
        ),
        admission=AdmissionPolicy(rate_limit_per_s=args.rate_limit,
                                  max_queue_depth=args.max_queue),
        autoscaler=AutoscalerConfig(enabled=not args.no_autoscale,
                                    min_replicas=args.replicas,
                                    max_replicas=args.max_replicas),
        initial_replicas=args.replicas,
        cache_capacity=args.cache,
        defense=DefenseConfig(enabled=args.defend),
    )
    injector = None
    if args.faults:
        targets = {key: module.n_nodes
                   for key, module in system.compute_modules().items()}
        plan = FaultPlan.parse(args.faults, targets=targets,
                               horizon_s=args.duration)
        injector = FaultInjector(plan)
    report = simulate_serving(config, system=system, fault_injector=injector)
    print(report.to_text())
    return 0 if report.meets_slo() else 1


def cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry.scenarios import SCENARIOS

    artifacts = SCENARIOS[args.scenario](seed=args.seed, quick=args.quick)
    out_dir = args.out or os.path.join(
        "traces", f"{args.scenario}-seed{args.seed}")
    os.makedirs(out_dir, exist_ok=True)
    for filename, body in (("trace.json", artifacts.trace_json),
                           ("metrics.prom", artifacts.prometheus),
                           ("summary.txt", artifacts.summary)):
        with open(os.path.join(out_dir, filename), "w") as fh:
            fh.write(body)
            if not body.endswith("\n"):
                fh.write("\n")
    print(artifacts.summary)
    print(f"\nartifacts written to {out_dir}/ "
          "(trace.json, metrics.prom, summary.txt)")
    if not artifacts.ok:
        print("INVARIANT VIOLATIONS:", file=sys.stderr)
        for name, labels, value in artifacts.invariant_violations:
            print(f"  {name}{dict(labels)} = {value}", file=sys.stderr)
        return 1
    return 0


def cmd_drill(args: argparse.Namespace) -> int:
    import os

    if args.kind == "chaos":
        from repro.resilience.chaosdrill import run_chaos_drill

        report, prometheus = run_chaos_drill(seed=args.seed,
                                             quick=args.quick,
                                             defend=not args.no_defend)
    else:
        from repro.resilience.drill import run_sdc_drill

        report, prometheus = run_sdc_drill(seed=args.seed, quick=args.quick,
                                           verify=not args.no_verify)
    out_dir = args.out or os.path.join("drills",
                                       f"{args.kind}-seed{args.seed}")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "report.txt"), "w") as fh:
        fh.write(report.to_text())
    with open(os.path.join(out_dir, "metrics.prom"), "w") as fh:
        fh.write(prometheus)
        if not prometheus.endswith("\n"):
            fh.write("\n")
    print(report.to_text())
    print(f"artifacts written to {out_dir}/ (report.txt, metrics.prom)")
    if args.kind == "sdc" and report.verify and report.undetected > 0:
        print(f"UNDETECTED CORRUPTION: {report.undetected:g}",
              file=sys.stderr)
    if args.kind == "chaos" and report.lost_requests > 0:
        print(f"LOST ADMITTED REQUESTS: {report.lost_requests}",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import (
        DEFAULT_BASELINE_DIR,
        compare_docs,
        load_artifact_dir,
        run_bench,
        write_artifacts,
    )
    from repro.bench.schema import BenchSchemaError

    areas = args.areas.split(",") if args.areas else None
    try:
        artifacts = run_bench(
            areas=areas, quick=args.quick, seed=args.seed,
            wall=not args.no_wall,
            progress=lambda msg: print(msg, file=sys.stderr))
    except (ValueError, BenchSchemaError) as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    out_dir = args.out or "bench"
    written = write_artifacts(artifacts, out_dir)
    for path in written:
        print(f"wrote {path}")
    if args.update_baseline:
        baseline_paths = write_artifacts(
            {a: type(arts)(area=arts.area, doc=arts.doc, timing_doc=None)
             for a, arts in artifacts.items()},
            DEFAULT_BASELINE_DIR)
        for path in baseline_paths:
            print(f"updated baseline {path}")
    if args.compare is not None:
        baseline_dir = args.compare or str(DEFAULT_BASELINE_DIR)
        try:
            baseline = load_artifact_dir(baseline_dir)
        except BenchSchemaError as exc:
            print(f"bench error: {exc}", file=sys.stderr)
            return 2
        current = {a: arts.doc for a, arts in artifacts.items()}
        report = compare_docs(current, baseline)
        print(f"\ncompare vs {baseline_dir}:")
        print(report.to_text())
        if not report.ok:
            return 1
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    width = max(len(e[1]) for e in EXPERIMENTS)
    for exp_id, title, bench in EXPERIMENTS:
        print(f"{exp_id:<5} {title:<{width}}  {bench}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MSA reproduction command-line front end",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="print DEEP and JUWELS inventories"
                   ).set_defaults(fn=cmd_systems)

    p = sub.add_parser("schedule", help="run a synthetic workload mix")
    p.add_argument("--system", default="deep", choices=("deep", "juwels"))
    p.add_argument("--jobs", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--interarrival", type=float, default=300.0)
    p.add_argument("--placements", action="store_true")
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("scaling", help="print the Fig. 3 scaling series")
    p.add_argument("--gpus", type=int, nargs="+",
                   default=[1, 2, 4, 8, 16, 32, 64, 96, 128])
    p.add_argument("--tuned", action="store_true",
                   help="use the [20]-style tuned recipe")
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser("submit", help="schedule an #SBATCH/#PHASE script")
    p.add_argument("script")
    p.add_argument("--system", default="deep", choices=("deep", "juwels"))
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("serve", help="run an online-serving scenario")
    p.add_argument("--system", default="deep", choices=("deep", "juwels"))
    p.add_argument("--scenario", default="poisson",
                   choices=("poisson", "diurnal", "bursty"))
    p.add_argument("--rate", type=float, default=100.0,
                   help="mean arrival rate (req/s)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="trace length (simulated s)")
    p.add_argument("--slo", type=float, default=0.5,
                   help="per-request deadline (s); exit status reports p99")
    p.add_argument("--samples", type=int, default=8,
                   help="samples (patches) per request")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=1,
                   help="initial (and minimum) replica count")
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument("--no-autoscale", action="store_true",
                   help="pin the pool at --replicas")
    p.add_argument("--rate-limit", type=float, default=0.0,
                   help="admission token-bucket rate (0 = off)")
    p.add_argument("--max-queue", type=int, default=0,
                   help="shed arrivals beyond this queue depth (0 = off)")
    p.add_argument("--cache", type=int, default=0,
                   help="result-cache capacity in entries (0 = off)")
    p.add_argument("--defend", action="store_true",
                   help="arm the partition/gray-failure defenses (phi "
                        "detector, circuit breakers, hedging, brownout)")
    p.add_argument("--faults", default="",
                   help="fault plan, e.g. seed=7,crash=esb:2,repair=10 or "
                        "seed=7,chaos=partition:1,gray:2,repair=5")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("trace", help="run a traced scenario, export artifacts")
    p.add_argument("scenario", choices=("train", "serve"),
                   help="train: faulted scheduler + elastic training; "
                        "serve: online serving with a crash + autoscaling")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true",
                   help="smaller workload (CI smoke)")
    p.add_argument("--out", default="",
                   help="output directory (default traces/<scenario>-seed<N>)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("drill", help="run a resilience drill")
    p.add_argument("kind", choices=("sdc", "chaos"),
                   help="sdc: end-to-end silent-data-corruption drill; "
                        "chaos: partitions + gray failures against the "
                        "serving plane (exits non-zero on any lost request)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true",
                   help="smaller run (CI smoke)")
    p.add_argument("--no-verify", action="store_true",
                   help="sdc: disable detection to demonstrate the injector "
                        "(report shows the corrupted outcome)")
    p.add_argument("--no-defend", action="store_true",
                   help="chaos: disable the defense layer — zero loss must "
                        "still hold (it is structural, not a defense)")
    p.add_argument("--out", default="",
                   help="output directory (default drills/<kind>-seed<N>)")
    p.set_defaults(fn=cmd_drill)

    p = sub.add_parser("bench", help="run the perf-regression harness")
    p.add_argument("--quick", action="store_true",
                   help="small workloads + fewer timing rounds (CI smoke)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--areas", default="",
                   help="comma-separated areas (default: all registered)")
    p.add_argument("--out", default="",
                   help="output directory (default bench/)")
    p.add_argument("--no-wall", action="store_true",
                   help="skip wall-clock timing (deterministic artifacts "
                        "only; fastest, fully reproducible)")
    p.add_argument("--compare", nargs="?", const="", default=None,
                   metavar="BASELINE_DIR",
                   help="diff against a baseline directory (default "
                        "benchmarks/baselines) and exit non-zero on any "
                        "budgeted-metric regression")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite benchmarks/baselines with this run's "
                        "deterministic artifacts")
    p.set_defaults(fn=cmd_bench)

    sub.add_parser("experiments", help="list experiments and benches"
                   ).set_defaults(fn=cmd_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`) — exit quietly.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":
    sys.exit(main())
