"""The Modular Supercomputer Architecture (MSA) — the paper's contribution.

This package models the MSA exactly as Sec. II describes it:

* :mod:`repro.core.hardware` — device/node specifications, including the
  DEEP DAM node of Table I and the JUWELS cluster/booster nodes,
* :mod:`repro.core.module` — the module types: Cluster Module (CM), Extreme
  Scale Booster (ESB, with the FPGA Global Collective Engine), Data
  Analytics Module (DAM), Scalable Storage Service Module (SSSM), Network
  Attached Memory (NAM), and the Quantum Module (QM),
* :mod:`repro.core.system` — an MSA system: modules joined by the network
  federation (Fig. 1),
* :mod:`repro.core.presets` — the DEEP and JUWELS production systems,
* :mod:`repro.core.jobs` — heterogeneous application workloads (Fig. 2):
  multi-phase jobs whose phases prefer different module characteristics,
* :mod:`repro.core.scheduler` — discrete-event scheduling of heterogeneous
  workloads onto matching module combinations, with monolithic baselines,
* :mod:`repro.core.energy` — node/GPU power models and energy accounting.
"""

from repro.core.hardware import (
    CpuSpec,
    GpuSpec,
    FpgaSpec,
    MemorySpec,
    StorageSpec,
    NodeSpec,
    XEON_CASCADE_LAKE,
    XEON_PLATINUM_8168,
    KNL_MANYCORE,
    NVIDIA_V100,
    NVIDIA_A100,
    STRATIX10,
    DEEP_DAM_NODE,
    DEEP_CM_NODE,
    DEEP_ESB_NODE,
    JUWELS_CLUSTER_NODE,
    JUWELS_CLUSTER_GPU_NODE,
    JUWELS_BOOSTER_NODE,
)
from repro.core.module import (
    ModuleKind,
    ComputeModule,
    ClusterModule,
    BoosterModule,
    DataAnalyticsModule,
    StorageModule,
    NamModule,
    QuantumModule,
)
from repro.core.system import MSASystem
from repro.core.presets import (
    deep_system,
    juwels_system,
    homogeneous_system,
    small_msa_system,
)
from repro.core.jobs import (
    WorkloadClass,
    JobPhase,
    JobStatus,
    CoAllocatedPhase,
    Job,
    synthetic_workload_mix,
)
from repro.core.scheduler import (
    MsaScheduler,
    SchedulerPolicy,
    PlacementPolicy,
    ScheduleReport,
    Allocation,
    place_standalone,
    rank_placements,
    schedule_workload,
)
from repro.core.energy import PowerModel, EnergyAccountant
from repro.core.stats import (
    LatencySummary,
    latency_histogram,
    percentile,
    summarize_latencies,
)

__all__ = [
    "CpuSpec", "GpuSpec", "FpgaSpec", "MemorySpec", "StorageSpec", "NodeSpec",
    "XEON_CASCADE_LAKE", "XEON_PLATINUM_8168", "KNL_MANYCORE",
    "NVIDIA_V100", "NVIDIA_A100", "STRATIX10",
    "DEEP_DAM_NODE", "DEEP_CM_NODE", "DEEP_ESB_NODE",
    "JUWELS_CLUSTER_NODE", "JUWELS_CLUSTER_GPU_NODE", "JUWELS_BOOSTER_NODE",
    "ModuleKind", "ComputeModule", "ClusterModule", "BoosterModule",
    "DataAnalyticsModule", "StorageModule", "NamModule", "QuantumModule",
    "MSASystem", "deep_system", "juwels_system", "homogeneous_system",
    "small_msa_system",
    "WorkloadClass", "JobPhase", "JobStatus", "CoAllocatedPhase", "Job",
    "synthetic_workload_mix",
    "MsaScheduler", "SchedulerPolicy", "PlacementPolicy", "ScheduleReport",
    "Allocation", "place_standalone", "rank_placements", "schedule_workload",
    "PowerModel", "EnergyAccountant",
    "LatencySummary", "latency_histogram", "percentile",
    "summarize_latencies",
]
