"""A Slurm-like batch front end for the MSA scheduler.

The health case studies stress that "job scripts ... needs to be all at
least partly abstracted away"; this module is the thing being abstracted: a
minimal ``#SBATCH``-style script format that compiles to the scheduler's
:class:`~repro.core.jobs.Job` model, plus a Gantt/Chrome-trace export of a
finished schedule so operators can inspect placements visually.

Script grammar (one phase per ``#PHASE`` block)::

    #SBATCH --job-name=train-resnet
    #SBATCH --begin=120            # arrival time, seconds
    #PHASE name=preprocess workload=simulation-lowscale nodes=4 \
           work=1e15 memory=64
    #PHASE name=train workload=ml-training nodes=16 work=2e18 gpu \
           tensor-cores parallel=0.998

Unknown directives raise — silent typos in job scripts are how real
clusters eat allocations.
"""

from __future__ import annotations

import shlex
from typing import Any

from repro.core.jobs import GB, Job, JobPhase, WorkloadClass
from repro.core.scheduler import ScheduleReport


class BatchScriptError(ValueError):
    """Malformed job script."""


_PHASE_KEYS = {
    "name", "workload", "nodes", "work", "memory", "io", "comm",
    "parallel", "efficiency", "gpu", "tensor-cores",
}


def _parse_phase(tokens: list[str], lineno: int) -> JobPhase:
    kwargs: dict[str, Any] = {}
    flags: set[str] = set()
    for token in tokens:
        if "=" in token:
            key, value = token.split("=", 1)
        else:
            key, value = token, None
        if key not in _PHASE_KEYS:
            raise BatchScriptError(
                f"line {lineno}: unknown phase option {key!r}")
        if value is None:
            flags.add(key)
        else:
            kwargs[key] = value
    try:
        workload = WorkloadClass(kwargs["workload"])
    except KeyError:
        raise BatchScriptError(f"line {lineno}: phase needs workload=")
    except ValueError:
        raise BatchScriptError(
            f"line {lineno}: unknown workload {kwargs['workload']!r} "
            f"(choose from {[w.value for w in WorkloadClass]})")
    if "work" not in kwargs:
        raise BatchScriptError(f"line {lineno}: phase needs work=<flops>")
    return JobPhase(
        name=kwargs.get("name", f"phase-{lineno}"),
        workload=workload,
        work_flops=float(kwargs["work"]),
        nodes=int(kwargs.get("nodes", 1)),
        parallel_fraction=float(kwargs.get("parallel", 0.95)),
        uses_gpu="gpu" in flags,
        uses_tensor_cores="tensor-cores" in flags,
        memory_GB_per_node=float(kwargs.get("memory", 16.0)),
        io_bytes=float(kwargs.get("io", 0.0)) * GB,
        comm_bytes_per_node=float(kwargs.get("comm", 0.0)) * GB,
        efficiency=float(kwargs.get("efficiency", 0.10)),
    )


def parse_job_script(script: str) -> Job:
    """Compile an ``#SBATCH``/``#PHASE`` script into a :class:`Job`."""
    name = "job"
    arrival = 0.0
    phases: list[JobPhase] = []
    for lineno, raw in enumerate(script.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#!"):
            continue
        if line.startswith("#SBATCH"):
            directive = line[len("#SBATCH"):].strip()
            if not directive.startswith("--"):
                raise BatchScriptError(f"line {lineno}: malformed #SBATCH")
            key, _, value = directive[2:].partition("=")
            if key == "job-name":
                name = value or name
            elif key == "begin":
                arrival = float(value)
            else:
                raise BatchScriptError(
                    f"line {lineno}: unknown #SBATCH option --{key}")
        elif line.startswith("#PHASE"):
            tokens = shlex.split(line[len("#PHASE"):])
            phases.append(_parse_phase(tokens, lineno))
        elif line.startswith("#"):
            continue   # plain comment
        else:
            raise BatchScriptError(
                f"line {lineno}: only directives and comments are allowed "
                f"(got {line!r})")
    if not phases:
        raise BatchScriptError("script defines no #PHASE blocks")
    return Job(name=name, phases=phases, arrival_time=arrival)


def schedule_to_chrome_trace(report: ScheduleReport) -> dict[str, Any]:
    """Gantt view of a schedule as Chrome trace events (one lane per
    module; one 'X' span per phase allocation)."""
    modules = sorted({a.module_key for a in report.allocations})
    lane = {key: i for i, key in enumerate(modules)}
    events = []
    for alloc in report.allocations:
        events.append({
            "name": f"{alloc.job_name}/{alloc.phase_name}",
            "cat": "phase",
            "ph": "X",
            "pid": 0,
            "tid": lane[alloc.module_key],
            "ts": alloc.start * 1e6,
            "dur": alloc.duration * 1e6,
            "args": {"nodes": len(alloc.nodes),
                     "module": alloc.module_key},
        })
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    meta = [{
        "name": "thread_name", "ph": "M", "pid": 0, "tid": lane[key],
        "args": {"name": key},
    } for key in modules]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}
