"""Energy accounting for MSA systems.

The paper's headline constraint triple is *minimal energy consumption,
minimal time to solution, minimal system cost*; Fig. 2's argument is that
running each application part on the matching module improves both time to
solution **and** energy.  This module provides the power model behind that
claim: nodes draw idle power while allocated-but-underused and load power
proportional to the components a phase exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.hardware import NodeSpec
from repro.core.jobs import JobPhase


@dataclass(frozen=True)
class PowerModel:
    """Power draw of one node under a given phase."""

    node: NodeSpec

    @property
    def idle_watts(self) -> float:
        return self.node.idle_watts

    def load_watts(self, phase: Optional[JobPhase]) -> float:
        """Draw while running ``phase`` (idle if None).

        CPUs always burn (they host the run); GPUs burn at TDP only when the
        phase uses them, otherwise at ~10% leakage; same for FPGAs.
        """
        if phase is None:
            return self.idle_watts
        watts = self.idle_watts + self.node.cpu.tdp_watts * self.node.cpu_sockets
        gpu_tdp = sum(g.tdp_watts for g in self.node.gpus)
        fpga_tdp = sum(f.tdp_watts for f in self.node.fpgas)
        watts += gpu_tdp if phase.uses_gpu else 0.10 * gpu_tdp
        watts += 0.10 * fpga_tdp  # FPGAs idle unless a GCE/offload phase runs
        return watts

    def energy_joules(self, phase: Optional[JobPhase], seconds: float) -> float:
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        return self.load_watts(phase) * seconds


@dataclass
class EnergyAccountant:
    """Accumulates energy per module across a schedule."""

    _busy_joules: dict[str, float] = field(default_factory=dict)
    _idle_joules: dict[str, float] = field(default_factory=dict)

    def charge_phase(
        self, module_key: str, node: NodeSpec, phase: JobPhase,
        n_nodes: int, seconds: float,
    ) -> float:
        pm = PowerModel(node)
        joules = pm.energy_joules(phase, seconds) * n_nodes
        self._busy_joules[module_key] = self._busy_joules.get(module_key, 0.0) + joules
        return joules

    def credit_phase(
        self, module_key: str, node: NodeSpec, phase: JobPhase,
        n_nodes: int, seconds: float,
    ) -> float:
        """Refund energy pre-charged for run time that never happened.

        Phase energy is charged up-front for the planned runtime; when a
        fault kills the phase early the unconsumed tail is credited back so
        failed runs only account for the power they actually drew.
        """
        pm = PowerModel(node)
        joules = pm.energy_joules(phase, seconds) * n_nodes
        self._busy_joules[module_key] = self._busy_joules.get(module_key, 0.0) - joules
        return joules

    def charge_idle(
        self, module_key: str, node: NodeSpec, node_seconds: float
    ) -> float:
        joules = PowerModel(node).idle_watts * node_seconds
        self._idle_joules[module_key] = self._idle_joules.get(module_key, 0.0) + joules
        return joules

    @property
    def busy_joules(self) -> float:
        return sum(self._busy_joules.values())

    @property
    def idle_joules(self) -> float:
        return sum(self._idle_joules.values())

    @property
    def total_joules(self) -> float:
        return self.busy_joules + self.idle_joules

    @property
    def total_kwh(self) -> float:
        return self.total_joules / 3.6e6

    def per_module(self) -> dict[str, dict[str, float]]:
        keys = set(self._busy_joules) | set(self._idle_joules)
        return {
            k: {
                "busy_joules": self._busy_joules.get(k, 0.0),
                "idle_joules": self._idle_joules.get(k, 0.0),
            }
            for k in sorted(keys)
        }
