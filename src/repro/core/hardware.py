"""Hardware specifications for the MSA modules.

Encodes the devices named by the paper — Intel Xeon Cascade Lake and
Platinum CPUs, NVIDIA V100 and A100 GPUs (with tensor cores), the Intel
STRATIX10 FPGA — and the node types of the DEEP and JUWELS systems,
including the DEEP DAM node of **Table I** verbatim:

========================  =============================================
CPU                       16 nodes with 2x Intel Xeon Cascade Lake
Hardware acceleration     16 NVIDIA V100 GPU, 16 Intel STRATIX10 FPGA
Memory                    384 GB DDR4 / node, 32 GB FPGA, 32 GB HBM2 GPU
Storage                   2x 1.5 TB NVMe SSD
========================  =============================================

Throughput figures are public datasheet numbers; the experiments depend on
their *ratios* (e.g. A100 tensor vs V100 tensor ≈ 2.5×), not absolutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


GIGA = 1.0e9
TERA = 1.0e12
GB = 1024 ** 3
TB = 1024 ** 4


@dataclass(frozen=True)
class CpuSpec:
    """A CPU socket."""

    name: str
    cores: int
    clock_ghz: float
    flops_per_cycle: int = 16          # AVX-512 FMA double pumped
    scalar_ipc: float = 4.0            # out-of-order fat core; ~1 for manycore
    tdp_watts: float = 150.0

    @property
    def peak_flops(self) -> float:
        return self.cores * self.clock_ghz * GIGA * self.flops_per_cycle

    @property
    def scalar_ops_per_s(self) -> float:
        """Aggregate scalar throughput — what data-management codes see."""
        return self.cores * self.clock_ghz * GIGA * self.scalar_ipc

    @property
    def single_thread_ops_per_s(self) -> float:
        return self.clock_ghz * GIGA * self.scalar_ipc


@dataclass(frozen=True)
class GpuSpec:
    """A GPU accelerator."""

    name: str
    fp32_tflops: float
    fp64_tflops: float
    tensor_tflops: float               # mixed-precision tensor-core path
    memory_GB: float
    memory_bw_GBps: float
    nvlink_GBps: float
    tdp_watts: float

    @property
    def peak_flops(self) -> float:
        return self.fp32_tflops * TERA

    @property
    def tensor_flops(self) -> float:
        return self.tensor_tflops * TERA


@dataclass(frozen=True)
class FpgaSpec:
    """An FPGA accelerator (DEEP DAM / the ESB's GCE)."""

    name: str
    logic_elements_m: float
    memory_GB: float
    pcie_gen: int = 3
    tdp_watts: float = 120.0


@dataclass(frozen=True)
class MemorySpec:
    """Node memory hierarchy (DDR + HBM + NVM tiers)."""

    ddr_GB: float
    hbm_GB: float = 0.0
    nvm_GB: float = 0.0

    @property
    def total_GB(self) -> float:
        return self.ddr_GB + self.hbm_GB + self.nvm_GB


@dataclass(frozen=True)
class StorageSpec:
    """Node-local storage."""

    devices: int
    capacity_TB_each: float
    read_GBps: float = 3.0
    write_GBps: float = 2.0

    @property
    def capacity_TB(self) -> float:
        return self.devices * self.capacity_TB_each


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: CPU sockets + accelerators + memory + local storage."""

    name: str
    cpu: CpuSpec
    cpu_sockets: int = 2
    gpus: tuple[GpuSpec, ...] = ()
    fpgas: tuple[FpgaSpec, ...] = ()
    memory: MemorySpec = MemorySpec(ddr_GB=96.0)
    storage: Optional[StorageSpec] = None
    idle_watts: float = 100.0

    @property
    def cpu_cores(self) -> int:
        return self.cpu.cores * self.cpu_sockets

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    @property
    def cpu_peak_flops(self) -> float:
        return self.cpu.peak_flops * self.cpu_sockets

    @property
    def gpu_peak_flops(self) -> float:
        return sum(g.peak_flops for g in self.gpus)

    @property
    def gpu_tensor_flops(self) -> float:
        return sum(g.tensor_flops for g in self.gpus)

    @property
    def peak_flops(self) -> float:
        return self.cpu_peak_flops + self.gpu_peak_flops

    @property
    def peak_watts(self) -> float:
        return (
            self.idle_watts
            + self.cpu.tdp_watts * self.cpu_sockets
            + sum(g.tdp_watts for g in self.gpus)
            + sum(f.tdp_watts for f in self.fpgas)
        )

    def with_name(self, name: str) -> "NodeSpec":
        return replace(self, name=name)


# ---------------------------------------------------------------------------
# device catalogue (paper hardware)
# ---------------------------------------------------------------------------

XEON_CASCADE_LAKE = CpuSpec(
    name="Intel Xeon Cascade Lake (Gold 6230)",
    cores=20, clock_ghz=2.1, tdp_watts=125.0,
)

XEON_PLATINUM_8168 = CpuSpec(
    name="Intel Xeon Platinum 8168 (Skylake)",
    cores=24, clock_ghz=2.7, tdp_watts=205.0,
)

#: Many-core CPU standing in for the ESB's 'numerous simpler cores' —
#: high vector throughput, weak single-thread performance.
KNL_MANYCORE = CpuSpec(
    name="Manycore (KNL-class)",
    cores=64, clock_ghz=1.4, flops_per_cycle=32, scalar_ipc=1.0, tdp_watts=215.0,
)

NVIDIA_V100 = GpuSpec(
    name="NVIDIA V100",
    fp32_tflops=15.7, fp64_tflops=7.8, tensor_tflops=125.0,
    memory_GB=32.0, memory_bw_GBps=900.0, nvlink_GBps=300.0, tdp_watts=300.0,
)

NVIDIA_A100 = GpuSpec(
    name="NVIDIA A100",
    fp32_tflops=19.5, fp64_tflops=9.7, tensor_tflops=312.0,
    memory_GB=40.0, memory_bw_GBps=1555.0, nvlink_GBps=600.0, tdp_watts=400.0,
)

STRATIX10 = FpgaSpec(
    name="Intel STRATIX10 (PCIe3)",
    logic_elements_m=2.8, memory_GB=32.0, pcie_gen=3,
)


# ---------------------------------------------------------------------------
# node catalogue (DEEP and JUWELS, from the paper)
# ---------------------------------------------------------------------------

#: Table I verbatim: the DEEP Data Analytics Module node.
DEEP_DAM_NODE = NodeSpec(
    name="DEEP DAM node",
    cpu=XEON_CASCADE_LAKE,
    cpu_sockets=2,
    gpus=(NVIDIA_V100,),
    fpgas=(STRATIX10,),
    memory=MemorySpec(ddr_GB=384.0, hbm_GB=32.0, nvm_GB=2048.0),
    storage=StorageSpec(devices=2, capacity_TB_each=1.5),
)

DEEP_CM_NODE = NodeSpec(
    name="DEEP CM node",
    cpu=XEON_CASCADE_LAKE,
    cpu_sockets=2,
    memory=MemorySpec(ddr_GB=192.0),
)

DEEP_ESB_NODE = NodeSpec(
    name="DEEP ESB node",
    cpu=KNL_MANYCORE,
    cpu_sockets=1,
    gpus=(NVIDIA_V100,),
    memory=MemorySpec(ddr_GB=48.0, hbm_GB=16.0),
)

JUWELS_CLUSTER_NODE = NodeSpec(
    name="JUWELS cluster node",
    cpu=XEON_PLATINUM_8168,
    cpu_sockets=2,
    memory=MemorySpec(ddr_GB=96.0),
)

JUWELS_CLUSTER_GPU_NODE = NodeSpec(
    name="JUWELS cluster GPU node",
    cpu=XEON_PLATINUM_8168,
    cpu_sockets=2,
    gpus=(NVIDIA_V100,) * 4,
    memory=MemorySpec(ddr_GB=192.0),
)

JUWELS_BOOSTER_NODE = NodeSpec(
    name="JUWELS booster node",
    cpu=XEON_PLATINUM_8168,   # stand-in for the booster's EPYC hosts
    cpu_sockets=2,
    gpus=(NVIDIA_A100,) * 4,
    memory=MemorySpec(ddr_GB=512.0),
)
