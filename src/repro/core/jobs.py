"""Heterogeneous application workloads (Fig. 2 of the paper).

Fig. 2 groups the JSC application portfolio into three user types:

1. low/medium-scalable codes with high data management — served by the
   general-purpose **cluster** module,
2. highly scalable codes with regular communication — served by the
   **booster**,
3. applications needing characteristics of both plus innovative modules
   (large-memory analytics, ML training on GPUs, quantum optimisation) —
   served by *combinations* of modules on one well-interconnected platform.

A :class:`Job` is a sequence of :class:`JobPhase`s; each phase carries a
resource-demand profile (FLOPs, Amdahl parallel fraction, GPU/tensor-core
use, per-node memory, I/O and communication volume).  The runtime of a phase
on a candidate module follows from the module's node spec and fabric — this
is the model the scheduler's matchmaking minimises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.core.module import ComputeModule
from repro.core.hardware import GB


class JobStatus(str, Enum):
    """Failure-aware job lifecycle (production batch-system semantics).

    ``PENDING -> RUNNING -> COMPLETED`` is the happy path; an injected
    fault moves a running job to ``FAILED``, and the retry policy either
    puts it back in the queue (``REQUEUED``, after backoff) or leaves it
    terminally ``FAILED`` once retries are exhausted.
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    REQUEUED = "requeued"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.COMPLETED, JobStatus.FAILED)


class WorkloadClass(str, Enum):
    """Application classes from Fig. 2."""

    SIMULATION_LOWSCALE = "simulation-lowscale"      # data-mgmt heavy, CM
    SIMULATION_HIGHSCALE = "simulation-highscale"    # regular comm, booster
    ML_TRAINING = "ml-training"                      # GPU/tensor-core bound
    ML_INFERENCE = "ml-inference"                    # scale-out, modest compute
    DATA_ANALYTICS = "data-analytics"                # large memory (Spark/DAM)
    QUANTUM_OPT = "quantum-optimisation"             # annealer-offloaded


@dataclass(frozen=True)
class JobPhase:
    """One phase of a job and its resource-demand profile."""

    name: str
    workload: WorkloadClass
    work_flops: float                    # total useful floating-point work
    nodes: int = 1                       # nodes requested
    parallel_fraction: float = 0.95      # Amdahl's f
    uses_gpu: bool = False
    uses_tensor_cores: bool = False
    memory_GB_per_node: float = 16.0
    io_bytes: float = 0.0                # volume read from/written to SSSM
    comm_bytes_per_node: float = 0.0     # inter-node traffic per node
    #: Achievable fraction of peak on a well-matched device.
    efficiency: float = 0.10

    def __post_init__(self) -> None:
        if self.work_flops < 0 or self.nodes < 1:
            raise ValueError("work must be non-negative and nodes >= 1")
        if not (0.0 <= self.parallel_fraction <= 1.0):
            raise ValueError("parallel_fraction must be in [0, 1]")
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")


@dataclass(frozen=True)
class CoAllocatedPhase:
    """A phase whose components run *simultaneously* on different modules.

    The MSA's signature capability (the paper's conclusion: scheduling
    'heterogeneous workloads onto matching combinations of MSA module
    resources'): e.g. a solver component on the booster streaming to an
    in-situ analytics component on the DAM.  ``components`` maps a module
    kind preference to a :class:`JobPhase`; all components are allocated
    together and released when the slowest finishes.
    """

    name: str
    components: tuple[JobPhase, ...]
    #: Data exchanged between components over the federation per run.
    coupling_bytes: float = 0.0

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise ValueError("co-allocation needs at least two components")
        if self.coupling_bytes < 0:
            raise ValueError("coupling_bytes must be non-negative")

    @property
    def workload(self) -> WorkloadClass:
        return self.components[0].workload

    @property
    def work_flops(self) -> float:
        return sum(c.work_flops for c in self.components)


@dataclass
class Job:
    """A (possibly multi-phase, possibly multi-module) application run."""

    name: str
    phases: list             # JobPhase | CoAllocatedPhase entries
    arrival_time: float = 0.0
    #: Submitting community ("remote-sensing", "health", ...) — the paper's
    #: centre serves many; fair-share scheduling keys on this.
    user: str = "default"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a job needs at least one phase")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def total_work_flops(self) -> float:
        return sum(p.work_flops for p in self.phases)


# ---------------------------------------------------------------------------
# runtime model
# ---------------------------------------------------------------------------

#: Penalty factor when a phase's working set exceeds node memory and must
#: spill to NVM (if present) or to the filesystem.
NVM_SPILL_PENALTY = 2.5
FS_SPILL_PENALTY = 8.0

#: Throughput of a storage module assumed reachable by a phase (shared).
DEFAULT_IO_GBps = 40.0


def node_throughput(phase: JobPhase, module: ComputeModule) -> float:
    """Sustained FLOP/s one node of ``module`` delivers for ``phase``."""
    spec = module.node_spec
    if phase.uses_gpu and spec.gpu_count > 0:
        peak = spec.gpu_tensor_flops if (
            phase.uses_tensor_cores and spec.gpu_tensor_flops > 0
        ) else spec.gpu_peak_flops
    elif phase.workload in (
        WorkloadClass.SIMULATION_LOWSCALE, WorkloadClass.DATA_ANALYTICS
    ):
        # Data-management-heavy codes are scalar/latency bound: they see the
        # cores' out-of-order scalar throughput, not the vector-FMA peak —
        # this is why fat cluster cores beat manycore boosters on them.
        peak = spec.cpu.scalar_ops_per_s * spec.cpu_sockets
    else:
        peak = spec.cpu_peak_flops
    return peak * phase.efficiency


def memory_penalty(phase: JobPhase, module: ComputeModule) -> float:
    """Spill multiplier when the working set exceeds the DDR+HBM tier."""
    mem = module.node_spec.memory
    fast = mem.ddr_GB + mem.hbm_GB
    if phase.memory_GB_per_node <= fast:
        return 1.0
    if phase.memory_GB_per_node <= fast + mem.nvm_GB:
        return NVM_SPILL_PENALTY
    return FS_SPILL_PENALTY


def phase_runtime(
    phase: JobPhase,
    module: ComputeModule,
    n_nodes: Optional[int] = None,
    io_GBps: float = DEFAULT_IO_GBps,
) -> float:
    """Estimated runtime (s) of ``phase`` on ``n_nodes`` of ``module``.

    Amdahl compute + α-β communication + shared-storage I/O, with memory
    spill penalties.  Used both by the scheduler's matchmaking and by the
    Fig. 2 experiment to score placements.
    """
    n = n_nodes if n_nodes is not None else min(phase.nodes, module.n_nodes)
    if n < 1:
        raise ValueError("need at least one node")
    tput = node_throughput(phase, module)
    f = phase.parallel_fraction
    serial = phase.work_flops * (1.0 - f) / tput
    parallel = phase.work_flops * f / (tput * n)
    compute = (serial + parallel) * memory_penalty(phase, module)

    comm = 0.0
    if n > 1 and phase.comm_bytes_per_node > 0:
        model = module.cost_model
        # Each node exchanges its volume with neighbours; charge ~log(n)
        # latency rounds plus the serialisation of its own traffic.
        comm = (
            math.ceil(math.log2(n)) * model.alpha * 1000
            + phase.comm_bytes_per_node * model.beta
        )

    io = phase.io_bytes / (io_GBps * 1e9) if phase.io_bytes > 0 else 0.0
    return compute + comm + io


# ---------------------------------------------------------------------------
# Fig. 2 workload mix
# ---------------------------------------------------------------------------

def _lowscale_job(rng: np.random.Generator, i: int, t: float) -> Job:
    return Job(
        name=f"sim-lowscale-{i}",
        arrival_time=t,
        phases=[JobPhase(
            name="solve",
            workload=WorkloadClass.SIMULATION_LOWSCALE,
            work_flops=rng.uniform(0.5, 2.0) * 1e15,
            nodes=int(rng.integers(2, 8)),
            parallel_fraction=0.85,
            memory_GB_per_node=rng.uniform(32, 128),
            io_bytes=rng.uniform(0.2, 1.0) * 100 * GB,
        )],
    )


def _highscale_job(rng: np.random.Generator, i: int, t: float) -> Job:
    return Job(
        name=f"sim-highscale-{i}",
        arrival_time=t,
        phases=[JobPhase(
            name="timestep-loop",
            workload=WorkloadClass.SIMULATION_HIGHSCALE,
            work_flops=rng.uniform(2.0, 8.0) * 1e16,
            nodes=int(rng.integers(16, 64)),
            parallel_fraction=0.999,
            uses_gpu=True,
            memory_GB_per_node=16.0,
            comm_bytes_per_node=rng.uniform(1, 4) * GB,
        )],
    )


def _analytics_job(rng: np.random.Generator, i: int, t: float) -> Job:
    return Job(
        name=f"analytics-{i}",
        arrival_time=t,
        phases=[JobPhase(
            name="spark-pipeline",
            workload=WorkloadClass.DATA_ANALYTICS,
            work_flops=rng.uniform(0.2, 1.0) * 1e15,
            nodes=int(rng.integers(2, 8)),
            parallel_fraction=0.95,
            memory_GB_per_node=rng.uniform(300, 450),   # needs DAM-class memory
            io_bytes=rng.uniform(0.5, 2.0) * 1024 * GB,
        )],
    )


def _ml_pipeline_job(rng: np.random.Generator, i: int, t: float) -> Job:
    """The intertwined HPC+HPDA job of the paper's third user type."""
    return Job(
        name=f"ml-pipeline-{i}",
        arrival_time=t,
        phases=[
            JobPhase(
                name="preprocess",
                workload=WorkloadClass.SIMULATION_LOWSCALE,
                work_flops=rng.uniform(0.1, 0.4) * 1e15,
                nodes=int(rng.integers(2, 6)),
                parallel_fraction=0.9,
                memory_GB_per_node=64.0,
                io_bytes=rng.uniform(0.5, 1.5) * 200 * GB,
            ),
            JobPhase(
                name="train",
                workload=WorkloadClass.ML_TRAINING,
                work_flops=rng.uniform(1.0, 4.0) * 1e18,
                nodes=int(rng.integers(8, 24)),
                parallel_fraction=0.998,
                uses_gpu=True,
                uses_tensor_cores=True,
                memory_GB_per_node=32.0,
                comm_bytes_per_node=rng.uniform(4, 16) * GB,
            ),
            JobPhase(
                name="evaluate",
                workload=WorkloadClass.ML_INFERENCE,
                work_flops=rng.uniform(0.5, 2.0) * 1e16,
                nodes=int(rng.integers(4, 16)),
                parallel_fraction=0.99,
                uses_gpu=True,
                memory_GB_per_node=16.0,
            ),
        ],
    )


def synthetic_workload_mix(
    n_jobs: int = 20,
    seed: int = 0,
    mean_interarrival_s: float = 600.0,
) -> list[Job]:
    """A deterministic mixed workload covering the Fig. 2 classes.

    Roughly 30% low-scale simulations, 25% high-scale simulations, 20%
    large-memory analytics, 25% intertwined ML pipelines, arriving as a
    Poisson stream.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    rng = np.random.default_rng(seed)
    makers = [_lowscale_job, _highscale_job, _analytics_job, _ml_pipeline_job]
    weights = np.array([0.30, 0.25, 0.20, 0.25])
    jobs: list[Job] = []
    t = 0.0
    for i in range(n_jobs):
        t += rng.exponential(mean_interarrival_s)
        maker = makers[rng.choice(len(makers), p=weights)]
        jobs.append(maker(rng, i, t))
    return jobs
