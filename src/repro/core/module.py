"""MSA modules (Fig. 1 of the paper).

Each module is a parallel clustered system with its own fabric, tailored to
a class of workloads:

* **CM** — Cluster Module: fat multi-core CPUs, fast single-thread, limited
  scalability, good memory; for computationally expensive low/medium-scale
  codes,
* **ESB** — Extreme Scale Booster: many-core (here: GPU-dense) nodes for
  highly scalable regular codes, with the FPGA Global Collective Engine in
  its fabric,
* **DAM** — Data Analytics Module: GPU+FPGA nodes with very large
  DDR+HBM+NVM memory for Spark-style analytics and DL,
* **SSSM** — Scalable Storage Service Module: parallel filesystem
  (Lustre/GPFS),
* **NAM** — Network Attached Memory: network-shared dataset staging,
* **QM** — Quantum Module: a quantum annealer (D-Wave-class) used as an
  optimisation accelerator.

Modules expose node inventory, a free-node allocator, a fabric cost model,
and capability scores used by the scheduler's matchmaking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.simnet.costs import CommCostModel
from repro.simnet.link import LinkKind
from repro.simnet.topology import Topology, fat_tree
from repro.core.hardware import NodeSpec


class ModuleKind(str, Enum):
    CLUSTER = "CM"
    BOOSTER = "ESB"
    DATA_ANALYTICS = "DAM"
    STORAGE = "SSSM"
    NAM = "NAM"
    QUANTUM = "QM"


class AllocationError(RuntimeError):
    """Raised when a module cannot satisfy a node request."""


@dataclass
class ComputeModule:
    """A parallel clustered system: homogeneous nodes + module fabric."""

    name: str
    kind: ModuleKind
    node_spec: NodeSpec
    n_nodes: int
    fabric_kind: LinkKind = LinkKind.INFINIBAND_EDR
    fabric_radix: int = 16
    _free: set = field(default_factory=set, repr=False)
    _down: set = field(default_factory=set, repr=False)
    _topology: Optional[Topology] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self._free = set(range(self.n_nodes))
        self._down = set()

    # -- inventory -----------------------------------------------------------
    @property
    def total_cpu_cores(self) -> int:
        return self.n_nodes * self.node_spec.cpu_cores

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.node_spec.gpu_count

    @property
    def total_fpgas(self) -> int:
        return self.n_nodes * len(self.node_spec.fpgas)

    @property
    def total_memory_GB(self) -> float:
        return self.n_nodes * self.node_spec.memory.total_GB

    @property
    def total_nvm_GB(self) -> float:
        return self.n_nodes * self.node_spec.memory.nvm_GB

    @property
    def peak_flops(self) -> float:
        return self.n_nodes * self.node_spec.peak_flops

    # -- fabric ----------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        if self._topology is None:
            self._topology = fat_tree(
                max(self.n_nodes, 1), self.fabric_kind,
                radix=self.fabric_radix, name=f"{self.name}-fabric",
            )
        return self._topology

    @property
    def cost_model(self) -> CommCostModel:
        return CommCostModel.of_kind(self.fabric_kind)

    # -- allocation ---------------------------------------------------------------
    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def busy_nodes(self) -> int:
        return self.n_nodes - len(self._free) - len(self._down)

    @property
    def down_nodes(self) -> set[int]:
        """Nodes currently failed/under repair (not allocatable)."""
        return set(self._down)

    def allocate(self, n: int, avoid: Optional[set[int]] = None) -> list[int]:
        """Take ``n`` free nodes (lowest ids first, deterministic).

        ``avoid`` marks suspect nodes (e.g. recently repaired after a
        crash): they are used only when no clean node remains, so failure-
        aware placement steers work away from flaky hardware without
        shrinking capacity.
        """
        if n < 0:
            raise ValueError("cannot allocate a negative node count")
        if n > len(self._free):
            raise AllocationError(
                f"{self.name}: requested {n} nodes, only {len(self._free)} free"
            )
        if avoid:
            taken = sorted(self._free, key=lambda i: (i in avoid, i))[:n]
        else:
            taken = sorted(self._free)[:n]
        self._free.difference_update(taken)
        return taken

    def release(self, nodes: list[int]) -> None:
        for node in nodes:
            if node in self._free:
                raise AllocationError(f"{self.name}: node {node} released twice")
            if not (0 <= node < self.n_nodes):
                raise AllocationError(f"{self.name}: node {node} out of range")
        self._free.update(n for n in nodes if n not in self._down)

    # -- failure/repair -------------------------------------------------------
    def mark_down(self, node: int) -> None:
        """Take a node out of service (crash); busy nodes go down too."""
        if not (0 <= node < self.n_nodes):
            raise AllocationError(f"{self.name}: node {node} out of range")
        self._down.add(node)
        self._free.discard(node)

    def mark_up(self, node: int) -> None:
        """Return a repaired node to the free pool."""
        if node not in self._down:
            raise AllocationError(f"{self.name}: node {node} is not down")
        self._down.discard(node)
        self._free.add(node)

    # -- capability matchmaking ------------------------------------------------------
    def capability(self) -> dict[str, float]:
        """Feature vector the scheduler scores phases against."""
        spec = self.node_spec
        return {
            "single_thread": spec.cpu.clock_ghz,
            "cpu_flops": spec.cpu_peak_flops,
            "gpu_flops": spec.gpu_peak_flops,
            "tensor_flops": spec.gpu_tensor_flops,
            "memory_GB": spec.memory.total_GB,
            "nvm_GB": spec.memory.nvm_GB,
            "scalability": float(self.n_nodes),
        }


def ClusterModule(name: str, node_spec: NodeSpec, n_nodes: int,
                  fabric: LinkKind = LinkKind.INFINIBAND_EDR) -> ComputeModule:
    """The general-purpose Cluster Module (CM)."""
    return ComputeModule(name, ModuleKind.CLUSTER, node_spec, n_nodes, fabric_kind=fabric)


@dataclass
class BoosterModule(ComputeModule):
    """Extreme Scale Booster with the FPGA Global Collective Engine."""

    gce_enabled: bool = True

    def __init__(self, name: str, node_spec: NodeSpec, n_nodes: int,
                 fabric: LinkKind = LinkKind.INFINIBAND_HDR,
                 gce_enabled: bool = True) -> None:
        super().__init__(name, ModuleKind.BOOSTER, node_spec, n_nodes, fabric_kind=fabric)
        self.gce_enabled = gce_enabled

    def gce(self):
        """The booster fabric's Global Collective Engine model."""
        from repro.mpi.gce import GlobalCollectiveEngine

        if not self.gce_enabled:
            raise AllocationError(f"{self.name}: GCE disabled")
        return GlobalCollectiveEngine(self.cost_model)


def DataAnalyticsModule(name: str, node_spec: NodeSpec, n_nodes: int,
                        fabric: LinkKind = LinkKind.EXTOLL) -> ComputeModule:
    """The large-memory Data Analytics Module (DAM)."""
    return ComputeModule(name, ModuleKind.DATA_ANALYTICS, node_spec, n_nodes,
                         fabric_kind=fabric)


@dataclass
class StorageModule:
    """Scalable Storage Service Module: front-end to the parallel filesystem."""

    name: str
    capacity_PB: float
    n_targets: int = 32                  # object storage targets (OSTs)
    target_GBps: float = 5.0             # per-OST streaming bandwidth
    kind: ModuleKind = ModuleKind.STORAGE

    @property
    def aggregate_GBps(self) -> float:
        return self.n_targets * self.target_GBps

    def filesystem(self, stripe_count: int = 4, stripe_MB: float = 1.0):
        from repro.storage.pfs import ParallelFileSystem

        return ParallelFileSystem(
            name=f"{self.name}-lustre",
            n_targets=self.n_targets,
            target_GBps=self.target_GBps,
            default_stripe_count=stripe_count,
            default_stripe_MB=stripe_MB,
        )


@dataclass
class NamModule:
    """Network Attached Memory: shared dataset staging over the fabric."""

    name: str
    capacity_GB: float = 1024.0
    read_GBps: float = 10.0
    write_GBps: float = 8.0
    kind: ModuleKind = ModuleKind.NAM

    def device(self):
        from repro.storage.nam import NetworkAttachedMemory

        return NetworkAttachedMemory(
            capacity_GB=self.capacity_GB,
            read_GBps=self.read_GBps,
            write_GBps=self.write_GBps,
        )


@dataclass
class QuantumModule:
    """Quantum Module: a quantum annealer integrated as an accelerator.

    The paper reports using a D-Wave 2000Q (2000 qubits) and later the
    Advantage system (5000 qubits, 35000 couplers) through JUNIQ.
    """

    name: str
    n_qubits: int = 5000
    n_couplers: int = 35000
    topology_family: str = "pegasus"
    kind: ModuleKind = ModuleKind.QUANTUM

    def annealer(self, seed: int = 0):
        from repro.quantum.annealer import SimulatedQuantumAnnealer

        return SimulatedQuantumAnnealer(
            n_qubits=self.n_qubits,
            n_couplers=self.n_couplers,
            topology_family=self.topology_family,
            seed=seed,
        )
