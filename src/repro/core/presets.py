"""Production MSA systems from the paper: DEEP and JUWELS.

Node counts follow Sec. II-B:

* **DEEP** — 16-node DAM exactly per Table I (2× Cascade Lake, 1 V100,
  1 STRATIX10, 384+32+32 GB, 2 TB NVM/node → 32 TB aggregate NVM), plus
  CM/ESB prototype partitions, SSSM, the NAM prototype, and the JUNIQ
  quantum module (D-Wave Advantage class: 5000 qubits / 35000 couplers).
* **JUWELS** — cluster module: 2583 nodes totalling ≈122,768 CPU cores and
  224 GPUs (56 quad-V100 nodes); booster module: 940 nodes, ≈45,024 CPU
  cores and 3,744 GPUs (quad-A100 nodes).  Our construction uses uniform
  dual-socket nodes, matching the paper's totals to within 1% (the paper's
  own figures mix node sub-types); `EXPERIMENTS.md` records both.
"""

from __future__ import annotations

from repro.simnet.link import LinkKind
from repro.core.hardware import (
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    JUWELS_BOOSTER_NODE,
    JUWELS_CLUSTER_GPU_NODE,
    JUWELS_CLUSTER_NODE,
    NodeSpec,
)
from repro.core.module import (
    BoosterModule,
    ClusterModule,
    DataAnalyticsModule,
    NamModule,
    QuantumModule,
    StorageModule,
)
from repro.core.system import MSASystem


def deep_system() -> MSASystem:
    """The DEEP modular supercomputer (DEEP-EST prototype)."""
    sys = MSASystem("DEEP")
    sys.add_module("cm", ClusterModule("DEEP-CM", DEEP_CM_NODE, n_nodes=50,
                                       fabric=LinkKind.INFINIBAND_EDR))
    sys.add_module("esb", BoosterModule("DEEP-ESB", DEEP_ESB_NODE, n_nodes=75,
                                        fabric=LinkKind.EXTOLL, gce_enabled=True))
    sys.add_module("dam", DataAnalyticsModule("DEEP-DAM", DEEP_DAM_NODE, n_nodes=16,
                                              fabric=LinkKind.EXTOLL))
    sys.add_module("sssm", StorageModule("DEEP-SSSM", capacity_PB=2.0, n_targets=16))
    sys.add_module("nam", NamModule("DEEP-NAM", capacity_GB=2048.0))
    sys.add_module("qm", QuantumModule("JUNIQ-Advantage", n_qubits=5000,
                                       n_couplers=35000, topology_family="pegasus"))
    return sys


def juwels_system() -> MSASystem:
    """JUWELS: Europe's then-No. 1 supercomputer, cluster + booster + storage."""
    sys = MSASystem("JUWELS")
    # 2583 cluster nodes; 56 of them carry 4x V100 (= 224 GPUs).
    sys.add_module("cluster", ClusterModule(
        "JUWELS-Cluster", JUWELS_CLUSTER_NODE, n_nodes=2583 - 56,
        fabric=LinkKind.INFINIBAND_EDR))
    sys.add_module("cluster_gpu", ClusterModule(
        "JUWELS-Cluster-GPU", JUWELS_CLUSTER_GPU_NODE, n_nodes=56,
        fabric=LinkKind.INFINIBAND_EDR))
    # 940 booster nodes; 936 carry 4x A100 (= 3744 GPUs), 4 are service nodes.
    sys.add_module("booster", BoosterModule(
        "JUWELS-Booster", JUWELS_BOOSTER_NODE, n_nodes=936,
        fabric=LinkKind.INFINIBAND_HDR, gce_enabled=True))
    sys.add_module("booster_svc", ClusterModule(
        "JUWELS-Booster-Service", JUWELS_CLUSTER_NODE, n_nodes=4,
        fabric=LinkKind.INFINIBAND_HDR))
    sys.add_module("sssm", StorageModule("JUST-GPFS", capacity_PB=75.0,
                                         n_targets=128, target_GBps=6.0))
    return sys


def small_msa_system(
    cm_nodes: int = 8,
    esb_nodes: int = 8,
    dam_nodes: int = 2,
) -> MSASystem:
    """A small DEEP-shaped system for tests and examples.

    One cluster, one booster, one analytics module and storage — big enough
    to exercise matchmaking, co-allocation and fault recovery, small enough
    that a property sweep over hundreds of seeds stays fast.
    """
    sys = MSASystem("MSA-small")
    sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, cm_nodes,
                                       fabric=LinkKind.INFINIBAND_EDR))
    sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, esb_nodes,
                                        fabric=LinkKind.EXTOLL))
    sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, dam_nodes,
                                              fabric=LinkKind.EXTOLL))
    sys.add_module("sssm", StorageModule("SSSM", capacity_PB=1.0))
    return sys


def homogeneous_system(
    name: str,
    node_spec: NodeSpec,
    n_nodes: int,
    fabric: LinkKind = LinkKind.INFINIBAND_EDR,
    as_booster: bool = False,
) -> MSASystem:
    """A traditional single-module system — the baseline the MSA is compared
    against in the Fig. 2 workload-placement experiment (E2)."""
    sys = MSASystem(name)
    if as_booster:
        sys.add_module("all", BoosterModule(f"{name}-nodes", node_spec, n_nodes,
                                            fabric=fabric, gce_enabled=False))
    else:
        sys.add_module("all", ClusterModule(f"{name}-nodes", node_spec, n_nodes,
                                            fabric=fabric))
    sys.add_module("sssm", StorageModule(f"{name}-storage", capacity_PB=2.0))
    return sys
