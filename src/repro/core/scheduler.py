"""Heterogeneous workload scheduling onto MSA module combinations.

The paper's conclusion highlights "being able to schedule heterogeneous
workloads onto matching combinations of MSA module resources".  This module
implements that: a discrete-event scheduler that places each job phase on
the module minimising its estimated time-to-solution (matchmaking), with a
strict-FCFS queue and an optional conservative backfill.

Running the *same* workload mix through an MSA system and through
homogeneous baselines (cluster-only, booster-only) regenerates the Fig. 2
argument: the modular system wins on makespan and energy for mixed
workloads because no single module type suits every phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.simnet.events import Simulator
from repro.core.energy import EnergyAccountant
from repro.core.jobs import CoAllocatedPhase, Job, JobPhase, phase_runtime
from repro.core.module import ComputeModule, StorageModule
from repro.core.system import MSASystem


class SchedulerPolicy(str, Enum):
    FCFS = "fcfs"
    FCFS_BACKFILL = "fcfs-backfill"
    FAIR_SHARE = "fair-share"


class PlacementPolicy(str, Enum):
    MATCHMAKING = "matchmaking"      # min estimated time-to-solution (MSA mode)
    FIRST_FIT = "first-fit"          # naive: first module with free nodes


@dataclass(frozen=True)
class Allocation:
    """A phase execution record."""

    job_name: str
    phase_index: int
    phase_name: str
    module_key: str
    nodes: tuple[int, ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def node_seconds(self) -> float:
        return len(self.nodes) * self.duration


@dataclass
class ScheduleReport:
    """Outcome of one scheduling run."""

    system_name: str
    allocations: list[Allocation]
    completion_times: dict[str, float]
    wait_times: dict[str, float]
    makespan: float
    energy_busy_joules: float
    energy_idle_joules: float
    module_utilisation: dict[str, float]

    @property
    def energy_total_joules(self) -> float:
        return self.energy_busy_joules + self.energy_idle_joules

    @property
    def energy_kwh(self) -> float:
        return self.energy_total_joules / 3.6e6

    @property
    def mean_wait(self) -> float:
        if not self.wait_times:
            return 0.0
        return sum(self.wait_times.values()) / len(self.wait_times)

    @property
    def mean_turnaround(self) -> float:
        if not self.completion_times:
            return 0.0
        return sum(self.completion_times.values()) / len(self.completion_times)

    def summary(self) -> str:
        rows = [
            f"schedule on {self.system_name}:",
            f"  jobs completed : {len(self.completion_times)}",
            f"  makespan       : {self.makespan:,.0f} s",
            f"  mean wait      : {self.mean_wait:,.0f} s",
            f"  energy         : {self.energy_kwh:,.1f} kWh "
            f"(busy {self.energy_busy_joules / 3.6e6:,.1f}, "
            f"idle {self.energy_idle_joules / 3.6e6:,.1f})",
        ]
        for key, util in sorted(self.module_utilisation.items()):
            rows.append(f"  util[{key:<12}]: {util:6.1%}")
        return "\n".join(rows)


@dataclass
class _JobState:
    job: Job
    next_phase: int = 0
    prev_module: Optional[str] = None
    first_start: Optional[float] = None

    @property
    def current(self) -> JobPhase:
        return self.job.phases[self.next_phase]

    @property
    def finished(self) -> bool:
        return self.next_phase >= len(self.job.phases)


class MsaScheduler:
    """Discrete-event scheduler over an :class:`MSASystem`."""

    def __init__(
        self,
        system: MSASystem,
        queue_policy: SchedulerPolicy = SchedulerPolicy.FCFS_BACKFILL,
        placement: PlacementPolicy = PlacementPolicy.MATCHMAKING,
        patience_factor: Optional[float] = None,
    ) -> None:
        self.system = system
        self.queue_policy = queue_policy
        self.placement = placement
        if patience_factor is not None:
            if patience_factor < 1.0:
                raise ValueError("patience_factor must be >= 1")
            self.PATIENCE_FACTOR = patience_factor
        self.sim = Simulator()
        self.energy = EnergyAccountant()
        self._ready: list[_JobState] = []
        self._allocations: list[Allocation] = []
        self._completions: dict[str, float] = {}
        self._waits: dict[str, float] = {}
        self._busy_node_seconds: dict[str, float] = {}
        self._user_usage: dict[str, float] = {}
        self._submitted = 0
        self._io_GBps = self._storage_bandwidth()

    def _storage_bandwidth(self) -> float:
        storages = [
            m for m in self.system.modules.values() if isinstance(m, StorageModule)
        ]
        if not storages:
            return 40.0
        return sum(s.aggregate_GBps for s in storages)

    # -- submission ---------------------------------------------------------
    def submit(self, job: Job) -> None:
        self._submitted += 1
        evt = self.sim.timeout(job.arrival_time, value=job, name=f"arrive-{job.name}")
        evt.add_callback(self._on_arrival)

    def submit_all(self, jobs: list[Job]) -> None:
        for job in jobs:
            self.submit(job)

    # -- event handlers --------------------------------------------------------
    def _on_arrival(self, evt) -> None:
        self._ready.append(_JobState(job=evt.value))
        self._dispatch()

    def _on_phase_done(self, evt) -> None:
        state, placements = evt.value
        for module_key, nodes in placements:
            self.system.module(module_key).release(list(nodes))
        state.prev_module = placements[-1][0]
        state.next_phase += 1
        if state.finished:
            self._completions[state.job.name] = self.sim.now
        else:
            # Running jobs continue ahead of newly queued ones.
            self._ready.insert(0, state)
        self._dispatch()

    # -- placement -----------------------------------------------------------------
    def _candidates(self, phase: JobPhase) -> list[tuple[str, ComputeModule, int]]:
        out = []
        for key, module in self.system.compute_modules().items():
            if module.n_nodes == 0:
                continue
            n_alloc = min(phase.nodes, module.n_nodes)
            out.append((key, module, n_alloc))
        return out

    def _score(self, state: _JobState, key: str, module: ComputeModule, n: int) -> float:
        phase = state.current
        t = phase_runtime(phase, module, n, io_GBps=self._io_GBps)
        if state.prev_module is not None and state.prev_module != key:
            t += self.system.inter_module_transfer_time(
                state.prev_module, key, phase.io_bytes
            )
        return t

    #: A queued phase refuses a feasible-now module whose estimated runtime
    #: exceeds this multiple of the best module's — it waits instead.
    PATIENCE_FACTOR = 3.0

    def _choose(self, state: _JobState) -> Optional[tuple[str, ComputeModule, int, float]]:
        """Best feasible placement now, or None to keep waiting."""
        phase = state.current
        candidates = self._candidates(phase)
        feasible = [
            (key, module, n)
            for key, module, n in candidates
            if module.free_nodes >= n
        ]
        if not feasible:
            return None
        if self.placement is PlacementPolicy.FIRST_FIT:
            key, module, n = sorted(feasible, key=lambda c: c[0])[0]
            return key, module, n, self._score(state, key, module, n)
        scored = [
            (self._score(state, key, module, n), key, module, n)
            for key, module, n in feasible
        ]
        scored.sort(key=lambda s: (s[0], s[1]))
        t, key, module, n = scored[0]
        # Matchmaking with patience: starting now on a badly-matching module
        # (e.g. DL training on a CPU-only cluster) can be orders of magnitude
        # worse than queueing for the matching one.
        best_anywhere = min(
            self._score(state, k, m, na) for k, m, na in candidates
        )
        if t > self.PATIENCE_FACTOR * best_anywhere:
            return None
        return key, module, n, t

    def _blocked_modules(self, state: _JobState) -> set[str]:
        """Modules the queue head is waiting on (backfill must not raid them)."""
        phase = state.current
        best_key = None
        best_t = float("inf")
        for key, module, n in self._candidates(phase):
            t = self._score(state, key, module, n)
            if t < best_t:
                best_t, best_key = t, key
        return {best_key} if best_key is not None else set()

    # -- co-allocation (multi-module phases) --------------------------------
    def _choose_coalloc(
        self, state: _JobState
    ) -> Optional[list[tuple[str, ComputeModule, int, float, JobPhase]]]:
        """Greedy per-component placement; all-or-nothing."""
        phase: CoAllocatedPhase = state.current
        taken: dict[str, int] = {}
        plan = []
        for component in phase.components:
            best = None
            best_anywhere = float("inf")
            for key, module, n in self._candidates(component):
                t = phase_runtime(component, module, n,
                                  io_GBps=self._io_GBps)
                best_anywhere = min(best_anywhere, t)
                if module.free_nodes - taken.get(key, 0) < n:
                    continue
                if best is None or t < best[0]:
                    best = (t, key, module, n)
            # All-or-nothing, with the same patience rule as single-module
            # phases: a component refuses a badly-matching module and the
            # whole co-allocation waits.
            if best is None or best[0] > self.PATIENCE_FACTOR * best_anywhere:
                return None
            t, key, module, n = best
            taken[key] = taken.get(key, 0) + n
            plan.append((key, module, n, t, component))
        return plan

    def _start_coalloc(self, state: _JobState) -> bool:
        plan = self._choose_coalloc(state)
        if plan is None:
            return False
        phase: CoAllocatedPhase = state.current
        start = self.sim.now
        # The co-allocation completes when the slowest component does, plus
        # the coupling traffic crossing the federation.
        coupling = 0.0
        modules_used = {key for key, *_ in plan}
        if phase.coupling_bytes > 0 and len(modules_used) > 1:
            a, b = sorted(modules_used)[:2]
            coupling = self.system.inter_module_transfer_time(
                a, b, phase.coupling_bytes)
        runtime = max(t for _, _, _, t, _ in plan) + coupling
        placements = []
        if state.first_start is None:
            state.first_start = start
            self._waits[state.job.name] = start - state.job.arrival_time
        for key, module, n, _, component in plan:
            nodes = tuple(module.allocate(n))
            placements.append((key, nodes))
            alloc = Allocation(
                job_name=state.job.name,
                phase_index=state.next_phase,
                phase_name=f"{phase.name}/{component.name}",
                module_key=key,
                nodes=nodes,
                start=start,
                end=start + runtime,
            )
            self._allocations.append(alloc)
            self._busy_node_seconds[key] = (
                self._busy_node_seconds.get(key, 0.0) + alloc.node_seconds)
            self._user_usage[state.job.user] = (
                self._user_usage.get(state.job.user, 0.0)
                + alloc.node_seconds)
            self.energy.charge_phase(key, module.node_spec, component, n,
                                     runtime)
        done = self.sim.timeout(runtime, value=(state, placements),
                                name=f"done-{state.job.name}")
        done.add_callback(self._on_phase_done)
        return True

    def _dispatch(self) -> None:
        if self.queue_policy is SchedulerPolicy.FAIR_SHARE:
            # Least-consuming community first (stable: arrival order is
            # preserved within a community) — how a multi-community centre
            # keeps any one domain from monopolising the modules.
            self._ready.sort(
                key=lambda s: self._user_usage.get(s.job.user, 0.0))
        blocked: set[str] = set()
        i = 0
        while i < len(self._ready):
            state = self._ready[i]
            if isinstance(state.current, CoAllocatedPhase):
                if self._start_coalloc(state):
                    self._ready.pop(i)
                    continue
                if self.queue_policy is SchedulerPolicy.FCFS:
                    break
                i += 1
                continue
            choice = self._choose(state)
            usable = choice is not None and choice[0] not in blocked
            if usable:
                key, module, n, runtime = choice
                nodes = tuple(module.allocate(n))
                start = self.sim.now
                end = start + runtime
                if state.first_start is None:
                    state.first_start = start
                    self._waits[state.job.name] = start - state.job.arrival_time
                alloc = Allocation(
                    job_name=state.job.name,
                    phase_index=state.next_phase,
                    phase_name=state.current.name,
                    module_key=key,
                    nodes=nodes,
                    start=start,
                    end=end,
                )
                self._allocations.append(alloc)
                self._busy_node_seconds[key] = (
                    self._busy_node_seconds.get(key, 0.0) + alloc.node_seconds
                )
                self._user_usage[state.job.user] = (
                    self._user_usage.get(state.job.user, 0.0)
                    + alloc.node_seconds
                )
                self.energy.charge_phase(
                    key, module.node_spec, state.current, n, runtime
                )
                done = self.sim.timeout(
                    runtime, value=(state, [(key, nodes)]),
                    name=f"done-{state.job.name}"
                )
                done.add_callback(self._on_phase_done)
                self._ready.pop(i)
                continue  # same index now holds the next job
            # Head job cannot start: strict FCFS stops; backfill walks on but
            # must not take nodes from the module the head is waiting for.
            if self.queue_policy is SchedulerPolicy.FCFS:
                break
            blocked |= self._blocked_modules(state)
            i += 1

    # -- execution ------------------------------------------------------------------
    def run(self) -> ScheduleReport:
        """Run the event loop to completion and produce the report."""
        self.sim.run()
        if len(self._completions) != self._submitted:
            missing = self._submitted - len(self._completions)
            raise RuntimeError(f"{missing} jobs never completed — scheduler stuck")
        makespan = max(self._completions.values(), default=0.0)
        utilisation: dict[str, float] = {}
        for key, module in self.system.compute_modules().items():
            busy = self._busy_node_seconds.get(key, 0.0)
            total = module.n_nodes * makespan
            utilisation[key] = busy / total if total > 0 else 0.0
            idle_node_seconds = max(total - busy, 0.0)
            self.energy.charge_idle(key, module.node_spec, idle_node_seconds)
        return ScheduleReport(
            system_name=self.system.name,
            allocations=list(self._allocations),
            completion_times=dict(self._completions),
            wait_times=dict(self._waits),
            makespan=makespan,
            energy_busy_joules=self.energy.busy_joules,
            energy_idle_joules=self.energy.idle_joules,
            module_utilisation=utilisation,
        )


def schedule_workload(
    system: MSASystem,
    jobs: list[Job],
    queue_policy: SchedulerPolicy = SchedulerPolicy.FCFS_BACKFILL,
    placement: PlacementPolicy = PlacementPolicy.MATCHMAKING,
) -> ScheduleReport:
    """Convenience wrapper: submit ``jobs`` to ``system`` and run."""
    sched = MsaScheduler(system, queue_policy=queue_policy, placement=placement)
    sched.submit_all(jobs)
    return sched.run()
