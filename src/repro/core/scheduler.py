"""Heterogeneous workload scheduling onto MSA module combinations.

The paper's conclusion highlights "being able to schedule heterogeneous
workloads onto matching combinations of MSA module resources".  This module
implements that: a discrete-event scheduler that places each job phase on
the module minimising its estimated time-to-solution (matchmaking), with a
strict-FCFS queue and an optional conservative backfill.

Running the *same* workload mix through an MSA system and through
homogeneous baselines (cluster-only, booster-only) regenerates the Fig. 2
argument: the modular system wins on makespan and energy for mixed
workloads because no single module type suits every phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro import telemetry
from repro.simnet.events import Event, Simulator
from repro.core.energy import EnergyAccountant
from repro.core.jobs import CoAllocatedPhase, Job, JobPhase, JobStatus, phase_runtime
from repro.core.module import ComputeModule, StorageModule
from repro.core.system import MSASystem
from repro.resilience.faults import FaultInjector, FaultKind, FaultSpec
from repro.resilience.report import (
    FailureEvent,
    RecoveryEvent,
    RequeueEvent,
    ResilienceReport,
)
from repro.resilience.retry import RetryPolicy


class SchedulerPolicy(str, Enum):
    FCFS = "fcfs"
    FCFS_BACKFILL = "fcfs-backfill"
    FAIR_SHARE = "fair-share"


class PlacementPolicy(str, Enum):
    MATCHMAKING = "matchmaking"      # min estimated time-to-solution (MSA mode)
    FIRST_FIT = "first-fit"          # naive: first module with free nodes


@dataclass(frozen=True)
class Allocation:
    """A phase execution record."""

    job_name: str
    phase_index: int
    phase_name: str
    module_key: str
    nodes: tuple[int, ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def node_seconds(self) -> float:
        return len(self.nodes) * self.duration


@dataclass
class ScheduleReport:
    """Outcome of one scheduling run."""

    system_name: str
    allocations: list[Allocation]
    completion_times: dict[str, float]
    wait_times: dict[str, float]
    makespan: float
    energy_busy_joules: float
    energy_idle_joules: float
    module_utilisation: dict[str, float]
    #: Terminal status per submitted job (all COMPLETED when no faults).
    job_status: dict[str, JobStatus] = field(default_factory=dict)
    #: Fault/recovery accounting; None when injection is disabled.
    resilience: Optional[ResilienceReport] = None

    @property
    def failed_jobs(self) -> list[str]:
        return sorted(name for name, status in self.job_status.items()
                      if status is JobStatus.FAILED)

    @property
    def energy_total_joules(self) -> float:
        return self.energy_busy_joules + self.energy_idle_joules

    @property
    def energy_kwh(self) -> float:
        return self.energy_total_joules / 3.6e6

    @property
    def mean_wait(self) -> float:
        if not self.wait_times:
            return 0.0
        return sum(self.wait_times.values()) / len(self.wait_times)

    @property
    def mean_turnaround(self) -> float:
        if not self.completion_times:
            return 0.0
        return sum(self.completion_times.values()) / len(self.completion_times)

    def summary(self) -> str:
        rows = [
            f"schedule on {self.system_name}:",
            f"  jobs completed : {len(self.completion_times)}",
            f"  makespan       : {self.makespan:,.0f} s",
            f"  mean wait      : {self.mean_wait:,.0f} s",
            f"  energy         : {self.energy_kwh:,.1f} kWh "
            f"(busy {self.energy_busy_joules / 3.6e6:,.1f}, "
            f"idle {self.energy_idle_joules / 3.6e6:,.1f})",
        ]
        for key, util in sorted(self.module_utilisation.items()):
            rows.append(f"  util[{key:<12}]: {util:6.1%}")
        if self.resilience is not None:
            rows.append(self.resilience.summary())
        return "\n".join(rows)

    def publish_metrics(self, registry: Optional[
            "telemetry.MetricsRegistry"] = None) -> None:
        """Publish the report's headline numbers as registry gauges."""
        reg = registry if registry is not None else telemetry.get_registry()
        reg.gauge("scheduler_jobs_completed").set(len(self.completion_times))
        reg.gauge("scheduler_jobs_failed").set(len(self.failed_jobs))
        reg.gauge("scheduler_makespan_seconds").set(self.makespan)
        reg.gauge("scheduler_mean_wait_seconds").set(self.mean_wait)
        reg.gauge("scheduler_energy_joules", kind="busy").set(
            self.energy_busy_joules)
        reg.gauge("scheduler_energy_joules", kind="idle").set(
            self.energy_idle_joules)
        for key, util in self.module_utilisation.items():
            reg.gauge("scheduler_module_utilisation", module=key).set(util)
        if self.resilience is not None:
            self.resilience.publish_metrics(reg)


@dataclass
class _JobState:
    job: Job
    next_phase: int = 0
    prev_module: Optional[str] = None
    first_start: Optional[float] = None
    #: How many times this job has been killed by a fault.
    attempts: int = 0
    #: Set while a failure awaits its restart (recovery/MTTR accounting).
    failed_at: Optional[float] = None

    @property
    def current(self) -> JobPhase:
        return self.job.phases[self.next_phase]

    @property
    def finished(self) -> bool:
        return self.next_phase >= len(self.job.phases)


@dataclass(eq=False)
class _RunningRecord:
    """A phase in flight: everything needed to kill or stretch it."""

    state: _JobState
    placements: list[tuple[str, tuple[int, ...]]]
    start: float
    end: float
    done_evt: Event
    alloc_indices: list[int]
    #: Per-placement energy accounting: (key, module, phase, n_nodes).
    charged: list[tuple[str, ComputeModule, JobPhase, int]]


class MsaScheduler:
    """Discrete-event scheduler over an :class:`MSASystem`."""

    def __init__(
        self,
        system: MSASystem,
        queue_policy: SchedulerPolicy = SchedulerPolicy.FCFS_BACKFILL,
        placement: PlacementPolicy = PlacementPolicy.MATCHMAKING,
        patience_factor: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.system = system
        self.queue_policy = queue_policy
        self.placement = placement
        if patience_factor is not None:
            if patience_factor < 1.0:
                raise ValueError("patience_factor must be >= 1")
            self.PATIENCE_FACTOR = patience_factor
        self.sim = Simulator()
        self.tracer = telemetry.get_tracer()
        self.energy = EnergyAccountant()
        self._ready: list[_JobState] = []
        self._allocations: list[Allocation] = []
        self._completions: dict[str, float] = {}
        self._failures_final: dict[str, float] = {}
        self._waits: dict[str, float] = {}
        self._busy_node_seconds: dict[str, float] = {}
        self._user_usage: dict[str, float] = {}
        self._submitted = 0
        self._io_GBps = self._storage_bandwidth()
        self._status: dict[str, JobStatus] = {}
        self._running: list[_RunningRecord] = []
        #: Recently crashed nodes per module — placement steers around them.
        self._suspect: dict[str, set[int]] = {}
        #: Live health feeds (callables returning {module: nodes} suspicion).
        self._health_monitors: list = []
        #: Active link-degradation factors per module key.
        self._degraded: dict[str, list[float]] = {}
        self.injector = fault_injector
        if fault_injector is not None:
            self.retry_policy = retry_policy or RetryPolicy()
            self.resilience: Optional[ResilienceReport] = ResilienceReport()
            # The injector appends to this exact list as faults fire.
            self.resilience.faults_injected = fault_injector.injected
            fault_injector.on(FaultKind.NODE_CRASH, self._on_node_crash)
            fault_injector.on(FaultKind.STRAGGLER, self._on_straggler)
            fault_injector.on(FaultKind.LINK_DEGRADE, self._on_link_degrade)
            fault_injector.arm(self.sim)
        else:
            self.retry_policy = retry_policy or RetryPolicy()
            self.resilience = None

    def _storage_bandwidth(self) -> float:
        storages = [
            m for m in self.system.modules.values() if isinstance(m, StorageModule)
        ]
        if not storages:
            return 40.0
        return sum(s.aggregate_GBps for s in storages)

    # -- submission ---------------------------------------------------------
    def submit(self, job: Job) -> None:
        self._submitted += 1
        self._status[job.name] = JobStatus.PENDING
        evt = self.sim.timeout(job.arrival_time, value=job, name=f"arrive-{job.name}")
        evt.add_callback(self._on_arrival)

    def submit_all(self, jobs: list[Job]) -> None:
        for job in jobs:
            self.submit(job)

    # -- event handlers --------------------------------------------------------
    def _on_arrival(self, evt) -> None:
        self.tracer.instant("submit", "scheduler", self.sim.now,
                            track="scheduler", lane="queue",
                            job=evt.value.name)
        self._ready.append(_JobState(job=evt.value))
        self._dispatch()

    def _on_phase_done(self, evt) -> None:
        record: _RunningRecord = evt.value
        if record in self._running:
            self._running.remove(record)
        state = record.state
        self._trace_phase(record, killed=False)
        for module_key, nodes in record.placements:
            self.system.module(module_key).release(list(nodes))
        state.prev_module = record.placements[-1][0]
        state.next_phase += 1
        if state.finished:
            self._completions[state.job.name] = self.sim.now
            self._status[state.job.name] = JobStatus.COMPLETED
        else:
            # Running jobs continue ahead of newly queued ones.
            self._ready.insert(0, state)
        self._dispatch()

    def _trace_phase(self, record: _RunningRecord, killed: bool) -> None:
        """One span per placement, on the job's lane, ending now."""
        if not self.tracer.enabled:
            return
        state = record.state
        now = self.sim.now
        for idx, (module_key, nodes) in zip(record.alloc_indices,
                                            record.placements):
            alloc = self._allocations[idx]
            self.tracer.record(
                f"{alloc.phase_name}", "scheduler", record.start,
                now - record.start, track="scheduler", lane=state.job.name,
                module=module_key, n_nodes=len(nodes),
                phase_index=alloc.phase_index, killed=killed)

    def _note_started(self, state: _JobState) -> None:
        """Status + recovery bookkeeping when a phase actually starts."""
        self._status[state.job.name] = JobStatus.RUNNING
        if state.failed_at is not None:
            if self.resilience is not None:
                self.resilience.recoveries.append(RecoveryEvent(
                    job_name=state.job.name,
                    attempt=state.attempts,
                    failed_at=state.failed_at,
                    restarted_at=self.sim.now,
                ))
            state.failed_at = None

    # -- fault handling -----------------------------------------------------
    def _find_running(self, module_key: str, node: int) -> Optional[_RunningRecord]:
        for record in self._running:
            for key, nodes in record.placements:
                if key == module_key and node in nodes:
                    return record
        return None

    def _degrade_factor(self, module_key: str) -> float:
        factors = self._degraded.get(module_key)
        return max(factors) if factors else 1.0

    def _on_node_crash(self, spec: FaultSpec) -> None:
        module = self.system.compute_modules().get(spec.module)
        if module is None or not (0 <= spec.node < module.n_nodes):
            return  # fault targets nothing this system has
        if spec.node in module.down_nodes:
            return  # already down — repair for the first crash is pending
        record = self._find_running(spec.module, spec.node)
        module.mark_down(spec.node)
        self._suspect.setdefault(spec.module, set()).add(spec.node)
        repair = self.sim.timeout(spec.duration, value=(spec.module, spec.node),
                                  name=f"repair-{spec.module}-{spec.node}")
        repair.add_callback(self._on_repair)
        if record is not None:
            self._fail_running(record, spec)
        self._dispatch()

    def _on_repair(self, evt) -> None:
        key, node = evt.value
        self.system.module(key).mark_up(node)
        if self.resilience is not None:
            self.resilience.repairs.append((self.sim.now, key, node))
        self._dispatch()

    def quarantine(self, module_key: str, node: int) -> None:
        """Mark a node suspect without a crash event.

        The integrity layer calls this when a verified collective
        identifies a rank whose contributions are corrupt: the node keeps
        running (it is not *down* — it computes wrong answers), so nothing
        is killed or repaired, but placement steers new allocations around
        it exactly like a recently crashed node.
        """
        if module_key not in self.system.modules:
            raise ValueError(f"unknown module {module_key!r}")
        self._suspect.setdefault(module_key, set()).add(node)
        self.tracer.instant("quarantine", "fault", self.sim.now,
                            track="faults", lane="corruption",
                            module=module_key, node=node)
        telemetry.get_registry().counter(
            "scheduler_quarantined_nodes_total", module=module_key).inc()

    def attach_health_monitor(self, monitor) -> None:
        """Feed live health suspicion into placement decisions.

        ``monitor`` is a callable returning ``{module_key: set_of_nodes}``
        currently suspected by a health detector — phi-accrual suspicion,
        gray nodes, partitioned nodes.  It is consulted at every
        allocation, so unlike crash suspects the avoided set shrinks again
        the moment a component recovers.
        """
        if not callable(monitor):
            raise TypeError("health monitor must be callable")
        self._health_monitors.append(monitor)

    def _avoid_nodes(self, module_key: str) -> Optional[set]:
        """Nodes placement should steer around: crash suspects plus any
        live suspicion reported by attached health monitors."""
        avoid = set(self._suspect.get(module_key, ()))
        for monitor in self._health_monitors:
            avoid.update(monitor().get(module_key, ()))
        return avoid or None

    def suspect_nodes(self, module_key: str) -> frozenset:
        """Currently suspect nodes of a module (crashed, quarantined, or
        health-monitor suspected)."""
        return frozenset(self._avoid_nodes(module_key) or ())

    def _fail_running(self, record: _RunningRecord, spec: FaultSpec) -> None:
        """Kill a phase in flight: retract its completion, refund the tail,
        release survivors, and requeue or permanently fail the job."""
        now = self.sim.now
        record.done_evt.cancel()
        self._running.remove(record)
        state = record.state
        self._trace_phase(record, killed=True)
        for key, nodes in record.placements:
            survivors = [n for n in nodes
                         if not (key == spec.module and n == spec.node)]
            self.system.module(key).release(survivors)
        remaining = record.end - now
        lost_node_seconds = 0.0
        for idx in record.alloc_indices:
            alloc = self._allocations[idx]
            unrun = len(alloc.nodes) * (alloc.end - now)
            lost_node_seconds += len(alloc.nodes) * (now - alloc.start)
            self._busy_node_seconds[alloc.module_key] -= unrun
            self._user_usage[state.job.user] -= unrun
            self._allocations[idx] = replace(alloc, end=now)
        for key, module, phase, n in record.charged:
            self.energy.credit_phase(key, module.node_spec, phase, n, remaining)
        state.attempts += 1
        state.failed_at = now
        if self.resilience is not None:
            self.resilience.failures.append(FailureEvent(
                job_name=state.job.name,
                phase_index=state.next_phase,
                time=now,
                module_key=spec.module,
                node=spec.node,
                lost_node_seconds=lost_node_seconds,
                attempt=state.attempts,
            ))
        if self.retry_policy.should_retry(state.attempts):
            self._status[state.job.name] = JobStatus.REQUEUED
            delay = self.retry_policy.delay(state.attempts, key=state.job.name)
            if self.resilience is not None:
                self.resilience.requeues.append(RequeueEvent(
                    job_name=state.job.name, attempt=state.attempts,
                    backoff_s=delay, time=now,
                ))
            self.tracer.instant("requeue", "scheduler", now,
                                track="scheduler", lane="queue",
                                job=state.job.name, attempt=state.attempts,
                                backoff_s=delay)
            requeue = self.sim.timeout(delay, value=state,
                                       name=f"requeue-{state.job.name}")
            requeue.add_callback(self._on_requeue)
        else:
            self._status[state.job.name] = JobStatus.FAILED
            self._failures_final[state.job.name] = now
            if self.resilience is not None:
                self.resilience.jobs_failed_permanently.append(state.job.name)

    def _on_requeue(self, evt) -> None:
        self._ready.append(evt.value)
        self._dispatch()

    def _on_straggler(self, spec: FaultSpec) -> None:
        record = self._find_running(spec.module, spec.node)
        if record is None:
            return  # node idle — nothing to slow down
        now = self.sim.now
        extra = (record.end - now) * (spec.magnitude - 1.0)
        if extra <= 0:
            return
        record.done_evt.cancel()
        delay = record.end + extra - now
        # The completion event fires at now + delay; pin the allocation end
        # to that exact float so release and next-start never disagree by
        # an ULP.
        new_end = now + delay
        extra = new_end - record.end
        for idx in record.alloc_indices:
            alloc = self._allocations[idx]
            self._busy_node_seconds[alloc.module_key] += len(alloc.nodes) * extra
            self._user_usage[record.state.job.user] += len(alloc.nodes) * extra
            self._allocations[idx] = replace(alloc, end=new_end)
        for key, module, phase, n in record.charged:
            self.energy.charge_phase(key, module.node_spec, phase, n, extra)
        record.end = new_end
        done = self.sim.timeout(delay, value=record,
                                name=f"done-{record.state.job.name}")
        done.add_callback(self._on_phase_done)
        record.done_evt = done

    def _on_link_degrade(self, spec: FaultSpec) -> None:
        self._degraded.setdefault(spec.module, []).append(spec.magnitude)
        recover = self.sim.timeout(spec.duration, value=spec,
                                   name=f"link-recover-{spec.module}")
        recover.add_callback(self._on_link_recover)

    def _on_link_recover(self, evt) -> None:
        spec: FaultSpec = evt.value
        factors = self._degraded.get(spec.module, [])
        if spec.magnitude in factors:
            factors.remove(spec.magnitude)
        if not factors:
            self._degraded.pop(spec.module, None)

    # -- placement -----------------------------------------------------------------
    def _candidates(self, phase: JobPhase) -> list[tuple[str, ComputeModule, int]]:
        out = []
        for key, module in self.system.compute_modules().items():
            if module.n_nodes == 0:
                continue
            n_alloc = min(phase.nodes, module.n_nodes)
            out.append((key, module, n_alloc))
        return out

    def _score(self, state: _JobState, key: str, module: ComputeModule, n: int) -> float:
        phase = state.current
        t = phase_runtime(phase, module, n, io_GBps=self._io_GBps)
        if state.prev_module is not None and state.prev_module != key:
            xfer = self.system.inter_module_transfer_time(
                state.prev_module, key, phase.io_bytes
            )
            if self._degraded:
                xfer *= max(self._degrade_factor(state.prev_module),
                            self._degrade_factor(key))
            t += xfer
        return t

    #: A queued phase refuses a feasible-now module whose estimated runtime
    #: exceeds this multiple of the best module's — it waits instead.
    PATIENCE_FACTOR = 3.0

    def _choose(self, state: _JobState) -> Optional[tuple[str, ComputeModule, int, float]]:
        """Best feasible placement now, or None to keep waiting."""
        phase = state.current
        candidates = self._candidates(phase)
        feasible = [
            (key, module, n)
            for key, module, n in candidates
            if module.free_nodes >= n
        ]
        if not feasible:
            return None
        if self.placement is PlacementPolicy.FIRST_FIT:
            key, module, n = sorted(feasible, key=lambda c: c[0])[0]
            return key, module, n, self._score(state, key, module, n)
        scored = [
            (self._score(state, key, module, n), key, module, n)
            for key, module, n in feasible
        ]
        scored.sort(key=lambda s: (s[0], s[1]))
        t, key, module, n = scored[0]
        # Matchmaking with patience: starting now on a badly-matching module
        # (e.g. DL training on a CPU-only cluster) can be orders of magnitude
        # worse than queueing for the matching one.
        best_anywhere = min(
            self._score(state, k, m, na) for k, m, na in candidates
        )
        if t > self.PATIENCE_FACTOR * best_anywhere:
            return None
        return key, module, n, t

    def _blocked_modules(self, state: _JobState) -> set[str]:
        """Modules the queue head is waiting on (backfill must not raid them)."""
        phase = state.current
        best_key = None
        best_t = float("inf")
        for key, module, n in self._candidates(phase):
            t = self._score(state, key, module, n)
            if t < best_t:
                best_t, best_key = t, key
        return {best_key} if best_key is not None else set()

    # -- co-allocation (multi-module phases) --------------------------------
    def _choose_coalloc(
        self, state: _JobState
    ) -> Optional[list[tuple[str, ComputeModule, int, float, JobPhase]]]:
        """Greedy per-component placement; all-or-nothing."""
        phase: CoAllocatedPhase = state.current
        taken: dict[str, int] = {}
        plan = []
        for component in phase.components:
            best = None
            best_anywhere = float("inf")
            for key, module, n in self._candidates(component):
                t = phase_runtime(component, module, n,
                                  io_GBps=self._io_GBps)
                best_anywhere = min(best_anywhere, t)
                if module.free_nodes - taken.get(key, 0) < n:
                    continue
                if best is None or t < best[0]:
                    best = (t, key, module, n)
            # All-or-nothing, with the same patience rule as single-module
            # phases: a component refuses a badly-matching module and the
            # whole co-allocation waits.
            if best is None or best[0] > self.PATIENCE_FACTOR * best_anywhere:
                return None
            t, key, module, n = best
            taken[key] = taken.get(key, 0) + n
            plan.append((key, module, n, t, component))
        return plan

    def _start_coalloc(self, state: _JobState) -> bool:
        plan = self._choose_coalloc(state)
        if plan is None:
            return False
        phase: CoAllocatedPhase = state.current
        start = self.sim.now
        # The co-allocation completes when the slowest component does, plus
        # the coupling traffic crossing the federation.
        coupling = 0.0
        modules_used = {key for key, *_ in plan}
        if phase.coupling_bytes > 0 and len(modules_used) > 1:
            a, b = sorted(modules_used)[:2]
            coupling = self.system.inter_module_transfer_time(
                a, b, phase.coupling_bytes)
        if phase.coupling_bytes > 0 and len(modules_used) > 1 and self._degraded:
            coupling *= max(self._degrade_factor(m) for m in modules_used)
        runtime = max(t for _, _, _, t, _ in plan) + coupling
        placements = []
        alloc_indices: list[int] = []
        charged: list[tuple[str, ComputeModule, JobPhase, int]] = []
        if state.first_start is None:
            state.first_start = start
            self._waits[state.job.name] = start - state.job.arrival_time
        self._note_started(state)
        self.tracer.instant("place", "scheduler", start, track="scheduler",
                            lane="queue", job=state.job.name,
                            modules=",".join(sorted({k for k, *_ in plan})))
        for key, module, n, _, component in plan:
            nodes = tuple(module.allocate(n, avoid=self._avoid_nodes(key)))
            placements.append((key, nodes))
            alloc = Allocation(
                job_name=state.job.name,
                phase_index=state.next_phase,
                phase_name=f"{phase.name}/{component.name}",
                module_key=key,
                nodes=nodes,
                start=start,
                end=start + runtime,
            )
            alloc_indices.append(len(self._allocations))
            self._allocations.append(alloc)
            self._busy_node_seconds[key] = (
                self._busy_node_seconds.get(key, 0.0) + alloc.node_seconds)
            self._user_usage[state.job.user] = (
                self._user_usage.get(state.job.user, 0.0)
                + alloc.node_seconds)
            self.energy.charge_phase(key, module.node_spec, component, n,
                                     runtime)
            charged.append((key, module, component, n))
        record = _RunningRecord(
            state=state, placements=placements, start=start,
            end=start + runtime, done_evt=None, alloc_indices=alloc_indices,
            charged=charged,
        )
        done = self.sim.timeout(runtime, value=record,
                                name=f"done-{state.job.name}")
        done.add_callback(self._on_phase_done)
        record.done_evt = done
        self._running.append(record)
        return True

    def _dispatch(self) -> None:
        if self.queue_policy is SchedulerPolicy.FAIR_SHARE:
            # Least-consuming community first (stable: arrival order is
            # preserved within a community) — how a multi-community centre
            # keeps any one domain from monopolising the modules.
            self._ready.sort(
                key=lambda s: self._user_usage.get(s.job.user, 0.0))
        blocked: set[str] = set()
        i = 0
        while i < len(self._ready):
            state = self._ready[i]
            if isinstance(state.current, CoAllocatedPhase):
                if self._start_coalloc(state):
                    self._ready.pop(i)
                    continue
                if self.queue_policy is SchedulerPolicy.FCFS:
                    break
                i += 1
                continue
            choice = self._choose(state)
            usable = choice is not None and choice[0] not in blocked
            if usable:
                key, module, n, runtime = choice
                nodes = tuple(module.allocate(n, avoid=self._avoid_nodes(key)))
                start = self.sim.now
                end = start + runtime
                if state.first_start is None:
                    state.first_start = start
                    self._waits[state.job.name] = start - state.job.arrival_time
                self._note_started(state)
                self.tracer.instant("place", "scheduler", start,
                                    track="scheduler", lane="queue",
                                    job=state.job.name, modules=key,
                                    n_nodes=n)
                alloc = Allocation(
                    job_name=state.job.name,
                    phase_index=state.next_phase,
                    phase_name=state.current.name,
                    module_key=key,
                    nodes=nodes,
                    start=start,
                    end=end,
                )
                alloc_index = len(self._allocations)
                self._allocations.append(alloc)
                self._busy_node_seconds[key] = (
                    self._busy_node_seconds.get(key, 0.0) + alloc.node_seconds
                )
                self._user_usage[state.job.user] = (
                    self._user_usage.get(state.job.user, 0.0)
                    + alloc.node_seconds
                )
                self.energy.charge_phase(
                    key, module.node_spec, state.current, n, runtime
                )
                record = _RunningRecord(
                    state=state, placements=[(key, nodes)], start=start,
                    end=end, done_evt=None, alloc_indices=[alloc_index],
                    charged=[(key, module, state.current, n)],
                )
                done = self.sim.timeout(
                    runtime, value=record, name=f"done-{state.job.name}"
                )
                done.add_callback(self._on_phase_done)
                record.done_evt = done
                self._running.append(record)
                self._ready.pop(i)
                continue  # same index now holds the next job
            # Head job cannot start: strict FCFS stops; backfill walks on but
            # must not take nodes from the module the head is waiting for.
            if self.queue_policy is SchedulerPolicy.FCFS:
                break
            blocked |= self._blocked_modules(state)
            i += 1

    # -- execution ------------------------------------------------------------------
    def run(self) -> ScheduleReport:
        """Run the event loop to completion and produce the report."""
        self.sim.run()
        terminal = len(self._completions) + len(self._failures_final)
        if terminal != self._submitted:
            missing = self._submitted - terminal
            raise RuntimeError(f"{missing} jobs never completed — scheduler stuck")
        makespan = max(
            [*self._completions.values(), *self._failures_final.values()],
            default=0.0,
        )
        utilisation: dict[str, float] = {}
        for key, module in self.system.compute_modules().items():
            busy = self._busy_node_seconds.get(key, 0.0)
            total = module.n_nodes * makespan
            utilisation[key] = busy / total if total > 0 else 0.0
            idle_node_seconds = max(total - busy, 0.0)
            self.energy.charge_idle(key, module.node_spec, idle_node_seconds)
        report = ScheduleReport(
            system_name=self.system.name,
            allocations=list(self._allocations),
            completion_times=dict(self._completions),
            wait_times=dict(self._waits),
            makespan=makespan,
            energy_busy_joules=self.energy.busy_joules,
            energy_idle_joules=self.energy.idle_joules,
            module_utilisation=utilisation,
            job_status=dict(self._status),
            resilience=self.resilience,
        )
        if telemetry.get_registry().enabled:
            report.publish_metrics(telemetry.get_registry())
        return report


# ---------------------------------------------------------------------------
# standalone matchmaking (serving replicas, ad-hoc placements)
# ---------------------------------------------------------------------------

def rank_placements(
    system: MSASystem,
    phase: JobPhase,
    n_nodes: int = 1,
    io_GBps: float = 40.0,
) -> list[tuple[float, str, ComputeModule]]:
    """Matchmaking scores for a standalone phase, best module first.

    The same :func:`~repro.core.jobs.phase_runtime` scoring the batch
    scheduler minimises, exposed for consumers that place long-lived
    resources outside the job queue — the serving replica pool uses this to
    decide whether a new inference replica lands on the ESB, the DAM or the
    CM.  Ties break on the module key, so rankings are deterministic.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node per placement")
    scored = [
        (phase_runtime(phase, module, n_nodes, io_GBps=io_GBps), key, module)
        for key, module in system.compute_modules().items()
        if module.n_nodes >= n_nodes
    ]
    # Runtime first; among equally fast modules prefer the more scalable one
    # (the paper's pattern: inference scales out on the big booster, not on
    # the handful of DAM nodes that happen to carry the same GPU).
    scored.sort(key=lambda s: (s[0], -s[2].n_nodes, s[1]))
    return scored


def place_standalone(
    system: MSASystem,
    phase: JobPhase,
    n_nodes: int = 1,
    suspect: Optional[dict[str, set[int]]] = None,
    io_GBps: float = 40.0,
) -> Optional[tuple[str, tuple[int, ...]]]:
    """Allocate ``n_nodes`` on the best-scoring module with capacity.

    Returns ``(module_key, node_ids)`` or ``None`` when no module currently
    has enough free nodes.  ``suspect`` marks recently crashed nodes per
    module; they are used only as a last resort (failure-aware placement,
    same semantics as the batch scheduler).  The caller owns the release.
    """
    suspect = suspect or {}
    for _, key, module in rank_placements(system, phase, n_nodes,
                                          io_GBps=io_GBps):
        if module.free_nodes >= n_nodes:
            nodes = tuple(module.allocate(n_nodes, avoid=suspect.get(key)))
            return key, nodes
    return None


def schedule_workload(
    system: MSASystem,
    jobs: list[Job],
    queue_policy: SchedulerPolicy = SchedulerPolicy.FCFS_BACKFILL,
    placement: PlacementPolicy = PlacementPolicy.MATCHMAKING,
    fault_injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> ScheduleReport:
    """Convenience wrapper: submit ``jobs`` to ``system`` and run."""
    sched = MsaScheduler(system, queue_policy=queue_policy, placement=placement,
                         fault_injector=fault_injector,
                         retry_policy=retry_policy)
    sched.submit_all(jobs)
    return sched.run()
