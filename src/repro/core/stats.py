"""Shared latency statistics.

Every service-quality surface in the repo — the Fig. 3 A real-time stream
(:mod:`repro.core.streaming`) and the online serving subsystem
(:mod:`repro.serving`) — is judged on the same numbers: latency
percentiles, means, histograms.  This module is the single implementation
both use, so "p99" always means exactly the same computation.

All functions are deterministic and operate on plain sequences/arrays;
nothing here touches the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """The ``q``-th percentile (linear interpolation, numpy semantics).

    Raises ``ValueError`` on an empty sample — a percentile of nothing is a
    bug at the call site, not a 0.0.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of an empty sample")
    if not (0.0 <= q <= 100.0):
        raise ValueError("percentile rank must be in [0, 100]")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class LatencySummary:
    """The headline latency numbers of one run, in seconds."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def meets_deadline(self, deadline_s: float, quantile: float = 99.0) -> bool:
        """Does the given latency quantile sit under the deadline?"""
        if quantile == 50.0:
            return self.p50_s <= deadline_s
        if quantile == 95.0:
            return self.p95_s <= deadline_s
        if quantile == 99.0:
            return self.p99_s <= deadline_s
        raise ValueError("summary only carries p50/p95/p99")

    def to_text(self, indent: str = "") -> str:
        return "\n".join([
            f"{indent}completed : {self.count}",
            f"{indent}mean      : {self.mean_s * 1e3:.3f} ms",
            f"{indent}p50       : {self.p50_s * 1e3:.3f} ms",
            f"{indent}p95       : {self.p95_s * 1e3:.3f} ms",
            f"{indent}p99       : {self.p99_s * 1e3:.3f} ms",
            f"{indent}max       : {self.max_s * 1e3:.3f} ms",
        ])


def summarize_latencies(values: Sequence[float] | np.ndarray) -> LatencySummary:
    """Collapse a latency sample into its :class:`LatencySummary`."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty latency sample")
    return LatencySummary(
        count=int(arr.size),
        mean_s=float(arr.mean()),
        p50_s=float(np.percentile(arr, 50)),
        p95_s=float(np.percentile(arr, 95)),
        p99_s=float(np.percentile(arr, 99)),
        max_s=float(arr.max()),
    )


def latency_histogram(
    values: Sequence[float] | np.ndarray,
    n_bins: int = 20,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced latency histogram ``(bin_edges, counts)``.

    Latency distributions are heavy-tailed; log-spaced bins keep both the
    body and the tail visible.  ``lo``/``hi`` default to the sample extrema
    (with a floor of 1 µs so zero-latency cache hits do not break the log
    scale).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty latency sample")
    if n_bins < 1:
        raise ValueError("need at least one bin")
    floor = 1e-6
    lo = max(float(arr.min()) if lo is None else lo, floor)
    hi = max(float(arr.max()) if hi is None else hi, lo * (1 + 1e-9))
    edges = np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)
    # logspace round-trips through log10; pin the extremes exactly so the
    # min/max samples always land inside the outer bins.
    edges[0], edges[-1] = lo, hi
    counts, _ = np.histogram(np.maximum(arr, floor), bins=edges)
    return edges, counts
