"""(Near) real-time RS processing — the Fig. 3 A workload.

The paper's RS application list opens with "'(near) real-time processing'
in case of earth disasters": satellite scenes arrive continuously and must
be classified within a latency bound.  This module models that pipeline on
the discrete-event engine: a Poisson scene stream, a pool of inference
servers (ESB nodes), FCFS queueing, and per-scene latency accounting.

Outputs are the service metrics a real-time deployment is judged on —
latency percentiles, queue depth, utilisation — and
:func:`capacity_for_deadline` answers the provisioning question ("how many
ESB nodes keep p99 under the deadline at this scene rate?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.stats import LatencySummary, percentile, summarize_latencies
from repro.simnet.events import Resource, Simulator


@dataclass(frozen=True)
class StreamingConfig:
    """One real-time scenario."""

    arrival_rate_per_s: float          # Poisson scene arrivals
    service_time_s: float              # per-scene inference time on 1 node
    n_servers: int                     # inference nodes allocated
    duration_s: float = 3600.0         # simulated horizon
    service_jitter: float = 0.1        # lognormal sigma on service time
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0 or self.service_time_s <= 0:
            raise ValueError("rates and service times must be positive")
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    @property
    def offered_load(self) -> float:
        """ρ = λ·s / c — the M/M/c-style utilisation this config implies."""
        return (self.arrival_rate_per_s * self.service_time_s
                / self.n_servers)


@dataclass
class StreamingReport:
    """Measured service quality of one simulated run."""

    n_completed: int
    latencies_s: np.ndarray
    utilisation: float
    max_queue_depth: int

    def percentile(self, q: float) -> float:
        if self.n_completed == 0:
            raise ValueError("no completed scenes")
        return percentile(self.latencies_s, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        return float(self.latencies_s.mean())

    def latency_summary(self) -> LatencySummary:
        """The shared p50/p95/p99 summary (same math as the serving path)."""
        if self.n_completed == 0:
            raise ValueError("no completed scenes")
        return summarize_latencies(self.latencies_s)

    def meets_deadline(self, deadline_s: float, quantile: float = 99.0) -> bool:
        return self.percentile(quantile) <= deadline_s


def simulate_stream(config: StreamingConfig) -> StreamingReport:
    """Run the arrival/service process on the DES engine."""
    sim = Simulator()
    servers = Resource(sim, capacity=config.n_servers, name="esb-pool")
    rng = np.random.default_rng(config.seed)
    latencies: list[float] = []
    busy_time = [0.0]
    queue_depth = [0]
    max_depth = [0]

    def scene(arrival: float):
        grant = servers.acquire()
        queue_depth[0] += 1
        max_depth[0] = max(max_depth[0], queue_depth[0])
        yield grant
        queue_depth[0] -= 1
        service = config.service_time_s * float(
            rng.lognormal(0.0, config.service_jitter))
        busy_time[0] += service
        yield sim.timeout(service)
        servers.release()
        latencies.append(sim.now - arrival)

    def source():
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / config.arrival_rate_per_s))
            if t > config.duration_s:
                return
            yield sim.timeout(t - sim.now)
            sim.process(scene(sim.now), name=f"scene@{t:.1f}")

    sim.process(source(), name="scene-source")
    sim.run()
    total_capacity = config.n_servers * max(sim.now, 1e-12)
    return StreamingReport(
        n_completed=len(latencies),
        latencies_s=np.asarray(latencies),
        utilisation=busy_time[0] / total_capacity,
        max_queue_depth=max_depth[0],
    )


def capacity_for_deadline(
    arrival_rate_per_s: float,
    service_time_s: float,
    deadline_s: float,
    quantile: float = 99.0,
    max_servers: int = 256,
    duration_s: float = 2000.0,
    seed: int = 0,
) -> tuple[int, StreamingReport]:
    """Smallest server count whose latency quantile meets the deadline."""
    if deadline_s <= service_time_s:
        raise ValueError("deadline must exceed a single service time")
    n = max(1, int(np.ceil(arrival_rate_per_s * service_time_s)))
    while n <= max_servers:
        report = simulate_stream(StreamingConfig(
            arrival_rate_per_s=arrival_rate_per_s,
            service_time_s=service_time_s,
            n_servers=n,
            duration_s=duration_s,
            seed=seed,
        ))
        if report.n_completed > 0 and report.meets_deadline(deadline_s,
                                                            quantile):
            return n, report
        n += max(1, n // 4)
    raise RuntimeError(f"no capacity ≤ {max_servers} meets the deadline")
