"""An MSA system: modules joined by the network federation (Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.simnet.link import Link, LinkKind
from repro.simnet.topology import Topology, federated
from repro.core.module import (
    ComputeModule,
    ModuleKind,
    NamModule,
    QuantumModule,
    StorageModule,
)

AnyModule = Union[ComputeModule, StorageModule, NamModule, QuantumModule]


@dataclass
class MSASystem:
    """A modular supercomputer: heterogeneous modules + federated network.

    >>> from repro.core import deep_system
    >>> deep = deep_system()
    >>> deep.module("dam").total_gpus
    16
    """

    name: str
    federation_kind: LinkKind = LinkKind.FEDERATION
    _modules: dict[str, AnyModule] = field(default_factory=dict)
    _federation: Optional[Topology] = field(default=None, repr=False)

    # -- composition ------------------------------------------------------------
    def add_module(self, key: str, module: AnyModule) -> "MSASystem":
        if key in self._modules:
            raise ValueError(f"module key {key!r} already present")
        self._modules[key] = module
        self._federation = None
        return self

    def module(self, key: str) -> AnyModule:
        try:
            return self._modules[key]
        except KeyError:
            raise KeyError(
                f"{self.name} has no module {key!r}; available: {sorted(self._modules)}"
            ) from None

    @property
    def modules(self) -> dict[str, AnyModule]:
        return dict(self._modules)

    def compute_modules(self) -> dict[str, ComputeModule]:
        return {
            k: m for k, m in self._modules.items() if isinstance(m, ComputeModule)
        }

    def modules_of_kind(self, kind: ModuleKind) -> list[AnyModule]:
        return [m for m in self._modules.values() if m.kind == kind]

    # -- aggregates (the paper quotes these for JUWELS) ----------------------------
    @property
    def total_cpu_cores(self) -> int:
        return sum(m.total_cpu_cores for m in self.compute_modules().values())

    @property
    def total_gpus(self) -> int:
        return sum(m.total_gpus for m in self.compute_modules().values())

    @property
    def total_nodes(self) -> int:
        return sum(m.n_nodes for m in self.compute_modules().values())

    @property
    def peak_flops(self) -> float:
        return sum(m.peak_flops for m in self.compute_modules().values())

    # -- federation ---------------------------------------------------------------
    @property
    def federation(self) -> Topology:
        """Federated topology over all compute-module fabrics."""
        if self._federation is None:
            fabrics = {k: m.topology for k, m in self.compute_modules().items()}
            if not fabrics:
                raise ValueError(f"{self.name} has no compute modules")
            self._federation = federated(
                fabrics, federation_kind=self.federation_kind,
                name=f"{self.name}-federation",
            )
        return self._federation

    def inter_module_transfer_time(
        self, src_module: str, dst_module: str, nbytes: float
    ) -> float:
        """Time to move ``nbytes`` between two modules across the federation."""
        if src_module == dst_module:
            return 0.0
        topo = self.federation
        src = (src_module, ("node", 0))
        dst = (dst_module, ("node", 0))
        return topo.transfer_time(src, dst, nbytes)

    def federation_link(self) -> Link:
        return Link.of_kind(self.federation_kind)

    # -- reporting ------------------------------------------------------------------
    def inventory(self) -> list[dict]:
        """One row per module — the Table-I-style system inventory."""
        rows = []
        for key, mod in self._modules.items():
            if isinstance(mod, ComputeModule):
                rows.append({
                    "key": key,
                    "kind": mod.kind.value,
                    "nodes": mod.n_nodes,
                    "cpu_cores": mod.total_cpu_cores,
                    "gpus": mod.total_gpus,
                    "fpgas": mod.total_fpgas,
                    "memory_GB": round(mod.total_memory_GB, 1),
                    "nvm_GB": round(mod.total_nvm_GB, 1),
                    "peak_tflops": round(mod.peak_flops / 1e12, 1),
                })
            elif isinstance(mod, StorageModule):
                rows.append({
                    "key": key, "kind": mod.kind.value,
                    "capacity_PB": mod.capacity_PB,
                    "aggregate_GBps": mod.aggregate_GBps,
                })
            elif isinstance(mod, NamModule):
                rows.append({
                    "key": key, "kind": mod.kind.value,
                    "capacity_GB": mod.capacity_GB,
                })
            elif isinstance(mod, QuantumModule):
                rows.append({
                    "key": key, "kind": mod.kind.value,
                    "qubits": mod.n_qubits, "couplers": mod.n_couplers,
                })
        return rows

    def describe(self) -> str:
        lines = [f"MSA system {self.name!r}"]
        for row in self.inventory():
            detail = ", ".join(f"{k}={v}" for k, v in row.items() if k != "key")
            lines.append(f"  [{row['key']}] {detail}")
        return "\n".join(lines)
