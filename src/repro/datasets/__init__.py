"""Synthetic datasets standing in for the paper's access-gated corpora.

* :mod:`repro.datasets.bigearthnet` — BigEarthNet-like multispectral
  Sentinel-2 patches with class-conditional spectral signatures (the paper's
  land-cover classification corpus [19]),
* :mod:`repro.datasets.cxr` — COVIDx-like chest radiographs (normal /
  pneumonia / COVID-19) with clinically-motivated opacity patterns [25],
* :mod:`repro.datasets.icu` — MIMIC-III-like multivariate ICU vitals with
  physiological coupling, ARDS (P/F-ratio) episodes, noise and missingness
  [31].

All generators are deterministic given a seed and documented in DESIGN.md's
substitution table: experiments need the *statistical structure* (class
separability, temporal coupling, missingness), not the original pixels.
"""

from repro.datasets.bigearthnet import (
    BigEarthNetConfig,
    SyntheticBigEarthNet,
    SENTINEL2_BANDS,
    LAND_COVER_CLASSES,
)
from repro.datasets.cxr import CxrConfig, SyntheticCovidx, CXR_CLASSES
from repro.datasets.icu import (
    IcuConfig,
    IcuCohort,
    PatientRecord,
    VITAL_CHANNELS,
    berlin_severity,
    make_imputation_windows,
)

__all__ = [
    "BigEarthNetConfig",
    "SyntheticBigEarthNet",
    "SENTINEL2_BANDS",
    "LAND_COVER_CLASSES",
    "CxrConfig",
    "SyntheticCovidx",
    "CXR_CLASSES",
    "IcuConfig",
    "IcuCohort",
    "PatientRecord",
    "VITAL_CHANNELS",
    "berlin_severity",
    "make_imputation_windows",
]
