"""Synthetic BigEarthNet: multispectral land-cover patches.

BigEarthNet [19] is 590k Sentinel-2 patches annotated with CORINE land
cover classes.  The synthetic generator reproduces the properties the
experiments rely on:

* 12 spectral bands with class-conditional signatures (vegetation has the
  red-edge/NIR bump, water absorbs NIR/SWIR, urban is spectrally flat and
  bright, ...),
* spatial texture (smooth fields, speckled forest, blocky urban),
* both single-label (dominant class) and multi-label (class mixtures, as
  in the real archive) annotation modes,
* controllable difficulty via noise and mixing.

A :class:`~repro.ml.models.resnet.ResNet` reaches high accuracy on it only
by actually learning the spectral-spatial structure — random guessing sits
at 1/n_classes — which is what the distributed-training invariance
experiment (E3) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Sentinel-2 band names (the 12 bands BigEarthNet ships).
SENTINEL2_BANDS = (
    "B01", "B02", "B03", "B04", "B05", "B06",
    "B07", "B08", "B8A", "B09", "B11", "B12",
)

#: A compact CORINE-style class nomenclature.
LAND_COVER_CLASSES = (
    "urban-fabric",
    "industrial",
    "arable-land",
    "pasture",
    "broadleaf-forest",
    "coniferous-forest",
    "natural-grassland",
    "moors-heathland",
    "water-body",
    "coastal-wetland",
)

#: Class-conditional spectral signatures, one reflectance per band, derived
#: from textbook spectral curves (vegetation red edge, water absorption...).
_SIGNATURES = {
    "urban-fabric":      [0.18, 0.20, 0.22, 0.24, 0.25, 0.26, 0.27, 0.28, 0.28, 0.26, 0.30, 0.28],
    "industrial":        [0.25, 0.28, 0.30, 0.32, 0.32, 0.33, 0.33, 0.34, 0.34, 0.32, 0.36, 0.35],
    "arable-land":       [0.08, 0.09, 0.12, 0.10, 0.18, 0.30, 0.34, 0.36, 0.37, 0.30, 0.22, 0.14],
    "pasture":           [0.07, 0.08, 0.11, 0.08, 0.20, 0.36, 0.42, 0.45, 0.46, 0.36, 0.24, 0.13],
    "broadleaf-forest":  [0.05, 0.06, 0.09, 0.06, 0.16, 0.34, 0.42, 0.46, 0.47, 0.38, 0.20, 0.10],
    "coniferous-forest": [0.04, 0.05, 0.07, 0.05, 0.11, 0.22, 0.27, 0.30, 0.31, 0.26, 0.14, 0.07],
    "natural-grassland": [0.08, 0.09, 0.13, 0.11, 0.19, 0.30, 0.34, 0.36, 0.37, 0.30, 0.26, 0.17],
    "moors-heathland":   [0.07, 0.08, 0.10, 0.10, 0.14, 0.20, 0.23, 0.25, 0.25, 0.22, 0.20, 0.14],
    "water-body":        [0.06, 0.07, 0.06, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01, 0.01],
    "coastal-wetland":   [0.07, 0.08, 0.09, 0.07, 0.09, 0.13, 0.15, 0.16, 0.16, 0.13, 0.08, 0.04],
}

#: Per-class spatial texture amplitude (urban blocky, forest speckled...).
_TEXTURE = {
    "urban-fabric": 0.08, "industrial": 0.06, "arable-land": 0.02,
    "pasture": 0.02, "broadleaf-forest": 0.05, "coniferous-forest": 0.05,
    "natural-grassland": 0.03, "moors-heathland": 0.03,
    "water-body": 0.005, "coastal-wetland": 0.02,
}


@dataclass(frozen=True)
class BigEarthNetConfig:
    """Generator parameters."""

    n_samples: int = 512
    patch_size: int = 16            # real patches are 120x120; tests shrink
    n_classes: int = 10
    noise_sigma: float = 0.02
    multi_label: bool = False
    max_labels: int = 3             # classes mixed per multi-label patch
    seed: int = 0

    def __post_init__(self) -> None:
        if not (1 <= self.n_classes <= len(LAND_COVER_CLASSES)):
            raise ValueError(f"n_classes must be in [1, {len(LAND_COVER_CLASSES)}]")
        if self.n_samples < 1 or self.patch_size < 4:
            raise ValueError("n_samples >= 1 and patch_size >= 4 required")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")


class SyntheticBigEarthNet:
    """Deterministic multispectral patch generator."""

    def __init__(self, config: Optional[BigEarthNetConfig] = None) -> None:
        self.config = config or BigEarthNetConfig()
        self.classes = LAND_COVER_CLASSES[: self.config.n_classes]
        self.signatures = np.array([_SIGNATURES[c] for c in self.classes])
        self.n_bands = len(SENTINEL2_BANDS)

    def _class_patch(self, rng: np.random.Generator, class_idx: int) -> np.ndarray:
        """(bands, H, W) patch of one class with texture + illumination."""
        cfg = self.config
        hw = cfg.patch_size
        name = self.classes[class_idx]
        sig = self.signatures[class_idx]
        # Base reflectance per band, broadcast to the patch.
        patch = np.broadcast_to(sig[:, None, None], (self.n_bands, hw, hw)).copy()
        # Spatially correlated texture: smooth a white-noise field.
        texture = rng.normal(0.0, 1.0, size=(hw + 4, hw + 4))
        kernel = np.ones((5, 5)) / 25.0
        smooth = np.zeros((hw, hw))
        for i in range(5):
            for j in range(5):
                smooth += kernel[i, j] * texture[i:i + hw, j:j + hw]
        patch += _TEXTURE[name] * smooth[None, :, :]
        # Global illumination factor (sun angle / atmosphere).
        patch *= rng.uniform(0.85, 1.15)
        return patch

    def generate(self) -> tuple[np.ndarray, np.ndarray]:
        """Returns (X, y): X (N, 12, H, W) float, y (N,) int labels."""
        cfg = self.config
        if cfg.multi_label:
            raise ValueError("use generate_multilabel() when multi_label=True")
        rng = np.random.default_rng(cfg.seed)
        y = rng.integers(0, cfg.n_classes, size=cfg.n_samples)
        X = np.empty((cfg.n_samples, self.n_bands, cfg.patch_size, cfg.patch_size))
        for i in range(cfg.n_samples):
            X[i] = self._class_patch(rng, int(y[i]))
        X += rng.normal(0.0, cfg.noise_sigma, size=X.shape)
        return X, y.astype(np.int64)

    def generate_multilabel(self) -> tuple[np.ndarray, np.ndarray]:
        """Returns (X, Y): Y (N, n_classes) binary label matrix.

        Patches mix 1..max_labels classes in spatial halves/quadrants, as
        real BigEarthNet patches span multiple CORINE polygons.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        hw = cfg.patch_size
        X = np.empty((cfg.n_samples, self.n_bands, hw, hw))
        Y = np.zeros((cfg.n_samples, cfg.n_classes), dtype=np.int64)
        for i in range(cfg.n_samples):
            k = int(rng.integers(1, cfg.max_labels + 1))
            chosen = rng.choice(cfg.n_classes, size=k, replace=False)
            Y[i, chosen] = 1
            # Split the patch into k vertical strips, one class each.
            bounds = np.linspace(0, hw, k + 1).astype(int)
            patch = np.zeros((self.n_bands, hw, hw))
            for strip, cls in enumerate(chosen):
                sub = self._class_patch(rng, int(cls))
                patch[:, :, bounds[strip]:bounds[strip + 1]] = \
                    sub[:, :, bounds[strip]:bounds[strip + 1]]
            X[i] = patch
        X += rng.normal(0.0, cfg.noise_sigma, size=X.shape)
        return X, Y

    def pixels(self, n_pixels: int, seed: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel spectra (n_pixels, bands) + class ids — autoencoder food."""
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        y = rng.integers(0, self.config.n_classes, size=n_pixels)
        spectra = self.signatures[y]
        spectra = spectra * rng.uniform(0.85, 1.15, size=(n_pixels, 1))
        spectra = spectra + rng.normal(0.0, self.config.noise_sigma,
                                       size=spectra.shape)
        return spectra, y.astype(np.int64)
