"""Synthetic COVIDx: chest radiographs with class-conditional opacities.

COVIDx [25] aggregates CXR images in three classes.  The paper's clinical
premise: "patients present abnormalities in chest radiography images that
are characteristic of those infected with COVID-19".  The generator encodes
the characteristic radiological patterns:

* **normal** — clear (dark) lung fields inside a bright thorax,
* **pneumonia** — a focal consolidation: one bright blob in a single lung,
* **covid19** — bilateral, peripheral ground-glass opacities: several
  soft-edged blobs near the outer margins of both lungs.

Classes are separable only through those spatial patterns (global intensity
statistics are matched), so a classifier's accuracy measures real pattern
learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

CXR_CLASSES = ("normal", "pneumonia", "covid19")


@dataclass(frozen=True)
class CxrConfig:
    n_samples: int = 300
    image_size: int = 32          # real COVIDx is 480+; tests shrink
    noise_sigma: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_samples < 1 or self.image_size < 16:
            raise ValueError("n_samples >= 1 and image_size >= 16 required")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")


class SyntheticCovidx:
    """Deterministic CXR generator over the three COVIDx classes."""

    def __init__(self, config: Optional[CxrConfig] = None) -> None:
        self.config = config or CxrConfig()

    # -- anatomy ------------------------------------------------------------
    def _thorax(self, rng: np.random.Generator, hw: int) -> np.ndarray:
        """Bright body, two dark elliptical lung fields."""
        yy, xx = np.mgrid[0:hw, 0:hw] / (hw - 1)
        img = np.full((hw, hw), 0.75)
        for cx in (0.32, 0.68):
            cy = 0.52 + rng.normal(0, 0.02)
            rx = 0.16 + rng.normal(0, 0.01)
            ry = 0.30 + rng.normal(0, 0.015)
            lung = ((xx - cx) / rx) ** 2 + ((yy - cy) / ry) ** 2 <= 1.0
            img[lung] = 0.25
        # Mediastinum / spine stripe.
        img[:, int(hw * 0.47):int(hw * 0.53)] = np.maximum(
            img[:, int(hw * 0.47):int(hw * 0.53)], 0.8)
        return img

    @staticmethod
    def _blob(img: np.ndarray, cx: float, cy: float, radius: float,
              amplitude: float) -> None:
        hw = img.shape[0]
        yy, xx = np.mgrid[0:hw, 0:hw] / (hw - 1)
        d2 = (xx - cx) ** 2 + (yy - cy) ** 2
        img += amplitude * np.exp(-d2 / (2 * radius ** 2))

    # -- pathology ------------------------------------------------------------
    def _apply_pneumonia(self, rng: np.random.Generator, img: np.ndarray) -> None:
        """One focal consolidation in a single lung."""
        side = 0.32 if rng.random() < 0.5 else 0.68
        cy = rng.uniform(0.38, 0.66)
        self._blob(img, side + rng.normal(0, 0.03), cy,
                   radius=rng.uniform(0.07, 0.10),
                   amplitude=rng.uniform(0.35, 0.5))

    def _apply_covid(self, rng: np.random.Generator, img: np.ndarray) -> None:
        """Bilateral peripheral ground-glass opacities."""
        for side, outer in ((0.32, 0.20), (0.68, 0.80)):
            n_blobs = int(rng.integers(2, 4))
            for _ in range(n_blobs):
                cx = outer + rng.normal(0, 0.03)
                cy = rng.uniform(0.35, 0.72)
                self._blob(img, cx, cy,
                           radius=rng.uniform(0.05, 0.08),
                           amplitude=rng.uniform(0.12, 0.22))

    # -- generation ----------------------------------------------------------------
    def generate(self) -> tuple[np.ndarray, np.ndarray]:
        """Returns (X, y): X (N, 1, H, W) in [0, ~1.3], y class ids."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        hw = cfg.image_size
        y = rng.integers(0, len(CXR_CLASSES), size=cfg.n_samples)
        X = np.empty((cfg.n_samples, 1, hw, hw))
        for i in range(cfg.n_samples):
            img = self._thorax(rng, hw)
            cls = CXR_CLASSES[int(y[i])]
            if cls == "pneumonia":
                self._apply_pneumonia(rng, img)
            elif cls == "covid19":
                self._apply_covid(rng, img)
            X[i, 0] = img
        X += rng.normal(0.0, cfg.noise_sigma, size=X.shape)
        return X, y.astype(np.int64)

    def generate_external_validation(
        self, n_samples: int, seed_offset: int = 104729
    ) -> tuple[np.ndarray, np.ndarray]:
        """An 'unseen hospital' distribution shift: new seed, slightly
        different acquisition (contrast/noise) — the pharma-collaboration
        validation set of Sec. IV-A."""
        cfg = CxrConfig(
            n_samples=n_samples,
            image_size=self.config.image_size,
            noise_sigma=self.config.noise_sigma * 1.5,
            seed=self.config.seed + seed_offset,
        )
        X, y = SyntheticCovidx(cfg).generate()
        # Different detector calibration: a mild gain/offset shift.  Kept
        # mild deliberately — the paper's claim is that COVID-Net
        # generalises to the unseen hospital, so the shift must change the
        # acquisition, not the pathology signal.
        X = X * 1.03 + 0.01
        return X, y
