"""Synthetic MIMIC-III-like ICU time series with ARDS episodes.

The ARDS case study (Sec. IV-B) uses MIMIC-III vitals: "many time-series of
varying lengths ... noisy and often has many missing values".  The
generator reproduces those statistics:

* multivariate vitals with physiological coupling (SpO2 follows PaO2/FiO2;
  heart rate rises as oxygenation falls; respiratory rate couples to both),
* mean-reverting (Ornstein-Uhlenbeck) baseline dynamics + circadian rhythm,
* ARDS episodes: the P/F ratio (PaO2/FiO2) declines below the Berlin
  definition's 300 mmHg threshold over hours, with severity bands
  (mild < 300, moderate < 200, severe < 100),
* measurement noise, MCAR missingness plus bursty sensor dropouts,
* varying record lengths.

Helpers build (window → next value) tensors for the GRU/1-D-CNN
missing-value prediction task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Channel order of the vitals matrix.
VITAL_CHANNELS = ("heart_rate", "spo2", "resp_rate", "map_bp", "fio2", "pao2")

#: Healthy set-points and plausible physiological bounds per channel.
_SETPOINTS = {
    "heart_rate": (80.0, (30.0, 200.0)),
    "spo2": (97.0, (50.0, 100.0)),
    "resp_rate": (16.0, (4.0, 60.0)),
    "map_bp": (85.0, (30.0, 160.0)),
    "fio2": (0.30, (0.21, 1.0)),
    "pao2": (95.0, (30.0, 500.0)),
}


@dataclass(frozen=True)
class IcuConfig:
    n_patients: int = 40
    min_hours: int = 24
    max_hours: int = 96
    ards_fraction: float = 0.35        # enriched vs the 1-2% ICU incidence
    missing_rate: float = 0.12         # MCAR per-sample missingness
    dropout_burst_rate: float = 0.01   # per-hour chance a sensor drops out
    dropout_burst_hours: int = 4
    noise_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_patients < 1:
            raise ValueError("need at least one patient")
        if not (0 <= self.ards_fraction <= 1):
            raise ValueError("ards_fraction in [0, 1]")
        if not (0 <= self.missing_rate < 1):
            raise ValueError("missing_rate in [0, 1)")
        if self.min_hours < 8 or self.max_hours < self.min_hours:
            raise ValueError("need min_hours >= 8 and max_hours >= min_hours")


@dataclass
class PatientRecord:
    """One ICU stay: hourly vitals, observation mask, ARDS ground truth."""

    patient_id: int
    vitals: np.ndarray              # (T, n_channels), NaN where unobserved
    mask: np.ndarray                # (T, n_channels) bool, True = observed
    truth: np.ndarray               # (T, n_channels) noise-free, fully dense
    has_ards: bool
    ards_onset_hour: Optional[int]  # None if no ARDS

    @property
    def n_hours(self) -> int:
        return self.vitals.shape[0]

    def pf_ratio(self) -> np.ndarray:
        """PaO2/FiO2 in mmHg from the ground truth (the Berlin quantity)."""
        pao2 = self.truth[:, VITAL_CHANNELS.index("pao2")]
        fio2 = self.truth[:, VITAL_CHANNELS.index("fio2")]
        return pao2 / fio2


def berlin_severity(pf_ratio: float) -> str:
    """Berlin definition severity bands [28]."""
    if pf_ratio < 0:
        raise ValueError("P/F ratio must be non-negative")
    if pf_ratio < 100:
        return "severe"
    if pf_ratio < 200:
        return "moderate"
    if pf_ratio < 300:
        return "mild"
    return "none"


class IcuCohort:
    """Deterministic cohort generator."""

    def __init__(self, config: Optional[IcuConfig] = None) -> None:
        self.config = config or IcuConfig()

    def _simulate_patient(self, rng: np.random.Generator, pid: int) -> PatientRecord:
        cfg = self.config
        hours = int(rng.integers(cfg.min_hours, cfg.max_hours + 1))
        nch = len(VITAL_CHANNELS)
        has_ards = rng.random() < cfg.ards_fraction
        onset = int(rng.integers(6, max(7, hours - 8))) if has_ards else None

        truth = np.zeros((hours, nch))
        # Per-patient baselines around the set-points.
        base = np.array([
            _SETPOINTS[c][0] * rng.uniform(0.92, 1.08) for c in VITAL_CHANNELS
        ])
        # OU parameters: mean reversion + diffusion per channel.
        theta = np.array([0.25, 0.35, 0.3, 0.2, 0.5, 0.3])
        sigma = np.array([3.0, 0.6, 1.2, 3.0, 0.005, 3.0]) * cfg.noise_scale

        # ARDS trajectory: PaO2 declines, FiO2 is escalated by staff.
        pao2_target = np.full(hours, base[VITAL_CHANNELS.index("pao2")])
        fio2_target = np.full(hours, base[VITAL_CHANNELS.index("fio2")])
        if has_ards:
            t = np.arange(hours)
            ramp = np.clip((t - onset) / 12.0, 0.0, 1.0)   # 12 h decline
            severity = rng.uniform(0.45, 0.8)              # how far P/F falls
            pao2_target = pao2_target * (1.0 - severity * ramp)
            fio2_target = fio2_target + 0.5 * ramp          # staff raise FiO2

        x = base.copy()
        circadian_phase = rng.uniform(0, 2 * np.pi)
        for t in range(hours):
            target = base.copy()
            target[VITAL_CHANNELS.index("pao2")] = pao2_target[t]
            target[VITAL_CHANNELS.index("fio2")] = fio2_target[t]
            # Physiological coupling: SpO2 tracks oxygenation; HR and RR
            # compensate as SpO2 falls.
            pf = x[VITAL_CHANNELS.index("pao2")] / max(
                x[VITAL_CHANNELS.index("fio2")], 0.21)
            spo2_drive = 100.0 * (1.0 - np.exp(-pf / 120.0))
            target[VITAL_CHANNELS.index("spo2")] = min(spo2_drive, 100.0)
            hypoxia = max(0.0, 94.0 - x[VITAL_CHANNELS.index("spo2")])
            target[VITAL_CHANNELS.index("heart_rate")] += 2.5 * hypoxia
            target[VITAL_CHANNELS.index("resp_rate")] += 0.8 * hypoxia
            # Circadian modulation of HR/BP.
            circ = np.sin(2 * np.pi * t / 24.0 + circadian_phase)
            target[VITAL_CHANNELS.index("heart_rate")] += 4.0 * circ
            target[VITAL_CHANNELS.index("map_bp")] += 3.0 * circ
            # OU step.
            x = x + theta * (target - x) + sigma * rng.normal(size=nch)
            for c, name in enumerate(VITAL_CHANNELS):
                lo, hi = _SETPOINTS[name][1]
                x[c] = float(np.clip(x[c], lo, hi))
            truth[t] = x

        # Observation process: measurement noise + missingness.
        meas_noise = sigma * 0.5
        vitals = truth + rng.normal(size=truth.shape) * meas_noise
        mask = rng.random(truth.shape) >= cfg.missing_rate
        # Bursty sensor dropouts.
        for c in range(nch):
            t = 0
            while t < hours:
                if rng.random() < cfg.dropout_burst_rate:
                    span = int(rng.integers(1, cfg.dropout_burst_hours + 1))
                    mask[t:t + span, c] = False
                    t += span
                else:
                    t += 1
        vitals = np.where(mask, vitals, np.nan)
        return PatientRecord(
            patient_id=pid, vitals=vitals, mask=mask, truth=truth,
            has_ards=has_ards, ards_onset_hour=onset,
        )

    def generate(self) -> list[PatientRecord]:
        rng = np.random.default_rng(self.config.seed)
        return [
            self._simulate_patient(rng, pid)
            for pid in range(self.config.n_patients)
        ]


def make_imputation_windows(
    records: list[PatientRecord],
    window: int = 8,
    target_channel: int = 0,
    normalise: bool = True,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Build (X, y) for next-value prediction of one vital channel.

    For every position where the *next* hour's target value exists in the
    ground truth, emit the preceding ``window`` hours of all channels
    (missing entries zero-filled after normalisation, which the GRU learns
    to see as 'absent') and the next true value as the label.  Returns the
    normalisation statistics so predictions can be un-scaled.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not records:
        raise ValueError("need at least one record")
    nch = records[0].vitals.shape[1]
    if not (0 <= target_channel < nch):
        raise ValueError("target_channel out of range")

    # Channel statistics over observed values, for normalisation.
    observed = np.concatenate([
        np.where(r.mask, r.vitals, np.nan) for r in records
    ])
    mean = np.nanmean(observed, axis=0)
    std = np.nanstd(observed, axis=0)
    std = np.where(std < 1e-9, 1.0, std)

    xs, ys = [], []
    for rec in records:
        filled = np.where(rec.mask, rec.vitals, np.nan)
        if normalise:
            filled = (filled - mean) / std
        filled = np.nan_to_num(filled, nan=0.0)
        target = rec.truth[:, target_channel]
        target_n = (target - mean[target_channel]) / std[target_channel] \
            if normalise else target
        for t in range(window, rec.n_hours):
            xs.append(filled[t - window:t])
            ys.append(target_n[t])
    X = np.asarray(xs)
    y = np.asarray(ys)[:, None]
    stats = {
        "mean": mean, "std": std, "target_channel": target_channel,
        "window": window,
    }
    return X, y, stats


def make_masked_imputation_windows(
    records: list[PatientRecord],
    window: int = 8,
    target_channel: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
    """Like :func:`make_imputation_windows` but also returns the
    observation masks — the inputs GRU-D-style models consume
    (:mod:`repro.ml.models.gru_d`)."""
    X, y, stats = make_imputation_windows(
        records, window=window, target_channel=target_channel,
        normalise=True)
    masks = []
    for rec in records:
        for t in range(window, rec.n_hours):
            masks.append(rec.mask[t - window:t].astype(np.float64))
    M = np.asarray(masks)
    if M.shape != X.shape:
        raise RuntimeError("mask/window shape mismatch")
    return X, M, y, stats
