"""Distributed DL training — the Horovod/DeepSpeed layer of the paper.

Sec. III-A: "distributed training employs a multi-node data parallelism
strategy ... using multiple GPUs and communicating with MPI to synchronise
the learning process", via Horovod or "more recently, DeepSpeed".

* :mod:`repro.distributed.horovod` — Horovod-style API over
  :mod:`repro.mpi`: ``DistributedOptimizer`` (fused-buffer ring-allreduce
  gradient averaging), ``broadcast_parameters``, metric all-reduction,
* :mod:`repro.distributed.deepspeed` — a ZeRO-stage-1-style optimizer with
  sharded optimiser state,
* :mod:`repro.distributed.compression` — gradient compression (fp16),
* :mod:`repro.distributed.perfmodel` — the analytic performance model that
  regenerates the paper's Fig. 3 scaling study (96 → 128 A100 GPUs) from
  device specs and collective cost models.
"""

from repro.distributed.horovod import (
    Horovod,
    DistributedOptimizer,
    broadcast_parameters,
    allreduce_average,
    global_batch_indices,
    ElasticRecovery,
    ElasticRunResult,
    run_elastic_training,
)
from repro.distributed.deepspeed import ZeroStage1Optimizer, ZeroStage2Optimizer
from repro.distributed.compression import NoCompression, Fp16Compression
from repro.distributed.timeline import Timeline, TimelineEvent, merge_timelines
from repro.distributed.inference import (distributed_predict, distributed_evaluate,
    inference_scaleout_time, predict_in_batches, shard_bounds)
from repro.distributed.perfmodel import (
    DistributedTrainingPerfModel,
    InferencePerfModel,
    ScalingPoint,
    TrainingRecipe,
)

__all__ = [
    "Horovod",
    "DistributedOptimizer",
    "broadcast_parameters",
    "allreduce_average",
    "global_batch_indices",
    "ElasticRecovery",
    "ElasticRunResult",
    "run_elastic_training",
    "ZeroStage1Optimizer",
    "ZeroStage2Optimizer",
    "NoCompression",
    "Timeline",
    "TimelineEvent",
    "merge_timelines",
    "distributed_predict",
    "distributed_evaluate",
    "inference_scaleout_time",
    "predict_in_batches",
    "shard_bounds",
    "Fp16Compression",
    "DistributedTrainingPerfModel",
    "InferencePerfModel",
    "ScalingPoint",
    "TrainingRecipe",
]
