"""Gradient compression for distributed training.

Horovod ships an fp16 compressor that halves allreduce traffic; the tuned
128-GPU runs of the paper's follow-up [20] rely on reduced-precision
communication.  Compressors transform the fused gradient buffer before the
collective and invert afterwards; the simulated clock automatically charges
the smaller wire size because the payload really is float16.
"""

from __future__ import annotations

import numpy as np


class NoCompression:
    """Identity compressor."""

    name = "none"

    def compress(self, buf: np.ndarray) -> np.ndarray:
        return buf

    def decompress(self, buf: np.ndarray) -> np.ndarray:
        return buf

    def wire_bytes(self, buf: np.ndarray) -> int:
        return int(buf.nbytes)


class Fp16Compression:
    """Cast to float16 on the wire, restore to float64 after the collective.

    Loses precision beyond ~3 decimal digits — acceptable for gradient
    averaging (and exactly what Horovod's fp16 compressor does).
    """

    name = "fp16"

    def compress(self, buf: np.ndarray) -> np.ndarray:
        return buf.astype(np.float16)

    def decompress(self, buf: np.ndarray) -> np.ndarray:
        return buf.astype(np.float64)

    def wire_bytes(self, buf: np.ndarray) -> int:
        return int(buf.size * 2)
