"""DeepSpeed-ZeRO-style optimiser state sharding (stage 1).

The paper names DeepSpeed as the "more recent" distributed-training tool
(Sec. III-A).  Its core memory innovation, ZeRO, partitions redundant
training state across data-parallel ranks.  Stage 1 shards the *optimiser
state* (Adam's m/v moments): each rank keeps moments only for its parameter
shard, applies the update there, and the updated shard is allgathered so
every replica ends the step with identical weights.

Observable properties reproduced (and asserted in tests):

* per-rank optimiser-state memory ≈ 1/p of the unsharded optimiser,
* final weights equal plain data-parallel Adam's, bit-for-bit in exact
  arithmetic (float64 here).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import telemetry
from repro.mpi.comm import Communicator, ReduceOp
from repro.ml.layers import Parameter


class ZeroStage1Optimizer:
    """Adam with optimiser state sharded across data-parallel ranks."""

    def __init__(
        self,
        params: Sequence[Parameter],
        comm: Communicator,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        if not self.params:
            raise ValueError("need at least one parameter")
        self.comm = comm
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0

        # Shard boundaries over the fused parameter vector.
        self.total_elements = sum(p.size for p in self.params)
        bounds = np.linspace(0, self.total_elements, comm.size + 1).astype(np.int64)
        self.shard_bounds = [(int(bounds[i]), int(bounds[i + 1]))
                             for i in range(comm.size)]
        lo, hi = self.shard_bounds[comm.rank]
        self._lo, self._hi = lo, hi
        # Moments exist ONLY for this rank's shard — the ZeRO saving.
        self._m = np.zeros(hi - lo)
        self._v = np.zeros(hi - lo)

    # -- memory accounting (the ZeRO claim) ---------------------------------
    @property
    def local_state_bytes(self) -> int:
        return int(self._m.nbytes + self._v.nbytes)

    @property
    def unsharded_state_bytes(self) -> int:
        return int(2 * self.total_elements * 8)

    @property
    def memory_saving_factor(self) -> float:
        if self.local_state_bytes == 0:
            return float(self.comm.size)
        return self.unsharded_state_bytes / (self.local_state_bytes or 1)

    # -- the training step ------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _fused_grad(self) -> np.ndarray:
        chunks = []
        for p in self.params:
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            chunks.append(np.asarray(g, dtype=np.float64).ravel())
        return np.concatenate(chunks)

    def _fused_param(self) -> np.ndarray:
        return np.concatenate([p.data.ravel() for p in self.params])

    def _write_back(self, fused: np.ndarray) -> None:
        offset = 0
        for p in self.params:
            n = p.size
            p.data[...] = fused[offset:offset + n].reshape(p.data.shape)
            offset += n

    def step(self) -> None:
        """Average gradients, update the local shard, allgather weights."""
        with telemetry.get_tracer().span(
                "zero1-step", "train", lambda: self.comm.sim_time,
                track="train", lane=self.comm._lane()):
            self._do_step()

    def _do_step(self) -> None:
        self._step_count += 1
        grad = self._fused_grad()
        if self.comm.size > 1:
            grad = self.comm.allreduce(grad, op=ReduceOp.SUM) / self.comm.size

        lo, hi = self._lo, self._hi
        g = grad[lo:hi]
        theta = self._fused_param()[lo:hi]
        if self.weight_decay:
            g = g + self.weight_decay * theta

        t = self._step_count
        self._m *= self.beta1
        self._m += (1 - self.beta1) * g
        self._v *= self.beta2
        self._v += (1 - self.beta2) * g ** 2
        m_hat = self._m / (1 - self.beta1 ** t)
        v_hat = self._v / (1 - self.beta2 ** t)
        theta = theta - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

        if self.comm.size > 1:
            shards = self.comm.allgather(theta)
            fused = np.concatenate(shards)
        else:
            fused = theta
        if fused.shape[0] != self.total_elements:
            raise RuntimeError("shard reassembly size mismatch")
        self._write_back(fused)

    @property
    def step_count(self) -> int:
        return self._step_count


class ZeroStage2Optimizer(ZeroStage1Optimizer):
    """ZeRO stage 2: gradients *and* optimiser state sharded.

    Instead of allreducing the full fused gradient, the step reduce-scatters
    it: each rank materialises only its fully-reduced gradient shard
    (~1/p of the gradient memory), updates its parameter shard, and the
    updated shards are allgathered.  Numerically identical to stage 1 and
    plain data-parallel Adam (asserted in tests); communication volume per
    step is the same 2·n·(p-1)/p bytes a ring allreduce moves.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Stage 2 shards along the ring reduce-scatter's chunk boundaries,
        # which differ from stage 1's contiguous split: chunk (rank+1)%p.
        self.peak_grad_shard_bytes = 0

    def step(self) -> None:
        with telemetry.get_tracer().span(
                "zero2-step", "train", lambda: self.comm.sim_time,
                track="train", lane=self.comm._lane()):
            self._do_step()

    def _do_step(self) -> None:
        self._step_count += 1
        grad = self._fused_grad()
        if self.comm.size > 1:
            shard, (lo, hi) = self.comm.reduce_scatter(grad)
            shard = shard / self.comm.size
        else:
            shard, (lo, hi) = grad, (0, self.total_elements)
        self.peak_grad_shard_bytes = max(self.peak_grad_shard_bytes,
                                         int(shard.nbytes))
        # Moments are lazily (re)sized to the reduce-scatter's shard.
        if self._m.shape[0] != hi - lo:
            self._m = np.zeros(hi - lo)
            self._v = np.zeros(hi - lo)
        self._lo, self._hi = lo, hi

        theta = self._fused_param()[lo:hi]
        g = shard
        if self.weight_decay:
            g = g + self.weight_decay * theta
        t = self._step_count
        self._m *= self.beta1
        self._m += (1 - self.beta1) * g
        self._v *= self.beta2
        self._v += (1 - self.beta2) * g ** 2
        m_hat = self._m / (1 - self.beta1 ** t)
        v_hat = self._v / (1 - self.beta2 ** t)
        theta = theta - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

        if self.comm.size > 1:
            pieces = self.comm.allgather((lo, theta))
            fused = np.empty(self.total_elements)
            covered = 0
            for plo, chunk in pieces:
                fused[plo:plo + chunk.shape[0]] = chunk
                covered += chunk.shape[0]
            if covered != self.total_elements:
                raise RuntimeError("stage-2 shard reassembly mismatch")
        else:
            fused = theta
        self._write_back(fused)

    @property
    def grad_memory_saving_factor(self) -> float:
        """Full fused gradient bytes / this rank's shard bytes."""
        full = self.total_elements * 8
        return full / max(self.peak_grad_shard_bytes, 1)
