"""Horovod-style data-parallel training over the simulated MPI.

Implements the API surface the paper's case studies use:

* :func:`broadcast_parameters` — rank 0's initial weights to all ranks,
* :class:`DistributedOptimizer` — wraps a local optimiser; before each
  ``step`` it averages gradients across ranks with a **fused-buffer ring
  allreduce** (Horovod's tensor fusion + ring algorithm), optionally
  compressed to fp16 on the wire,
* :func:`allreduce_average` — metric averaging.

Data-parallel semantics reproduced exactly: every rank holds a model
replica, consumes a disjoint shard (see
:class:`~repro.ml.data.DistributedDataLoader`), and sees identical weights
after every step — an invariant the test suite asserts bitwise (up to
compression tolerance).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mpi.comm import Communicator, ReduceOp
from repro.mpi import collectives
from repro.ml.layers import Module, Parameter
from repro.ml.optim import Optimizer
from repro.distributed.compression import NoCompression


class Horovod:
    """Thin context mirroring ``hvd.init()/rank()/size()``."""

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm

    def rank(self) -> int:
        return self.comm.rank

    def size(self) -> int:
        return self.comm.size

    def local_rank(self) -> int:
        return self.comm.rank  # single simulated host per rank


def broadcast_parameters(model: Module, comm: Communicator, root: int = 0) -> None:
    """Synchronise all replicas with the root's weights and buffers."""
    state = model.state_dict() if comm.rank == root else None
    state = comm.bcast(state, root=root)
    if comm.rank != root:
        model.load_state_dict(state)


def allreduce_average(comm: Communicator, value: float) -> float:
    """Average a scalar metric across ranks (e.g. validation loss)."""
    return comm.allreduce(float(value), op=ReduceOp.SUM) / comm.size


def _flatten_grads(params: Sequence[Parameter]) -> np.ndarray:
    """Fuse all gradients into one buffer (Horovod tensor fusion)."""
    chunks = []
    for p in params:
        g = p.grad if p.grad is not None else np.zeros_like(p.data)
        chunks.append(np.asarray(g, dtype=np.float64).ravel())
    return np.concatenate(chunks)


def _unflatten_into_grads(params: Sequence[Parameter], buf: np.ndarray) -> None:
    offset = 0
    for p in params:
        n = p.size
        p.grad = buf[offset:offset + n].reshape(p.data.shape).copy()
        offset += n


class DistributedOptimizer:
    """Wrap a local optimiser with allreduce gradient averaging.

    >>> opt = SGD(model.parameters(), lr=0.1)
    >>> opt = DistributedOptimizer(opt, comm)
    >>> loss.backward(); opt.step()   # gradients averaged across ranks
    """

    def __init__(
        self,
        optimizer: Optimizer,
        comm: Communicator,
        compression=None,
        average: bool = True,
    ) -> None:
        self.optimizer = optimizer
        self.comm = comm
        self.compression = compression or NoCompression()
        self.average = average
        self._tag_seq = 0
        #: Traffic accounting for the scaling experiments.
        self.bytes_communicated = 0
        self.allreduce_calls = 0

    @property
    def params(self) -> list[Parameter]:
        return self.optimizer.params

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def synchronize(self) -> None:
        """Fused-buffer allreduce of gradients (SUM, then divide)."""
        if self.comm.size == 1:
            return
        fused = _flatten_grads(self.params)
        wire = self.compression.compress(fused)
        if wire.size >= self.comm.size:
            tag = self.comm._next_coll_tag()
            collectives.ring_allreduce_inplace(self.comm, wire, tag)
            reduced = self.compression.decompress(wire)
        else:
            reduced = self.compression.decompress(
                self.comm.allreduce(wire, op=ReduceOp.SUM)
            )
        if self.average:
            reduced = reduced / self.comm.size
        self.bytes_communicated += self.compression.wire_bytes(fused)
        self.allreduce_calls += 1
        _unflatten_into_grads(self.params, reduced)

    def step(self) -> None:
        self.synchronize()
        self.optimizer.step()

    @property
    def step_count(self) -> int:
        return self.optimizer.step_count
