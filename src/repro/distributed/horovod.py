"""Horovod-style data-parallel training over the simulated MPI.

Implements the API surface the paper's case studies use:

* :func:`broadcast_parameters` — rank 0's initial weights to all ranks,
* :class:`DistributedOptimizer` — wraps a local optimiser; before each
  ``step`` it averages gradients across ranks with a **fused-buffer ring
  allreduce** (Horovod's tensor fusion + ring algorithm), optionally
  compressed to fp16 on the wire,
* :func:`allreduce_average` — metric averaging.

Data-parallel semantics reproduced exactly: every rank holds a model
replica, consumes a disjoint shard (see
:class:`~repro.ml.data.DistributedDataLoader`), and sees identical weights
after every step — an invariant the test suite asserts bitwise (up to
compression tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.mpi.comm import Communicator, ReduceOp
from repro.mpi import collectives
from repro.ml.layers import Module, Parameter
from repro.ml.optim import Optimizer
from repro.distributed.compression import NoCompression


class Horovod:
    """Thin context mirroring ``hvd.init()/rank()/size()``."""

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm

    def rank(self) -> int:
        return self.comm.rank

    def size(self) -> int:
        return self.comm.size

    def local_rank(self) -> int:
        return self.comm.rank  # single simulated host per rank


def broadcast_parameters(model: Module, comm: Communicator, root: int = 0) -> None:
    """Synchronise all replicas with the root's weights and buffers."""
    state = model.state_dict() if comm.rank == root else None
    state = comm.bcast(state, root=root)
    if comm.rank != root:
        model.load_state_dict(state)


def allreduce_average(comm: Communicator, value: float) -> float:
    """Average a scalar metric across ranks (e.g. validation loss)."""
    return comm.allreduce(float(value), op=ReduceOp.SUM) / comm.size


def _flatten_grads(params: Sequence[Parameter]) -> np.ndarray:
    """Fuse all gradients into one buffer (Horovod tensor fusion)."""
    chunks = []
    for p in params:
        g = p.grad if p.grad is not None else np.zeros_like(p.data)
        chunks.append(np.asarray(g, dtype=np.float64).ravel())
    return np.concatenate(chunks)


def _unflatten_into_grads(params: Sequence[Parameter], buf: np.ndarray) -> None:
    offset = 0
    for p in params:
        n = p.size
        p.grad = buf[offset:offset + n].reshape(p.data.shape).copy()
        offset += n


class DistributedOptimizer:
    """Wrap a local optimiser with allreduce gradient averaging.

    >>> opt = SGD(model.parameters(), lr=0.1)
    >>> opt = DistributedOptimizer(opt, comm)
    >>> loss.backward(); opt.step()   # gradients averaged across ranks
    """

    def __init__(
        self,
        optimizer: Optimizer,
        comm: Communicator,
        compression=None,
        average: bool = True,
        injector: Any = None,
        integrity_config: Any = None,
    ) -> None:
        self.optimizer = optimizer
        self.comm = comm
        self.compression = compression or NoCompression()
        self.average = average
        #: Silent-corruption machinery: a
        #: :class:`~repro.resilience.integrity.CorruptionInjector` plus an
        #: :class:`~repro.resilience.integrity.IntegrityConfig` switch the
        #: gradient path to the ABFT-verified allreduce (raising
        #: :class:`~repro.resilience.integrity.GradientCorruptionError`
        #: with the offending world ranks on detection).  ``current_step``
        #: tells the injector which step's faults apply.
        self.injector = injector
        self.integrity_config = integrity_config
        self.current_step = 0
        self._tag_seq = 0
        #: Traffic accounting for the scaling experiments.
        self.bytes_communicated = 0
        self.allreduce_calls = 0
        #: Fusion-buffer accounting for the perf-regression harness:
        #: fresh fused-buffer allocations vs pooled reuses per synchronize.
        self.fusion_allocs = 0
        self.fusion_reuses = 0
        self._fused_buf: Optional[np.ndarray] = None
        self._grad_pool: Optional[list[np.ndarray]] = None

    def _fuse_grads(self) -> np.ndarray:
        """Fill the pooled fusion buffer with the current gradients.

        The buffer is allocated once (and again only if the parameter set
        changes size); later steps reuse it through casting slice
        assignment, which is bit-identical to fusing via
        ``np.concatenate`` of per-parameter float64 casts.
        """
        params = self.params
        sizes = [p.size for p in params]
        total = sum(sizes)
        buf = self._fused_buf
        if buf is None or buf.size != total:
            buf = self._fused_buf = np.empty(total, dtype=np.float64)
            self._grad_pool = None
            self.fusion_allocs += 1
        else:
            self.fusion_reuses += 1
        offset = 0
        for p, n in zip(params, sizes):
            g = p.grad
            if g is None:
                buf[offset:offset + n] = 0.0
            else:
                buf[offset:offset + n] = np.asarray(g).reshape(-1)
            offset += n
        return buf

    def _scatter_grads(self, buf: np.ndarray) -> None:
        """Pooled counterpart of :func:`_unflatten_into_grads`: each
        parameter's gradient array is allocated once and refilled in
        place on every step."""
        params = self.params
        pool = self._grad_pool
        if pool is None or len(pool) != len(params):
            pool = self._grad_pool = [
                np.empty(p.data.shape, dtype=np.float64) for p in params]
        offset = 0
        for p, out in zip(params, pool):
            n = p.size
            out[...] = buf[offset:offset + n].reshape(p.data.shape)
            p.grad = out
            offset += n

    @property
    def params(self) -> list[Parameter]:
        return self.optimizer.params

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def synchronize(self) -> None:
        """Fused-buffer allreduce of gradients (SUM, then divide).

        With integrity machinery attached the reduction runs through the
        ABFT-verified path instead (uncompressed — the checksum invariant
        is over the exact float64 contributions).
        """
        if self.comm.size == 1:
            return
        tracer = telemetry.get_tracer()
        start = self.comm.sim_time if tracer.enabled else 0.0
        fused = self._fuse_grads()
        if self.integrity_config is not None or self.injector is not None:
            from repro.resilience.integrity import (IntegrityConfig,
                                                    verified_grad_allreduce)

            reduced = verified_grad_allreduce(
                self.comm, fused, self.injector, self.current_step,
                self.integrity_config or IntegrityConfig())
        else:
            wire = self.compression.compress(fused)
            if wire.size >= self.comm.size:
                tag = self.comm._next_coll_tag()
                collectives.ring_allreduce_inplace(self.comm, wire, tag)
                reduced = self.compression.decompress(wire)
            else:
                reduced = self.compression.decompress(
                    self.comm.allreduce(wire, op=ReduceOp.SUM)
                )
        if self.average:
            # In place: ``reduced`` is either the pooled fusion buffer or
            # a collective-local array, never caller-owned memory.
            np.divide(reduced, self.comm.size, out=reduced)
        nbytes = self.compression.wire_bytes(fused)
        self.bytes_communicated += nbytes
        self.allreduce_calls += 1
        if tracer.enabled:
            tracer.record("grad-allreduce", "comm", start,
                          self.comm.sim_time - start, track="train",
                          lane=self.comm._lane(), nbytes=nbytes)
            telemetry.get_registry().counter(
                "collective_bytes", op="grad-allreduce").inc(nbytes)
        self._scatter_grads(reduced)

    def step(self) -> None:
        self.synchronize()
        self.optimizer.step()

    @property
    def step_count(self) -> int:
        return self.optimizer.step_count


# ---------------------------------------------------------------------------
# Elastic training: ring rebuild on rank loss + checkpoint-restart.
# ---------------------------------------------------------------------------

def global_batch_indices(
    n_samples: int, batch_size: int, step: int, seed: int
) -> np.ndarray:
    """The global batch for ``step`` — identical on every rank and for
    every world size.

    Seeding the generator with ``[seed, step]`` makes the sample draw a
    pure function of the step, so a rank that rolls back to a checkpoint
    replays exactly the batches the lost steps consumed, and a world of 4
    survivors sees the same batch a world of 8 would have.
    """
    if not 0 < batch_size <= n_samples:
        raise ValueError("need 0 < batch_size <= n_samples")
    rng = np.random.default_rng([seed, step])
    return rng.choice(n_samples, size=batch_size, replace=False)


@dataclass(frozen=True)
class ElasticRecovery:
    """One survived failure: who died, and where training resumed."""

    failed_step: int                 #: global step the kill struck at
    dead_world_ranks: tuple[int, ...]
    restored_step: int               #: checkpoint step training resumed from
    restored_from: str               #: "nam" | "pfs" | "none" (no manager)
    world_size_after: int
    reason: str = "rank-kill"        #: "rank-kill" | "gradient-corruption"
    rollback_versions: int = 0       #: lineage versions skipped on restore

    @property
    def steps_lost(self) -> int:
        """Steps of work recomputed because of this failure."""
        return self.failed_step - self.restored_step


@dataclass
class ElasticRunResult:
    """Outcome of :func:`run_elastic_training` (from a surviving rank)."""

    losses: list[float]
    recoveries: list[ElasticRecovery]
    final_state: dict[str, np.ndarray]
    final_world_size: int
    checkpoint_steps: list[int] = field(default_factory=list)
    #: End-of-run at-rest verification summary ({"checked", "corrupt"}).
    scrub: dict = field(default_factory=dict)

    @property
    def steps_lost(self) -> int:
        return sum(r.steps_lost for r in self.recoveries)


def run_elastic_training(
    model_factory: Callable[[], Module],
    X: np.ndarray,
    Y: np.ndarray,
    n_steps: int,
    batch_size: int,
    world_size: int,
    lr: float = 0.05,
    seed: int = 0,
    fault_plan: Any = None,
    checkpoint_manager: Any = None,
    checkpoint_policy: Any = None,
    name: str = "elastic",
    cost_model=None,
    loss_fn: Optional[Callable] = None,
    integrity_config: Any = None,
    max_rollback: Optional[int] = None,
    on_quarantine: Optional[Callable[[tuple[int, ...]], None]] = None,
) -> ElasticRunResult:
    """Data-parallel training that survives rank loss.

    The elastic loop the MSA's resilience story needs on top of the plain
    Horovod recipe: when a :class:`~repro.resilience.faults.FaultPlan`
    kills ranks at a step, every member of the current ring collectively
    shrinks the communicator (ULFM-style — dead ranks leave, survivors
    renumber), the new rank 0 restores the latest checkpoint — NAM first,
    PFS fallback, per the
    :class:`~repro.resilience.policy.CheckpointPolicy` — broadcasts it,
    and training resumes from the restored step.

    Loss-trajectory invariance: each step consumes a *global* batch drawn
    deterministically from ``(seed, step)`` (see
    :func:`global_batch_indices`), sharded round-robin over the live
    ranks.  Local losses are scaled by ``n_local / batch_size`` and
    gradients summed (``average=False``), so the update equals the full
    global-batch gradient for any world size: a run that loses half its
    ranks mid-way reproduces the unfailed run's loss curve to floating-
    point tolerance.

    Returns the surviving ranks' (identical) result.  The local optimiser
    is plain SGD without momentum, so model weights are the complete
    training state and checkpoint-restart is exact.

    Silent corruption: when the fault plan carries corruption specs (or
    ``integrity_config`` is given), an
    :class:`~repro.resilience.integrity.IntegrityContext` is installed on
    every communicator (checksummed message envelopes) and gradient
    reduction goes through the ABFT-verified allreduce.  A detected
    corrupted contribution is handled exactly like a killed rank — the
    offender is reported to ``on_quarantine`` (e.g. the scheduler's
    suspect-node machinery), the ring shrinks, and survivors roll back to
    the newest *verified* checkpoint of the lineage (NAM→PFS within each
    version, bounded by ``max_rollback``).  CHECKPOINT_ROT specs strike
    stored versions at their step; an end-of-run scrub verifies whatever
    was never restored, so every injected corruption is accounted for.
    """
    from repro.ml.optim import SGD
    from repro.ml.tensor import Tensor
    from repro.ml.losses import cross_entropy
    from repro.mpi.runtime import run_spmd
    from repro.resilience.integrity import (
        CorruptionInjector,
        GradientCorruptionError,
        IntegrityConfig,
        IntegrityContext,
    )

    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if batch_size < world_size:
        raise ValueError("batch_size must be >= world_size so every rank "
                         "holds a shard")
    if checkpoint_manager is not None and checkpoint_policy is None:
        from repro.resilience.policy import CheckpointPolicy
        checkpoint_policy = CheckpointPolicy()
    compute_loss = loss_fn or cross_entropy
    n_samples = len(X)

    injector = None
    integrity_ctx = None
    if fault_plan is not None and getattr(fault_plan, "has_corruption", False):
        injector = CorruptionInjector(fault_plan)
    if injector is not None or integrity_config is not None:
        integrity_config = integrity_config or IntegrityConfig()
        integrity_ctx = IntegrityContext(injector, integrity_config)

    #: CHECKPOINT_ROT specs already applied, shared by whichever thread is
    #: rank 0 when a step is first reached (ring transitions order access).
    consumed_rots: set[tuple[int, int]] = set()

    def _rank_main(comm: Communicator) -> Optional[dict]:
        tracer = telemetry.get_tracer()
        model = model_factory()
        broadcast_parameters(model, comm)
        active = comm
        opt = DistributedOptimizer(
            SGD(model.parameters(), lr=lr), active, average=False,
            injector=injector, integrity_config=integrity_config)
        losses: list[float] = []
        recoveries: list[ElasticRecovery] = []
        ckpt_steps: set[int] = set()
        consumed_kills: set[int] = set()
        step = 0

        def _save_checkpoint(step: int) -> None:
            t_write = checkpoint_manager.save(
                name, step=step, state=model.state_dict(),
                replicate=checkpoint_policy.replicate)
            tracer.record("checkpoint-save", "storage", active.sim_time,
                          t_write, track="storage", lane="checkpoint",
                          step=step,
                          replicate=checkpoint_policy.replicate)

        def _apply_checkpoint_rot() -> None:
            """Rank 0 strikes stored versions with this step's rot specs."""
            if fault_plan is None or checkpoint_manager is None \
                    or active.rank != 0:
                return
            for i, spec in enumerate(
                    fault_plan.checkpoint_rots_at_step(step)):
                key = (step, i)
                if key in consumed_rots:
                    continue
                consumed_rots.add(key)
                target = spec.module or checkpoint_manager.prefer
                if not checkpoint_manager.exists(name, target=target):
                    continue
                checkpoint_manager.corrupt(name, target=target)
                tracer.instant(
                    "checkpoint-rot", "fault", active.sim_time,
                    track="faults", lane="corruption", step=step,
                    target=target)

        def _recover(dead: set, reason: str) -> bool:
            """Shrink away ``dead`` world ranks, roll back to the newest
            verified checkpoint; returns False if *this* rank left."""
            nonlocal active, opt, step
            if active.rank == 0:
                tracer.instant(
                    reason, "fault", active.sim_time, track="faults",
                    lane="rank-kills" if reason == "rank-kill"
                    else "corruption", step=step,
                    ranks=",".join(str(r) for r in sorted(dead)))
            dead_local = [i for i, w in enumerate(active.group) if w in dead]
            if len(dead_local) >= active.size:
                raise RuntimeError(
                    f"fault plan kills all {active.size} live ranks "
                    f"at step {step}")
            shrunk = active.shrink(dead_local)
            if shrunk is None:
                return False         # this rank died here
            active = shrunk
            depth = 0
            if checkpoint_manager is not None:
                if active.rank == 0:
                    restored = checkpoint_manager.restore_latest_verified(
                        name, checkpoint_policy, max_rollback=max_rollback)
                    tracer.record(
                        "checkpoint-restore", "storage", active.sim_time,
                        restored.read_time_s, track="storage",
                        lane="checkpoint", step=restored.step,
                        target=restored.target,
                        rollback=restored.rollback_versions)
                    payload = (restored.state, restored.step,
                               restored.target, restored.rollback_versions)
                else:
                    payload = None
                state, ck_step, target, depth = active.bcast(payload, root=0)
                model.load_state_dict(state)
                del losses[ck_step:]
            else:
                # No checkpoints: survivors carry on from current weights,
                # losing nothing but the dead ranks (a corruption was
                # caught before the update applied, so weights are clean).
                ck_step, target = step, "none"
            if active.rank == 0:
                tracer.instant(
                    "recovered", "fault", active.sim_time,
                    track="faults", lane="rank-kills",
                    restored_step=ck_step, restored_from=target,
                    world_size=active.size)
            recoveries.append(ElasticRecovery(
                failed_step=step,
                dead_world_ranks=tuple(sorted(dead)),
                restored_step=ck_step,
                restored_from=target,
                world_size_after=active.size,
                reason=reason,
                rollback_versions=depth,
            ))
            step = ck_step
            opt = DistributedOptimizer(
                SGD(model.parameters(), lr=lr), active, average=False,
                injector=injector, integrity_config=integrity_config)
            return True

        if checkpoint_manager is not None and active.rank == 0:
            _save_checkpoint(0)
        if checkpoint_manager is not None:
            ckpt_steps.add(0)

        while step < n_steps:
            kills = (fault_plan.kills_at_step(step)
                     if fault_plan is not None else ())
            if kills and step not in consumed_kills:
                consumed_kills.add(step)
                dead = set(kills)
                if any(w in dead for w in active.group):
                    if not _recover(dead, "rank-kill"):
                        return None
                continue

            _apply_checkpoint_rot()
            try:
                with tracer.span("step", "train", lambda: active.sim_time,
                                 track="train", lane=active._lane(),
                                 step=step):
                    idx = global_batch_indices(n_samples, batch_size, step,
                                               seed)
                    shard = idx[active.rank::active.size]
                    logits = model(Tensor(X[shard]))
                    local = compute_loss(logits, Y[shard])
                    # Scale so the allreduce SUM equals the global-batch
                    # mean.
                    scaled = local * (len(shard) / batch_size)
                    opt.zero_grad()
                    scaled.backward()
                    opt.current_step = step
                    opt.step()
                    losses.append(float(
                        active.allreduce(scaled.item(), op=ReduceOp.SUM)))
            except GradientCorruptionError as exc:
                # Every rank of the ring raises with the same offender set
                # (the ABFT audit is collective), so recovery is agreed.
                if active.rank == 0 and on_quarantine is not None:
                    on_quarantine(exc.world_ranks)
                if not _recover(set(exc.world_ranks), "gradient-corruption"):
                    return None
                continue
            telemetry.get_registry().counter("train_steps_total").inc()
            step += 1
            if (checkpoint_manager is not None
                    and checkpoint_policy.should_checkpoint(step)):
                if active.rank == 0:
                    _save_checkpoint(step)
                ckpt_steps.add(step)

        scrub = {}
        if checkpoint_manager is not None and active.rank == 0:
            # At-rest verification: rot on versions that were never
            # restored still gets *detected* here, closing the books.
            scrub = checkpoint_manager.scrub(name)
        return {
            "losses": losses,
            "recoveries": recoveries,
            "state": model.state_dict(),
            "world_size": active.size,
            "ckpt_steps": sorted(ckpt_steps),
            "scrub": scrub,
        }

    results = run_spmd(_rank_main, world_size, cost_model=cost_model,
                       integrity=integrity_ctx)
    survivor = next(r for r in results if r is not None)
    return ElasticRunResult(
        losses=survivor["losses"],
        recoveries=survivor["recoveries"],
        final_state=survivor["state"],
        final_world_size=survivor["world_size"],
        checkpoint_steps=survivor["ckpt_steps"],
        scrub=next((r["scrub"] for r in results
                    if r is not None and r["scrub"]), {}),
    )
