"""Scale-out inference — the CM-train / ESB-infer pattern.

Sec. II-A: "One use case for ML is typically that compute-intensive
training can be performed on the CM module while inference and testing
(i.e., both less compute-intensive) can be scaled-out on the ESB."

Inference is embarrassingly parallel: each rank evaluates a disjoint shard
and predictions are allgathered in input order.  Metrics that decompose
over confusion counts are reduced exactly (not averaged), so the
distributed result equals the serial one bit-for-bit — asserted in tests.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ml.metrics import confusion_matrix
from repro.mpi.comm import Communicator, ReduceOp


def shard_bounds(n: int, rank: int, world: int) -> tuple[int, int]:
    """Contiguous near-equal shard [lo, hi) of n items for this rank."""
    if n < 0 or world < 1 or not (0 <= rank < world):
        raise ValueError("invalid shard parameters")
    base, extra = divmod(n, world)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def distributed_predict(
    comm: Communicator,
    predict_fn: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    batch_size: int = 64,
) -> np.ndarray:
    """Evaluate ``predict_fn`` over ``X`` sharded across ranks.

    Every rank returns the *full* prediction array, assembled in input
    order from the allgathered shards.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    lo, hi = shard_bounds(len(X), comm.rank, comm.size)
    local_parts = [
        predict_fn(X[start:min(start + batch_size, hi)])
        for start in range(lo, hi, batch_size)
    ]
    local = (np.concatenate(local_parts) if local_parts
             else np.empty((0,), dtype=np.int64))
    gathered = comm.allgather((lo, local))
    gathered.sort(key=lambda item: item[0])
    return np.concatenate([part for _, part in gathered])


def distributed_evaluate(
    comm: Communicator,
    predict_fn: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    batch_size: int = 64,
) -> dict[str, float | np.ndarray]:
    """Sharded evaluation with exactly-reduced confusion counts.

    Returns accuracy plus the global confusion matrix; identical on every
    rank and to a serial evaluation.
    """
    lo, hi = shard_bounds(len(X), comm.rank, comm.size)
    local_pred_parts = [
        predict_fn(X[start:min(start + batch_size, hi)])
        for start in range(lo, hi, batch_size)
    ]
    local_pred = (np.concatenate(local_pred_parts) if local_pred_parts
                  else np.empty((0,), dtype=np.int64))
    local_cm = confusion_matrix(local_pred, y[lo:hi], n_classes) \
        if hi > lo else np.zeros((n_classes, n_classes), dtype=np.int64)
    global_cm = comm.allreduce(local_cm.astype(np.float64),
                               op=ReduceOp.SUM).astype(np.int64)
    total = int(global_cm.sum())
    correct = int(np.trace(global_cm))
    return {
        "accuracy": correct / total if total else 0.0,
        "confusion_matrix": global_cm,
        "n_samples": total,
    }


def predict_in_batches(
    predict_fn: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    batches: list[list[int]],
) -> np.ndarray:
    """Evaluate ``predict_fn`` over ``X`` in explicit micro-batches.

    ``batches`` is the batch plan an online micro-batcher formed: each entry
    lists the row indices served together (every index exactly once).  The
    result is assembled back into input order, so dynamic batching is purely
    a latency/throughput decision — predictions equal the serial
    ``predict_fn(X)`` bit-for-bit, which the serving tests assert.
    """
    seen: set[int] = set()
    for batch in batches:
        if not batch:
            raise ValueError("empty micro-batch in plan")
        for idx in batch:
            if not (0 <= idx < len(X)):
                raise ValueError(f"batch index {idx} out of range")
            if idx in seen:
                raise ValueError(f"batch index {idx} served twice")
            seen.add(idx)
    if len(seen) != len(X):
        raise ValueError("batch plan does not cover every input row")
    out: Optional[np.ndarray] = None
    for batch in batches:
        idx = np.asarray(batch, dtype=np.intp)
        pred = np.asarray(predict_fn(X[idx]))
        if out is None:
            out = np.empty((len(X),) + pred.shape[1:], dtype=pred.dtype)
        out[idx] = pred
    assert out is not None
    return out


def inference_scaleout_time(
    n_samples: int,
    per_sample_s: float,
    n_ranks: int,
    gather_bytes_per_sample: float = 8.0,
    alpha: float = 0.9e-6,
    beta: float = 4.0e-11,
) -> float:
    """Analytic scale-out model: compute shrinks 1/p, allgather grows.

    The ESB story in one formula — inference keeps scaling because the
    gather term stays tiny next to even cheap per-sample compute.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    shard = -(-n_samples // n_ranks)
    compute = shard * per_sample_s
    gather = (n_ranks - 1) * (alpha + n_samples / n_ranks
                              * gather_bytes_per_sample * beta)
    return compute + gather
