"""Analytic performance model for the Fig. 3 scaling study (E3).

The paper reports that Horovod distributed training of a RESNET-50-class
CNN on BigEarthNet "indicates a significant speed-up of training time
without loosing accuracy", initially on 96 GPUs and — after tuning per
Sedona et al. [20] — with "even a better speed-up ... using 128
interconnected GPUs".

This model composes what the rest of the library provides:

* per-step compute time from GPU specs (tensor-core throughput, achievable
  efficiency),
* allreduce time from the α-β collective models of the booster fabric,
* optional gradient compression (halves wire bytes) and compute/comm
  overlap — the [20]-style tuning that lifts the 128-GPU point.

It yields per-GPU-count epoch times, speedups and parallel efficiencies —
the series Fig. 3 plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.hardware import GpuSpec, NodeSpec, NVIDIA_A100, NVIDIA_V100
from repro.simnet.costs import CollectiveCosts, CommCostModel
from repro.simnet.link import LinkKind
from repro.ml.models.resnet import ResNetShape, resnet50_config


@dataclass(frozen=True)
class TrainingRecipe:
    """Tunables of a distributed training run."""

    batch_per_gpu: int = 128
    #: Sustained fraction of tensor-core peak a real ResNet-50 step achieves
    #: (mixed-precision ResNet-50 reaches ~5–10% of A100 tensor peak).
    compute_efficiency: float = 0.08
    #: Bytes per gradient element on the wire (4 = fp32, 2 = fp16 compressed).
    grad_wire_bytes: int = 4
    #: Fraction of allreduce hidden behind backprop (Horovod overlaps
    #: per-layer reductions with remaining backward compute).
    comm_overlap: float = 0.0
    #: Backward pass costs ~2x forward.
    backward_factor: float = 2.0
    allreduce_algorithm: str = "ring"

    def tuned(self) -> "TrainingRecipe":
        """The [20]-style tuned recipe: fp16 wire + aggressive overlap."""
        return TrainingRecipe(
            batch_per_gpu=self.batch_per_gpu,
            compute_efficiency=self.compute_efficiency,
            grad_wire_bytes=2,
            comm_overlap=0.8,
            backward_factor=self.backward_factor,
            allreduce_algorithm="auto",
        )


@dataclass(frozen=True)
class ScalingPoint:
    """One row of the Fig. 3 scaling table."""

    n_gpus: int
    step_time_s: float
    epoch_time_s: float
    speedup: float
    efficiency: float
    comm_fraction: float


@dataclass
class DistributedTrainingPerfModel:
    """Epoch-time model for data-parallel training on an MSA booster."""

    model_shape: ResNetShape = field(default_factory=resnet50_config)
    gpu: GpuSpec = NVIDIA_A100
    fabric: CommCostModel = field(
        default_factory=lambda: CommCostModel.of_kind(LinkKind.INFINIBAND_HDR))
    dataset_size: int = 269_695          # BigEarthNet train split of [18]
    recipe: TrainingRecipe = field(default_factory=TrainingRecipe)
    #: Optional ESB Global Collective Engine: when set, gradient allreduces
    #: are offloaded to the in-network FPGA tree instead of the software
    #: ring (the booster's headline fabric feature).
    gce: Optional["GlobalCollectiveEngine"] = None

    # -- components ----------------------------------------------------------
    def compute_time_per_step(self) -> float:
        """Forward+backward time for one local mini-batch on one GPU."""
        flops = (
            self.model_shape.flops_per_sample
            * self.recipe.batch_per_gpu
            * (1.0 + self.recipe.backward_factor)
        )
        sustained = self.gpu.tensor_flops * self.recipe.compute_efficiency
        return flops / sustained

    def grad_bytes(self) -> float:
        return self.model_shape.n_parameters * self.recipe.grad_wire_bytes

    def allreduce_time(self, n_gpus: int) -> float:
        if n_gpus <= 1:
            return 0.0
        if self.gce is not None:
            return self.gce.allreduce_time(n_gpus, self.grad_bytes())
        costs = CollectiveCosts(self.fabric)
        return costs.allreduce(
            n_gpus, self.grad_bytes(), algorithm=self.recipe.allreduce_algorithm
        )

    def step_time(self, n_gpus: int) -> float:
        compute = self.compute_time_per_step()
        comm = self.allreduce_time(n_gpus)
        exposed = comm * (1.0 - self.recipe.comm_overlap)
        hidden = comm * self.recipe.comm_overlap
        backward = compute * self.recipe.backward_factor / (
            1.0 + self.recipe.backward_factor)
        # Hidden communication can only hide under the backward pass.
        return compute + exposed + max(0.0, hidden - backward)

    def steps_per_epoch(self, n_gpus: int) -> int:
        global_batch = self.recipe.batch_per_gpu * n_gpus
        return max(1, math.ceil(self.dataset_size / global_batch))

    def epoch_time(self, n_gpus: int) -> float:
        return self.steps_per_epoch(n_gpus) * self.step_time(n_gpus)

    # -- the Fig. 3 series ------------------------------------------------------
    def scaling_curve(self, gpu_counts: Sequence[int]) -> list[ScalingPoint]:
        if not gpu_counts:
            raise ValueError("need at least one GPU count")
        base = self.epoch_time(1)
        points = []
        for p in gpu_counts:
            if p < 1:
                raise ValueError("GPU counts must be >= 1")
            step = self.step_time(p)
            epoch = self.epoch_time(p)
            comm = self.allreduce_time(p) * (1.0 - self.recipe.comm_overlap)
            points.append(ScalingPoint(
                n_gpus=p,
                step_time_s=step,
                epoch_time_s=epoch,
                speedup=base / epoch,
                efficiency=base / epoch / p,
                comm_fraction=min(1.0, comm / step) if step > 0 else 0.0,
            ))
        return points

    def with_recipe(self, recipe: TrainingRecipe) -> "DistributedTrainingPerfModel":
        return DistributedTrainingPerfModel(
            model_shape=self.model_shape,
            gpu=self.gpu,
            fabric=self.fabric,
            dataset_size=self.dataset_size,
            recipe=recipe,
            gce=self.gce,
        )

    def with_gce(self, gce) -> "DistributedTrainingPerfModel":
        """Clone with gradient allreduces offloaded to the GCE."""
        return DistributedTrainingPerfModel(
            model_shape=self.model_shape,
            gpu=self.gpu,
            fabric=self.fabric,
            dataset_size=self.dataset_size,
            recipe=self.recipe,
            gce=gce,
        )


# ---------------------------------------------------------------------------
# online inference (the serving subsystem's service-time source)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InferencePerfModel:
    """Batch service time of online inference on a concrete node spec.

    The CM-train / ESB-infer pattern (Sec. II-A) needs a service-time model
    grounded in the hardware catalogue rather than a constant: a micro-batch
    of ``b`` samples costs a fixed host-side overhead (launch, packing, PCIe
    staging) plus ``b`` forward passes at the sustained throughput of the
    node's best device.  GPU nodes run the tensor-core path at a *small-
    batch* efficiency — online batches are far below the saturating sizes
    training enjoys — while CPU-only nodes (CM) fall back to the vector-FMA
    peak.  The serving batcher and autoscaler consume this model directly.
    """

    model_shape: ResNetShape = field(default_factory=resnet50_config)
    #: Sustained fraction of tensor-core peak at online batch sizes.
    gpu_efficiency: float = 0.06
    #: Sustained fraction of CPU vector peak for the fallback path.
    cpu_efficiency: float = 0.30
    #: Per-batch fixed cost: kernel launch, batch assembly, host<->device.
    host_overhead_s: float = 3.0e-3

    def __post_init__(self) -> None:
        if not (0.0 < self.gpu_efficiency <= 1.0):
            raise ValueError("gpu_efficiency must be in (0, 1]")
        if not (0.0 < self.cpu_efficiency <= 1.0):
            raise ValueError("cpu_efficiency must be in (0, 1]")
        if self.host_overhead_s < 0:
            raise ValueError("host_overhead_s must be non-negative")

    def sustained_flops(self, node_spec: NodeSpec) -> float:
        """Sustained inference FLOP/s one node of ``node_spec`` delivers."""
        if node_spec.gpu_count > 0:
            peak = node_spec.gpu_tensor_flops or node_spec.gpu_peak_flops
            return peak * self.gpu_efficiency
        return node_spec.cpu_peak_flops * self.cpu_efficiency

    def sample_time(self, node_spec: NodeSpec) -> float:
        """Marginal per-sample forward time on one node (no overhead)."""
        return self.model_shape.flops_per_sample / self.sustained_flops(node_spec)

    def batch_time(self, batch_samples: int, node_spec: NodeSpec,
                   n_nodes: int = 1) -> float:
        """Service time of one micro-batch of ``batch_samples`` samples."""
        if batch_samples < 1:
            raise ValueError("a batch needs at least one sample")
        if n_nodes < 1:
            raise ValueError("need at least one node")
        compute = batch_samples * self.sample_time(node_spec) / n_nodes
        return self.host_overhead_s + compute

    def throughput(self, batch_samples: int, node_spec: NodeSpec,
                   n_nodes: int = 1) -> float:
        """Samples/s one replica sustains at the given micro-batch size."""
        return batch_samples / self.batch_time(batch_samples, node_spec,
                                               n_nodes)

    def as_kernel_cost_model(self, gpu: GpuSpec = NVIDIA_A100) -> "KernelCostModel":
        """Per-kernel roofline consistent with this node-level model.

        The lazy tensor engine's ``sim-gpu`` device charges device time
        per *fused kernel* through this — see
        :meth:`KernelCostModel.from_inference_model`.
        """
        return KernelCostModel.from_inference_model(self, gpu=gpu)

    def as_phase(self, batch_samples: int, name: str = "serve-replica"):
        """The equivalent :class:`~repro.core.jobs.JobPhase` for matchmaking.

        Lets the serving replica pool reuse the batch scheduler's
        placement scoring (:func:`repro.core.scheduler.rank_placements`)
        with a work profile consistent with this service-time model.
        """
        from repro.core.jobs import JobPhase, WorkloadClass

        return JobPhase(
            name=name,
            workload=WorkloadClass.ML_INFERENCE,
            work_flops=self.model_shape.flops_per_sample * batch_samples,
            nodes=1,
            parallel_fraction=0.99,
            uses_gpu=True,
            uses_tensor_cores=True,
            memory_GB_per_node=8.0,
            efficiency=self.gpu_efficiency,
        )


# ---------------------------------------------------------------------------
# per-kernel device cost (the lazy tensor engine's sim-gpu clock source)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelCostModel:
    """Roofline time for one fused GPU kernel.

    Where :class:`InferencePerfModel` prices a whole forward pass,
    this prices a single kernel launch: a fixed dispatch overhead plus
    the larger of the compute time at sustained FLOP/s and the HBM time
    at sustained bandwidth.  Charging the overhead once per *fused*
    kernel instead of once per primitive op is exactly the effect the
    engine's fuser exists to exhibit — small-tensor workloads on a
    V100/A100 are launch- and bandwidth-bound, not FLOP-bound.
    """

    gpu: GpuSpec = NVIDIA_A100
    #: Sustained fraction of tensor-core peak a generic fused kernel hits.
    efficiency: float = 0.06
    #: Achievable fraction of peak HBM bandwidth (STREAM-like).
    hbm_efficiency: float = 0.80
    #: Fixed per-launch cost: driver dispatch + kernel setup.
    launch_overhead_s: float = 5.0e-6

    def __post_init__(self) -> None:
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        if not (0.0 < self.hbm_efficiency <= 1.0):
            raise ValueError("hbm_efficiency must be in (0, 1]")
        if self.launch_overhead_s < 0:
            raise ValueError("launch_overhead_s must be non-negative")

    @classmethod
    def from_inference_model(cls, model: InferencePerfModel,
                             gpu: GpuSpec = NVIDIA_A100,
                             launch_overhead_s: float = 5.0e-6,
                             hbm_efficiency: float = 0.80) -> "KernelCostModel":
        """Derive per-kernel constants from the node-level serving model
        so both layers price the same silicon consistently."""
        return cls(
            gpu=gpu,
            efficiency=model.gpu_efficiency,
            hbm_efficiency=hbm_efficiency,
            launch_overhead_s=launch_overhead_s,
        )

    @property
    def sustained_flops(self) -> float:
        return self.gpu.tensor_flops * self.efficiency

    @property
    def sustained_bandwidth(self) -> float:
        return self.gpu.memory_bw_GBps * 1e9 * self.hbm_efficiency

    def kernel_time(self, flops: float, bytes_moved: float) -> float:
        """Launch + max(compute, memory) seconds for one fused kernel."""
        compute = flops / self.sustained_flops
        memory = bytes_moved / self.sustained_bandwidth
        return self.launch_overhead_s + max(compute, memory)
