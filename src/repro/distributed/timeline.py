"""Horovod-style timeline: per-operation traces of distributed training.

Horovod ships a timeline tool (``HOROVOD_TIMELINE``) that records each
collective's lifetime for Chrome's ``chrome://tracing`` viewer — the
instrument behind tuning work like the paper's [20].  This module records
the same kind of events against the simulated clock and exports the Chrome
trace-event JSON structure, so a training run's comms/compute interleaving
can be inspected (or asserted on, as the tests do).

Deprecation note: this module predates the unified telemetry layer
(:mod:`repro.telemetry`) and is kept as a thin compatibility shim — the
per-event Chrome serialisation now delegates to
:func:`repro.telemetry.export.chrome_complete_event`, the single
implementation of the trace-event format.  New instrumentation should
record spans on the process-wide :func:`repro.telemetry.get_tracer`
instead of building per-rank ``Timeline`` objects; ``repro trace``
exports every subsystem into one trace file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mpi.comm import Communicator
from repro.telemetry.export import chrome_complete_event

__all__ = ["Timeline", "TimelineEvent", "merge_timelines",
           "chrome_complete_event"]


@dataclass(frozen=True)
class TimelineEvent:
    name: str               # e.g. "allreduce", "forward", "optimizer-step"
    category: str           # "comm" | "compute" | "io"
    rank: int
    start_s: float          # simulated time
    duration_s: float
    nbytes: int = 0

    def to_chrome(self) -> dict[str, Any]:
        """One Chrome trace-event ('X' complete event, µs granularity).

        Historical shape preserved: pid 0, tid = rank, ``nbytes`` in args.
        """
        return chrome_complete_event(
            self.name, self.category, pid=0, tid=self.rank,
            start_s=self.start_s, duration_s=self.duration_s,
            args={"nbytes": self.nbytes})


class Timeline:
    """Event recorder bound to one rank's communicator."""

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm
        self.events: list[TimelineEvent] = []

    # -- recording -----------------------------------------------------------
    def record(self, name: str, category: str, fn, *args,
               nbytes: int = 0, **kwargs):
        """Run ``fn`` and record its simulated-clock span."""
        start = self.comm.sim_time
        result = fn(*args, **kwargs)
        self.events.append(TimelineEvent(
            name=name, category=category, rank=self.comm.rank,
            start_s=start, duration_s=self.comm.sim_time - start,
            nbytes=nbytes))
        return result

    def mark_compute(self, name: str, seconds: float) -> None:
        """Charge modelled compute and record it."""
        start = self.comm.sim_time
        self.comm.compute(seconds)
        self.events.append(TimelineEvent(
            name=name, category="compute", rank=self.comm.rank,
            start_s=start, duration_s=seconds))

    # -- analysis --------------------------------------------------------------
    def total(self, category: str) -> float:
        return sum(e.duration_s for e in self.events
                   if e.category == category)

    def comm_fraction(self) -> float:
        comm = self.total("comm")
        busy = comm + self.total("compute") + self.total("io")
        return comm / busy if busy > 0 else 0.0

    def by_name(self, name: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.name == name]

    # -- export ---------------------------------------------------------------------
    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": [e.to_chrome() for e in self.events],
                "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace())


def merge_timelines(timelines: list[Timeline]) -> dict[str, Any]:
    """Combine per-rank timelines into one Chrome trace."""
    events: list[dict[str, Any]] = []
    for timeline in timelines:
        events.extend(e.to_chrome() for e in timeline.events)
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
