"""NumPy deep-learning framework — the TensorFlow/Keras/pyTorch stand-in.

Reverse-mode autodiff (:mod:`repro.ml.tensor`), layers
(:mod:`repro.ml.layers`, :mod:`repro.ml.rnn`), functional ops
(:mod:`repro.ml.functional`), losses, optimisers, metrics, the data
pipeline with Horovod-style distributed sharding (:mod:`repro.ml.data`),
and the case-study model zoo (:mod:`repro.ml.models`).
"""

from repro.ml.tensor import Tensor, tensor, zeros, ones
from repro.ml.layers import (
    Parameter,
    Module,
    Dense,
    Conv2D,
    Conv1D,
    BatchNorm,
    Dropout,
    ReLU,
    Tanh,
    Sigmoid,
    MaxPool2D,
    GlobalAvgPool2D,
    Flatten,
    Sequential,
    he_init,
    xavier_init,
)
from repro.ml.rnn import GRU, GRUCell
from repro.ml.optim import (SGD, Adam, LinearWarmupSchedule,
    CosineDecaySchedule, Optimizer, clip_grad_norm)
from repro.ml.losses import (
    cross_entropy,
    binary_cross_entropy_with_logits,
    mse,
    mae,
    l2_regularisation,
)
from repro.ml.data import (
    ArrayDataset,
    DataLoader,
    DistributedSampler,
    DistributedDataLoader,
    train_test_split,
)
from repro.ml import functional
from repro.ml import metrics
from repro.ml import models

__all__ = [
    "Tensor", "tensor", "zeros", "ones",
    "Parameter", "Module", "Dense", "Conv2D", "Conv1D", "BatchNorm",
    "Dropout", "ReLU", "Tanh", "Sigmoid", "MaxPool2D", "GlobalAvgPool2D",
    "Flatten", "Sequential", "he_init", "xavier_init",
    "GRU", "GRUCell",
    "SGD", "Adam", "LinearWarmupSchedule", "CosineDecaySchedule",
    "Optimizer", "clip_grad_norm",
    "cross_entropy", "binary_cross_entropy_with_logits", "mse", "mae",
    "l2_regularisation",
    "ArrayDataset", "DataLoader", "DistributedSampler",
    "DistributedDataLoader", "train_test_split",
    "functional", "metrics", "models",
]
