"""Data pipeline: datasets, loaders and the distributed sampler.

The distributed sampler implements Horovod/DDP-style sharding: rank ``r``
of ``p`` sees every ``p``-th example of a per-epoch permutation that all
ranks derive from the same seed — no two ranks share samples, and the union
covers the dataset (padding the tail so every rank sees the same number of
batches, as real data-parallel training requires for collective lockstep).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

import numpy as np


class ArrayDataset:
    """A dataset of parallel arrays (features, labels, masks, ...)."""

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("need at least one array")
        n = len(arrays[0])
        for a in arrays:
            if len(a) != n:
                raise ValueError("all arrays must share the first dimension")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, idx) -> tuple[np.ndarray, ...]:
        return tuple(a[idx] for a in self.arrays)


class DataLoader:
    """Mini-batch iterator with deterministic shuffling."""

    def __init__(self, dataset: ArrayDataset, batch_size: int,
                 shuffle: bool = True, seed: int = 0,
                 drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self._epoch = epoch

    def _indices(self) -> np.ndarray:
        n = len(self.dataset)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            return rng.permutation(n)
        return np.arange(n)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return math.ceil(n / self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        idx = self._indices()
        n_batches = len(self)
        for b in range(n_batches):
            batch = idx[b * self.batch_size:(b + 1) * self.batch_size]
            yield self.dataset[batch]


class DistributedSampler:
    """Shard a dataset across data-parallel ranks, Horovod-style."""

    def __init__(self, n_samples: int, rank: int, world_size: int,
                 shuffle: bool = True, seed: int = 0) -> None:
        if not (0 <= rank < world_size):
            raise ValueError("rank must be in [0, world_size)")
        if n_samples < 1:
            raise ValueError("need at least one sample")
        self.n_samples = n_samples
        self.rank = rank
        self.world_size = world_size
        self.shuffle = shuffle
        self.seed = seed
        self._epoch = 0
        #: Every rank sees the same number of samples (tail padded by wrap).
        self.samples_per_rank = math.ceil(n_samples / world_size)

    def set_epoch(self, epoch: int) -> None:
        self._epoch = epoch

    def indices(self) -> np.ndarray:
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            order = rng.permutation(self.n_samples)
        else:
            order = np.arange(self.n_samples)
        total = self.samples_per_rank * self.world_size
        if total > self.n_samples:
            # Cyclic wrap-padding; covers world sizes beyond the dataset too.
            order = np.resize(order, total)
        return order[self.rank::self.world_size]


class DistributedDataLoader:
    """Mini-batches over a rank's shard; all ranks agree on batch count."""

    def __init__(self, dataset: ArrayDataset, batch_size: int,
                 rank: int, world_size: int,
                 shuffle: bool = True, seed: int = 0) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.sampler = DistributedSampler(
            len(dataset), rank, world_size, shuffle=shuffle, seed=seed
        )

    def set_epoch(self, epoch: int) -> None:
        self.sampler.set_epoch(epoch)

    def __len__(self) -> int:
        return math.ceil(self.sampler.samples_per_rank / self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        idx = self.sampler.indices()
        for b in range(len(self)):
            batch = idx[b * self.batch_size:(b + 1) * self.batch_size]
            yield self.dataset[batch]


def train_test_split(
    *arrays: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> tuple:
    """Deterministic shuffled split; returns (train..., test...) pairs."""
    if not (0.0 < test_fraction < 1.0):
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(arrays[0])
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    out = []
    for a in arrays:
        out.append(a[train_idx])
        out.append(a[test_idx])
    return tuple(out)
