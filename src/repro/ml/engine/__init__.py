"""``repro.ml.engine`` — the lazy tensor engine behind the ML substrate.

A tinygrad-style execution layer under :class:`repro.ml.tensor.Tensor`:

* :mod:`~repro.ml.engine.ops` — the primitive-op set (unary/binary
  elementwise, reduce, matmul, movement),
* :mod:`~repro.ml.engine.graph` — :class:`LazyExpr`, the recorded graph,
* :mod:`~repro.ml.engine.fuser` — elementwise→elementwise and
  elementwise→reduce chain fusion into single kernels,
* :mod:`~repro.ml.engine.device` / :mod:`~repro.ml.engine.cpu` /
  :mod:`~repro.ml.engine.simgpu` — pluggable backends (``cpu``,
  ``sim-gpu``, ``sim-gpu:v100``),
* :mod:`~repro.ml.engine.stats` — alloc/kernel counters for the bench.

The mode switch
---------------

``ENGINE=eager`` (default) keeps the original op-by-op NumPy path;
``ENGINE=lazy`` records ops into a lazy graph and executes fused kernels
on the current device when bytes are demanded.  The environment variable
is read once at import; :func:`set_engine` / the :func:`engine_mode`
context manager switch at runtime.  Both paths are bit-identical by
construction — pinned in ``tests/test_perf_regression_pins.py``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.ml.engine.device import (current_device_name, device_names,
                                    get_device, register_device, set_device,
                                    use_device)
from repro.ml.engine.graph import LazyExpr
from repro.ml.engine.fuser import Kernel, schedule
from repro.ml.engine.stats import STATS, EngineStats, collect

MODES = ("eager", "lazy")


class _EngineState:
    """One mutable flag object; the Tensor hot path reads ``.lazy``."""

    __slots__ = ("lazy",)

    def __init__(self, lazy: bool) -> None:
        self.lazy = lazy


def _mode_from_env() -> str:
    raw = os.environ.get("ENGINE") or os.environ.get("REPRO_ENGINE") or "eager"
    raw = raw.strip().lower()
    if raw not in MODES:
        raise ValueError(
            f"ENGINE must be one of {MODES}, got {raw!r}")
    return raw


state = _EngineState(lazy=_mode_from_env() == "lazy")


def engine_mode() -> str:
    """The active execution mode: ``"eager"`` or ``"lazy"``."""
    return "lazy" if state.lazy else "eager"


def set_engine(mode: str) -> str:
    """Switch the execution mode; returns the previous mode."""
    if mode not in MODES:
        raise ValueError(f"engine mode must be one of {MODES}, got {mode!r}")
    old = engine_mode()
    state.lazy = mode == "lazy"
    return old


@contextmanager
def engine(mode: str):
    """Scoped engine switch: ``with engine("lazy"): ...``"""
    old = set_engine(mode)
    try:
        yield
    finally:
        set_engine(old)


__all__ = [
    "Kernel",
    "LazyExpr",
    "EngineStats",
    "MODES",
    "STATS",
    "collect",
    "current_device_name",
    "device_names",
    "engine",
    "engine_mode",
    "get_device",
    "register_device",
    "schedule",
    "set_device",
    "set_engine",
    "use_device",
]
