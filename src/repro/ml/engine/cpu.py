"""Fused-kernel execution on NumPy and the ``cpu`` device.

:func:`execute_kernel` is the one executor both backends share: it walks
a kernel's nodes in topo order, replaying the exact eager ufunc sequence,
and eliminates intermediate allocations by retargeting a dying temp as
the ``out=`` buffer of the next elementwise op.  Reuse is only attempted
on buffers this kernel allocated itself (never on views of leaves), only
at a temp's last use, and only on exact shape/dtype matches — the cases
where ``ufunc(..., out=buf)`` is defined to produce bit-identical values.

:class:`CpuDevice` wraps the executor with a deterministic nominal cost
model (so CPU runs produce telemetry spans on a simulated clock too) —
the simulated-GPU device in :mod:`repro.ml.engine.simgpu` swaps in the
V100/A100 roofline from :mod:`repro.distributed.perfmodel` instead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import telemetry
from repro.ml.engine.fuser import Kernel, schedule
from repro.ml.engine.graph import LazyExpr
from repro.ml.engine.ops import ELEMENTWISE_KINDS, OPS
from repro.ml.engine.stats import STATS


def execute_kernel(kernel: Kernel) -> np.ndarray:
    """Run one fused kernel; caches and returns the output ndarray."""
    in_group = {id(n): n for n in kernel.nodes}
    # Remaining intra-kernel uses of each interior temp (for out= reuse).
    remaining: dict[int, int] = {}
    for node in kernel.nodes:
        for src in node.inputs:
            if id(src) in in_group:
                remaining[id(src)] = remaining.get(id(src), 0) + 1

    vals: dict[int, np.ndarray] = {}     # interior temps
    owned: dict[int, bool] = {}          # temp buffers this kernel allocated
    stats = STATS if STATS.enabled else None
    out: Optional[np.ndarray] = None

    for node in kernel.nodes:
        spec = OPS[node.op]
        args = []
        for src in node.inputs:
            sid = id(src)
            args.append(vals[sid] if sid in vals else src.result)

        out_buf = None
        if node.kind in ELEMENTWISE_KINDS:
            for src in node.inputs:
                sid = id(src)
                if (sid in vals and owned.get(sid)
                        and remaining[sid] == 1
                        and vals[sid].shape == node.shape
                        and vals[sid].dtype == node.dtype):
                    out_buf = vals[sid]
                    break

        value = spec.execute(args, node.kwargs, out_buf)
        if not isinstance(value, np.ndarray):
            # Ufuncs/reductions over 0-d operands hand back numpy
            # scalars; keep every interior value an ndarray so it can be
            # cached as a result or retargeted as an out= buffer.
            value = np.asarray(value)
        if stats is not None and spec.allocates and out_buf is None:
            stats.kernel_allocs += 1
            stats.kernel_alloc_bytes += value.nbytes

        for src in node.inputs:
            sid = id(src)
            if sid in remaining:
                remaining[sid] -= 1

        vals[id(node)] = value
        # Reductions/matmuls allocate their own output; movement yields
        # views of inputs we may not own.
        owned[id(node)] = spec.allocates and node.kind in ELEMENTWISE_KINDS
        out = value

    kernel.output.result = out
    return out


class Device:
    """A place fused kernels run.

    Concrete devices define :meth:`kernel_time_s`; :meth:`realize`
    schedules the pending subgraph, executes each kernel through the
    shared NumPy executor, advances the device's deterministic clock and
    emits one telemetry span per fused kernel.
    """

    name = "abstract"

    def __init__(self) -> None:
        # Picoseconds on an integer clock: accumulation order cannot
        # perturb the total, so device time is deterministic even under
        # SPMD rank threads.
        self._time_ps = 0
        self.kernels_run = 0
        self.fused_ops_run = 0

    # -- clock ---------------------------------------------------------------
    @property
    def sim_time_s(self) -> float:
        return self._time_ps / 1e12

    def reset_clock(self) -> None:
        self._time_ps = 0
        self.kernels_run = 0
        self.fused_ops_run = 0

    # -- cost ------------------------------------------------------------------
    def kernel_time_s(self, flops: float, bytes_moved: int, n_ops: int) -> float:
        raise NotImplementedError

    def unfused_time_s(self, kernel: Kernel) -> float:
        """What the same nodes would cost launched one kernel per op."""
        total = 0.0
        for node in kernel.nodes:
            in_bytes = sum(src.nbytes for src in node.inputs)
            total += self.kernel_time_s(Kernel.node_flops(node),
                                        in_bytes + node.nbytes, 1)
        return total

    # -- execution ---------------------------------------------------------------
    def realize(self, root: LazyExpr) -> np.ndarray:
        stats = STATS if STATS.enabled else None
        if stats is not None:
            stats.realizes += 1
            if root.fused_away:
                stats.recomputes += 1
        kernels = schedule(root)
        tracer = telemetry.get_tracer()
        for kernel in kernels:
            start = self.sim_time_s
            execute_kernel(kernel)
            cost = self.kernel_time_s(kernel.flops, kernel.bytes_moved,
                                      kernel.n_ops)
            self._time_ps += int(round(cost * 1e12))
            self.kernels_run += 1
            self.fused_ops_run += kernel.n_ops
            if stats is not None:
                stats.kernels += 1
                stats.fused_ops += kernel.n_ops
            if tracer.enabled:
                tracer.record(
                    f"kernel:{kernel.name}", "compute", start,
                    self.sim_time_s - start, track="engine", lane=self.name,
                    ops=kernel.n_ops, flops=kernel.flops,
                    bytes=kernel.bytes_moved)
        return root.result


class CpuDevice(Device):
    """NumPy execution with a nominal deterministic cost model.

    The constants are not calibrated to any host — they only need to be
    stable so CPU telemetry spans and bench sim-times are reproducible.
    """

    name = "cpu"

    def __init__(self, flops_per_s: float = 5.0e10,
                 bytes_per_s: float = 2.0e10,
                 dispatch_s: float = 1.0e-7) -> None:
        super().__init__()
        self.flops_per_s = flops_per_s
        self.bytes_per_s = bytes_per_s
        self.dispatch_s = dispatch_s

    def kernel_time_s(self, flops: float, bytes_moved: int, n_ops: int) -> float:
        return (self.dispatch_s
                + flops / self.flops_per_s
                + bytes_moved / self.bytes_per_s)
