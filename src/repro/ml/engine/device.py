"""Device registry: pluggable backends for the lazy engine.

Backends register a *factory* under a name; instances are created on
first use so importing the engine never drags in backend-specific
dependency chains (the simulated-GPU backend pulls the hardware
catalogue and perf models of :mod:`repro.distributed.perfmodel`, which
itself imports the ML substrate — lazy construction is what keeps that
cycle open).

Built-ins:

* ``cpu`` — NumPy with a nominal deterministic cost model (the default),
* ``sim-gpu`` — NumPy execution, charged per fused kernel on the A100
  roofline of the booster nodes,
* ``sim-gpu:v100`` — same, on the V100 (DEEP-EST ESB generation).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Optional

from repro.ml.engine.cpu import CpuDevice, Device

_FACTORIES: dict[str, Callable[[], Device]] = {}
_INSTANCES: dict[str, Device] = {}
_lock = threading.Lock()
_current = "cpu"


def register_device(name: str, factory: Callable[[], Device]) -> None:
    """Register a backend factory (overwrites are allowed for tests)."""
    with _lock:
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def _make_simgpu(gpu_name: str) -> Device:
    from repro.ml.engine.simgpu import SimGpuDevice
    return SimGpuDevice(gpu=gpu_name)


register_device("cpu", CpuDevice)
register_device("sim-gpu", lambda: _make_simgpu("A100"))
register_device("sim-gpu:v100", lambda: _make_simgpu("V100"))


def device_names() -> list[str]:
    return sorted(_FACTORIES)


def get_device(name: Optional[str] = None) -> Device:
    """The device instance for ``name`` (the current device when None)."""
    name = name or _current
    inst = _INSTANCES.get(name)
    if inst is None:
        with _lock:
            inst = _INSTANCES.get(name)
            if inst is None:
                if name not in _FACTORIES:
                    raise ValueError(
                        f"unknown device {name!r} (have {device_names()})")
                inst = _FACTORIES[name]()
                _INSTANCES[name] = inst
    return inst


def set_device(name: str) -> str:
    """Switch the device lazy graphs realize on; returns the old name."""
    global _current
    get_device(name)                     # validate + instantiate
    old = _current
    _current = name
    return old


def current_device_name() -> str:
    return _current


@contextmanager
def use_device(name: str):
    """Scoped device switch: realize everything inside on ``name``."""
    old = set_device(name)
    try:
        yield get_device(name)
    finally:
        set_device(old)
