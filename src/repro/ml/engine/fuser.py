"""Kernel scheduling: collapse lazy-graph chains into fused kernels.

The fusion rules are deliberately small and mirror what matters on the
paper's accelerators (per-kernel launch overhead and memory traffic, not
FLOPs, dominate small-batch step time):

* an **elementwise** node fuses into its consumer when it has exactly one
  consumer inside the scheduled subgraph and that consumer is itself
  elementwise or a reduce — i.e. ``elementwise→…→elementwise`` chains and
  ``elementwise→reduce`` epilogues become one kernel;
* **matmul** and **movement** nodes are always kernel roots of their own
  (matmul keeps BLAS untouched; movement is a view).

Fusion changes *where* buffers are allocated, never *what* is computed:
each kernel replays the eager ufunc sequence in the same order, so fused
results are bit-identical to the eager path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ml.engine.graph import LazyExpr
from repro.ml.engine.ops import (ELEMENTWISE_KINDS, OPS, REDUCE)


@dataclass
class Kernel:
    """One schedulable unit: a topo-ordered group with a single output."""

    nodes: list[LazyExpr]            #: topo order; last entry is the output
    output: LazyExpr = field(init=False)

    def __post_init__(self) -> None:
        self.output = self.nodes[-1]

    @property
    def name(self) -> str:
        return "+".join(n.op for n in self.nodes)

    @property
    def n_ops(self) -> int:
        return len(self.nodes)

    @property
    def flops(self) -> float:
        return sum(self.node_flops(n) for n in self.nodes)

    @staticmethod
    def node_flops(node: LazyExpr) -> float:
        spec = OPS[node.op]
        return spec.flops(tuple(i.shape for i in node.inputs),
                          node.shape, node.kwargs)

    def external_inputs(self) -> list[LazyExpr]:
        """Inputs read from outside the kernel (realized ancestors)."""
        in_group = {id(n) for n in self.nodes}
        seen: set[int] = set()
        out: list[LazyExpr] = []
        for node in self.nodes:
            for src in node.inputs:
                if id(src) not in in_group and id(src) not in seen:
                    seen.add(id(src))
                    out.append(src)
        return out

    @property
    def bytes_moved(self) -> int:
        """Memory traffic the kernel causes: external reads + its write."""
        return sum(src.nbytes for src in self.external_inputs()) \
            + self.output.nbytes


def _pending_subgraph(root: LazyExpr) -> list[LazyExpr]:
    """Unrealized nodes reachable from ``root``, parents before children."""
    topo: list[LazyExpr] = []
    visited: set[int] = set()
    stack: list[tuple[LazyExpr, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for src in node.inputs:
            if src.result is None and id(src) not in visited:
                stack.append((src, False))
    return topo


def schedule(root: LazyExpr) -> list[Kernel]:
    """Plan the fused kernels that materialize ``root``.

    Returns kernels in execution order; running them in order realizes
    every kernel output (and therefore ``root``).
    """
    topo = _pending_subgraph(root)
    index = {id(n): i for i, n in enumerate(topo)}

    # Consumers of each pending node *within* the subgraph.
    consumers: dict[int, list[LazyExpr]] = {id(n): [] for n in topo}
    for node in topo:
        for src in node.inputs:
            if id(src) in consumers:
                consumers[id(src)].append(node)

    # Union nodes into groups, walking consumers-first so a chain joins
    # the group of its (already grouped) consumer.
    group_of: dict[int, int] = {}            # node id -> root node index
    for node in reversed(topo):
        nid = id(node)
        if nid not in group_of:
            group_of[nid] = index[nid]       # starts its own group
        if node.kind not in ELEMENTWISE_KINDS or node is root:
            continue
        uses = consumers[nid]
        if len(uses) != 1:
            continue
        consumer = uses[0]
        ckind = consumer.kind
        if ckind in ELEMENTWISE_KINDS or ckind == REDUCE:
            group_of[nid] = group_of[id(consumer)]

    groups: dict[int, list[LazyExpr]] = {}
    for node in topo:                        # topo order within each group
        groups.setdefault(group_of[id(node)], []).append(node)

    kernels = [Kernel(nodes=groups[gid]) for gid in sorted(groups)]
    for kernel in kernels:
        for node in kernel.nodes[:-1]:
            node.fused_away = True
    return kernels
