"""The lazy op graph: :class:`LazyExpr` nodes recorded behind ``Tensor``.

Under ``ENGINE=lazy`` every primitive Tensor op appends a node here
instead of calling NumPy.  Nothing executes until someone demands bytes
(``Tensor.data``, ``.item()``, ``backward()``, a functional boundary op
like conv2d) — at that point the fuser schedules the reachable subgraph
into fused kernels and the current device runs them.

Realization caches results only at kernel *outputs*: interior nodes of a
fused chain stay unmaterialized, which is where the allocation savings
come from.  If autograd later demands an interior value (a backward
closure reading an activation), the node re-schedules itself from its
nearest materialized ancestors — a bounded recompute, counted in
:data:`~repro.ml.engine.stats` as ``recomputes``.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.ml.engine.ops import LEAF, OPS


class LazyExpr:
    """One node of the lazy graph.

    ``inputs`` are other :class:`LazyExpr` instances (leaves wrap realized
    ndarrays).  ``result`` is the cached ndarray once this node has been
    materialized; leaves are born realized.
    """

    __slots__ = ("op", "kind", "inputs", "kwargs", "shape", "dtype",
                 "result", "fused_away")

    def __init__(self, op: str, kind: str,
                 inputs: tuple["LazyExpr", ...],
                 kwargs: dict[str, Any],
                 shape: tuple[int, ...], dtype: np.dtype,
                 result: Optional[np.ndarray] = None) -> None:
        self.op = op
        self.kind = kind
        self.inputs = inputs
        self.kwargs = kwargs
        self.shape = shape
        self.dtype = dtype
        self.result = result
        #: Set once a kernel executed *through* this node without caching
        #: it; a later realize() of this node is a recompute.
        self.fused_away = False

    # -- constructors --------------------------------------------------------
    @classmethod
    def leaf(cls, arr: np.ndarray) -> "LazyExpr":
        return cls("leaf", LEAF, (), {}, arr.shape, arr.dtype, result=arr)

    @classmethod
    def make(cls, op: str, inputs: tuple["LazyExpr", ...],
             **kwargs: Any) -> "LazyExpr":
        spec = OPS[op]
        shape, dtype = spec.infer(tuple(i.shape for i in inputs),
                                  tuple(i.dtype for i in inputs), kwargs)
        return cls(op, spec.kind, inputs, kwargs, tuple(shape),
                   np.dtype(dtype), result=None)

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        return int(math.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def realized(self) -> bool:
        return self.result is not None

    def __repr__(self) -> str:
        state = "realized" if self.realized else (
            "fused" if self.fused_away else "pending")
        return f"LazyExpr({self.op}, shape={self.shape}, {state})"

    # -- realization ---------------------------------------------------------
    def realize(self) -> np.ndarray:
        """Materialize this node (scheduling + running fused kernels)."""
        if self.result is None:
            from repro.ml.engine.device import get_device
            get_device().realize(self)
        return self.result
