"""The primitive-op vocabulary of the lazy tensor engine.

Everything :class:`~repro.ml.tensor.Tensor` can defer lowers to a tiny,
tinygrad-style op set:

* **unary** elementwise — ``neg exp log tanh sigmoid relu abs clip pow``,
* **binary** elementwise — ``add mul div`` (``sub`` stays ``add(neg)``,
  exactly as the eager path composes it),
* **reduce** — ``sum max`` over an axis set,
* **matmul** — batched 2-D contraction (1-D operands are lifted by the
  Tensor layer before they reach the engine),
* **movement** — ``reshape transpose pad2d`` (views / layout changes).

Each op carries a shape/dtype inference rule (so lazy tensors answer
``.shape``/``.dtype`` without computing), a FLOP estimate (what the
simulated-GPU device charges), and an executor that reproduces the eager
NumPy call *bit for bit* — fusion may eliminate intermediate buffers via
``out=`` reuse, but never reorders or reassociates float math.  That is
the property the reference-replay pins in
``tests/test_perf_regression_pins.py`` enforce.
"""

from __future__ import annotations

import math
from typing import Any, Callable, NamedTuple, Optional

import numpy as np

# -- op kinds ----------------------------------------------------------------

UNARY = "unary"
BINARY = "binary"
REDUCE = "reduce"
MATMUL = "matmul"
MOVEMENT = "movement"
LEAF = "leaf"

#: Kinds the fuser may place in the interior of a fused kernel.
ELEMENTWISE_KINDS = (UNARY, BINARY)
#: Kinds that may terminate (be the root of) a fused kernel.
FUSABLE_ROOT_KINDS = (UNARY, BINARY, REDUCE)


class OpSpec(NamedTuple):
    """One primitive op: kind + inference + execution + cost."""

    kind: str
    #: infer(input_shapes, input_dtypes, kwargs) -> (shape, dtype)
    infer: Callable[..., tuple[tuple[int, ...], np.dtype]]
    #: execute(args, kwargs, out_buf) -> ndarray; ``out_buf`` is an owned,
    #: correctly shaped scratch buffer the executor may write into (or None).
    execute: Callable[..., np.ndarray]
    #: flops(input_shapes, out_shape, kwargs) -> float
    flops: Callable[..., float]
    #: Whether ``execute`` allocates a fresh buffer when ``out_buf`` is None
    #: (movement ops return views and allocate nothing).
    allocates: bool = True


def _size(shape: tuple[int, ...]) -> int:
    return int(math.prod(shape))


# -- shape / dtype inference -------------------------------------------------


def _unary_infer(shapes, dtypes, kw):
    return shapes[0], dtypes[0]


def _pow_infer(shapes, dtypes, kw):
    # NEP-50 weak promotion: a python-scalar exponent never upcasts float32.
    return shapes[0], np.result_type(dtypes[0], kw["exponent"])


def _binary_infer(shapes, dtypes, kw):
    return (np.broadcast_shapes(shapes[0], shapes[1]),
            np.result_type(dtypes[0], dtypes[1]))


def normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    """Reduction axes as a normalized tuple (all axes when None)."""
    if axis is None:
        return tuple(range(ndim))
    axes = axis if isinstance(axis, tuple) else (axis,)
    return tuple(a % ndim for a in axes)


def reduce_shape(shape: tuple[int, ...], axis, keepdims: bool) -> tuple[int, ...]:
    axes = normalize_axes(axis, len(shape))
    if keepdims:
        return tuple(1 if i in axes else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in axes)


def _reduce_infer(shapes, dtypes, kw):
    return reduce_shape(shapes[0], kw["axis"], kw["keepdims"]), dtypes[0]


def matmul_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """np.matmul shape rule for operands of ndim >= 2."""
    if a[-1] != b[-2]:
        raise ValueError(f"matmul shape mismatch: {a} @ {b}")
    batch = np.broadcast_shapes(a[:-2], b[:-2])
    return tuple(batch) + (a[-2], b[-1])


def _matmul_infer(shapes, dtypes, kw):
    return matmul_shape(shapes[0], shapes[1]), np.result_type(*dtypes)


def resolve_reshape(in_shape: tuple[int, ...], shape) -> tuple[int, ...]:
    """Resolve a reshape target (supporting one -1) without data."""
    shape = tuple(int(s) for s in shape)
    if -1 in shape:
        known = _size(tuple(s for s in shape if s != -1))
        total = _size(in_shape)
        if shape.count(-1) > 1 or known == 0 or total % known:
            raise ValueError(f"cannot reshape {in_shape} -> {shape}")
        shape = tuple(total // known if s == -1 else s for s in shape)
    if _size(shape) != _size(in_shape):
        raise ValueError(f"cannot reshape {in_shape} -> {shape}")
    return shape


def _reshape_infer(shapes, dtypes, kw):
    return resolve_reshape(shapes[0], kw["shape"]), dtypes[0]


def _transpose_infer(shapes, dtypes, kw):
    axes = kw["axes"]
    return tuple(shapes[0][a] for a in axes), dtypes[0]


def _pad2d_infer(shapes, dtypes, kw):
    p = kw["pad"]
    s = shapes[0]
    return s[:-2] + (s[-2] + 2 * p, s[-1] + 2 * p), dtypes[0]


# -- executors (bit-identical to the eager NumPy expressions) ---------------


def _exec_neg(args, kw, out):
    return np.negative(args[0], out=out)


def _exec_exp(args, kw, out):
    return np.exp(args[0], out=out)


def _exec_log(args, kw, out):
    return np.log(args[0], out=out)


def _exec_tanh(args, kw, out):
    return np.tanh(args[0], out=out)


def _exec_sigmoid(args, kw, out):
    # Eager computes 1.0 / (1.0 + np.exp(-x)); replay the exact ufunc
    # sequence, folding all temporaries into one buffer.
    t = np.negative(args[0], out=out)
    np.exp(t, out=t)
    np.add(t, 1.0, out=t)
    return np.true_divide(1.0, t, out=t)


def _exec_relu(args, kw, out):
    # Eager computes x * (x > 0).
    return np.multiply(args[0], args[0] > 0, out=out)


def _exec_abs(args, kw, out):
    return np.abs(args[0], out=out)


def _exec_clip(args, kw, out):
    return np.clip(args[0], kw["lo"], kw["hi"], out=out)


def _exec_pow(args, kw, out):
    return np.power(args[0], kw["exponent"], out=out)


def _exec_add(args, kw, out):
    return np.add(args[0], args[1], out=out)


def _exec_mul(args, kw, out):
    return np.multiply(args[0], args[1], out=out)


def _exec_div(args, kw, out):
    return np.true_divide(args[0], args[1], out=out)


def _exec_sum(args, kw, out):
    return np.sum(args[0], axis=kw["axis"], keepdims=kw["keepdims"])


def _exec_max(args, kw, out):
    return np.max(args[0], axis=kw["axis"], keepdims=kw["keepdims"])


def _exec_matmul(args, kw, out):
    return np.matmul(args[0], args[1])


def _exec_reshape(args, kw, out):
    return args[0].reshape(kw["shape"])


def _exec_transpose(args, kw, out):
    return args[0].transpose(kw["axes"])


def _exec_pad2d(args, kw, out):
    p = kw["pad"]
    widths = [(0, 0)] * (args[0].ndim - 2) + [(p, p), (p, p)]
    return np.pad(args[0], widths)


# -- FLOP estimates ----------------------------------------------------------


def _flops_out(shapes, out_shape, kw):
    return float(_size(out_shape))


def _flops_in(shapes, out_shape, kw):
    return float(_size(shapes[0]))


def _flops_sigmoid(shapes, out_shape, kw):
    return 4.0 * _size(out_shape)       # neg, exp, add, div


def _flops_matmul(shapes, out_shape, kw):
    return 2.0 * _size(out_shape) * shapes[0][-1]


def _flops_zero(shapes, out_shape, kw):
    return 0.0


# -- the table ---------------------------------------------------------------

OPS: dict[str, OpSpec] = {
    "neg": OpSpec(UNARY, _unary_infer, _exec_neg, _flops_out),
    "exp": OpSpec(UNARY, _unary_infer, _exec_exp, _flops_out),
    "log": OpSpec(UNARY, _unary_infer, _exec_log, _flops_out),
    "tanh": OpSpec(UNARY, _unary_infer, _exec_tanh, _flops_out),
    "sigmoid": OpSpec(UNARY, _unary_infer, _exec_sigmoid, _flops_sigmoid),
    "relu": OpSpec(UNARY, _unary_infer, _exec_relu, _flops_out),
    "abs": OpSpec(UNARY, _unary_infer, _exec_abs, _flops_out),
    "clip": OpSpec(UNARY, _unary_infer, _exec_clip, _flops_out),
    "pow": OpSpec(UNARY, _pow_infer, _exec_pow, _flops_out),
    "add": OpSpec(BINARY, _binary_infer, _exec_add, _flops_out),
    "mul": OpSpec(BINARY, _binary_infer, _exec_mul, _flops_out),
    "div": OpSpec(BINARY, _binary_infer, _exec_div, _flops_out),
    "sum": OpSpec(REDUCE, _reduce_infer, _exec_sum, _flops_in),
    "max": OpSpec(REDUCE, _reduce_infer, _exec_max, _flops_in),
    "matmul": OpSpec(MATMUL, _matmul_infer, _exec_matmul, _flops_matmul),
    "reshape": OpSpec(MOVEMENT, _reshape_infer, _exec_reshape, _flops_zero,
                      allocates=False),
    "transpose": OpSpec(MOVEMENT, _transpose_infer, _exec_transpose,
                        _flops_zero, allocates=False),
    "pad2d": OpSpec(MOVEMENT, _pad2d_infer, _exec_pad2d, _flops_in),
}


def op_kind(op: str) -> str:
    return OPS[op].kind
