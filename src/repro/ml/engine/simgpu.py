"""The simulated-GPU backend: NumPy execution, accelerator accounting.

Executes fused kernels through the same NumPy executor as the CPU device
(bit-identical results — the point of the engine), but charges simulated
time per **fused kernel** on the V100/A100 roofline derived from
:class:`repro.distributed.perfmodel.InferencePerfModel`: a fixed launch
overhead plus ``max(flops/sustained_flops, bytes/sustained_bandwidth)``.

Because launch overhead is charged once per kernel rather than once per
primitive op, the device's clock directly exhibits the paper-relevant
effect fusion models: small-batch step time on the JUWELS Booster is
dominated by dispatch and HBM traffic, not FLOPs (Kesselheim et al.,
arXiv:2108.11976; Sridharan et al., arXiv:1801.08030).
``unfused_time_s`` exposes the op-per-kernel counterfactual so benches
can report the modeled fusion speedup.
"""

from __future__ import annotations

from typing import Optional

from repro.ml.engine.cpu import Device

_GPU_NAMES = ("A100", "V100")


class SimGpuDevice(Device):
    """NumPy-backed device billed on a GPU kernel cost model."""

    def __init__(self, gpu: str = "A100", cost_model=None) -> None:
        super().__init__()
        if cost_model is None:
            from repro.core.hardware import NVIDIA_A100, NVIDIA_V100
            from repro.distributed.perfmodel import (InferencePerfModel,
                                                     KernelCostModel)
            if gpu not in _GPU_NAMES:
                raise ValueError(f"unknown GPU {gpu!r} (have {_GPU_NAMES})")
            spec = NVIDIA_A100 if gpu == "A100" else NVIDIA_V100
            cost_model = KernelCostModel.from_inference_model(
                InferencePerfModel(), gpu=spec)
        self.cost_model = cost_model
        self.name = f"sim-gpu:{gpu.lower()}"

    def kernel_time_s(self, flops: float, bytes_moved: int,
                      n_ops: int) -> float:
        return self.cost_model.kernel_time(flops, bytes_moved)
