"""Engine counters: the numbers the ``tensor`` bench area regresses on.

One process-wide :class:`EngineStats` instance collects, when enabled,

* eager-path op/allocation counts (``Tensor`` increments these so the
  bench can price the op-by-op dispatch the lazy engine removes),
* lazy-path kernel counts, fused-op totals, kernel buffer allocations and
  bytes, and recompute events (interior values autograd demanded after
  their chain was fused away).

Disabled (the default) every site pays a single attribute check, the
same contract the telemetry layer uses.  All counters are integers, so
totals are order-independent and deterministic even when SPMD rank
threads share the instance.
"""

from __future__ import annotations

from contextlib import contextmanager


class EngineStats:
    """Integer counters for both execution paths."""

    __slots__ = ("enabled", "eager_ops", "eager_alloc_bytes",
                 "kernels", "fused_ops", "kernel_allocs",
                 "kernel_alloc_bytes", "realizes", "recomputes")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.reset()

    def reset(self) -> None:
        self.eager_ops = 0
        self.eager_alloc_bytes = 0
        self.kernels = 0
        self.fused_ops = 0
        self.kernel_allocs = 0
        self.kernel_alloc_bytes = 0
        self.realizes = 0
        self.recomputes = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__
                if name != "enabled"}

    @property
    def total_allocs(self) -> int:
        """Buffer allocations regardless of path (eager ops each allocate)."""
        return self.eager_ops + self.kernel_allocs


#: The process-wide instance every engine site increments.
STATS = EngineStats(enabled=False)


@contextmanager
def collect():
    """Reset + enable the counters for one measured region.

    >>> with engine.collect() as stats:
    ...     loss = model(x).sum(); loss.backward()
    >>> stats.kernels, stats.kernel_allocs
    """
    STATS.reset()
    prev = STATS.enabled
    STATS.enabled = True
    try:
        yield STATS
    finally:
        STATS.enabled = prev
