"""Neural-network functional ops: convolutions, pooling, softmax, dropout.

Convolutions lower to im2col + matmul (the standard CPU strategy and how
the tensor-core path consumes them on the paper's GPUs); backward passes
invert the lowering with col2im scatter-adds.  All kernels are vectorised
NumPy — stride tricks build the patch views without Python loops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tensor import Tensor


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix (a view copy)."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # -> (N, out_h, out_w, C, kh, kw) -> flatten patch dims
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im(
    cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int
) -> np.ndarray:
    """Scatter-add the patch-matrix gradient back to the input layout."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    grad = np.zeros(x_shape, dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            grad[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += \
                cols6[:, :, :, :, i, j]
    return grad


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution, NCHW input, (out_c, in_c, kh, kw) weight."""
    if padding > 0:
        x = x.pad2d(padding)
    xd = x.data
    wd = weight.data
    out_c, in_c, kh, kw = wd.shape
    n, c, h, w = xd.shape
    if c != in_c:
        raise ValueError(f"channel mismatch: input {c} vs weight {in_c}")
    cols = _im2col(xd, kh, kw, stride)                # (N, oh, ow, C*kh*kw)
    wmat = wd.reshape(out_c, -1)                      # (out_c, C*kh*kw)
    out_data = cols @ wmat.T                          # (N, oh, ow, out_c)
    out_data = out_data.transpose(0, 3, 1, 2)         # NCHW
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    prev = (x, weight) + ((bias,) if bias is not None else ())
    out = Tensor(out_data, requires_grad=any(t.requires_grad for t in prev),
                 _prev=prev)

    def backward() -> None:
        g = out.grad.transpose(0, 2, 3, 1)            # (N, oh, ow, out_c)
        if weight.requires_grad:
            gw = np.tensordot(g, cols, axes=([0, 1, 2], [0, 1, 2]))
            weight._accumulate(gw.reshape(wd.shape))
        if x.requires_grad:
            gcols = g @ wmat                          # (N, oh, ow, C*kh*kw)
            x._accumulate(_col2im(gcols, xd.shape, kh, kw, stride))
        if bias is not None and bias.requires_grad:
            bias._accumulate(out.grad.sum(axis=(0, 2, 3)))

    out._backward = backward
    return out


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D convolution on (N, C, L) — used by the ARDS 1-D CNN baseline."""
    if padding > 0:
        x = pad1d(x, padding)
    n, c, l = x.shape
    x4 = x.reshape(n, c, 1, l)
    out_c, in_c, k = weight.shape
    w4 = weight.reshape(out_c, in_c, 1, k)
    out = conv2d(x4, w4, bias=bias, stride=stride, padding=0)
    n2, oc, _, ol = out.shape
    return out.reshape(n2, oc, ol)


def pad1d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the last axis of (N, C, L) symmetrically."""
    if pad == 0:
        return x
    widths = [(0, 0)] * (x.ndim - 1) + [(pad, pad)]
    out = Tensor(np.pad(x.data, widths), requires_grad=x.requires_grad, _prev=(x,))

    def backward() -> None:
        if x.requires_grad:
            sl = tuple([slice(None)] * (x.ndim - 1) + [slice(pad, -pad)])
            x._accumulate(out.grad[sl])

    out._backward = backward
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW spatial dims."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    xd = x.data
    s0, s1, s2, s3 = xd.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    patches = np.lib.stride_tricks.as_strided(xd, shape=shape, strides=strides)
    out_data = patches.max(axis=(4, 5))
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,))

    # Remember argmax positions for the backward scatter.
    flat = patches.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=4)

    def backward() -> None:
        if not x.requires_grad:
            return
        grad = np.zeros_like(xd)
        ii, jj = np.unravel_index(arg, (kernel, kernel))
        ni, ci, oi, oj = np.indices((n, c, out_h, out_w))
        hi = oi * stride + ii
        wi = oj * stride + jj
        np.add.at(grad, (ni, ci, hi, wi), out.grad)
        x._accumulate(grad)

    out._backward = backward
    return out


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over NCHW spatial dims."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    xd = x.data
    s0, s1, s2, s3 = xd.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    patches = np.lib.stride_tricks.as_strided(xd, shape=shape, strides=strides)
    out = Tensor(patches.mean(axis=(4, 5)), requires_grad=x.requires_grad, _prev=(x,))
    scale = 1.0 / (kernel * kernel)

    def backward() -> None:
        if not x.requires_grad:
            return
        grad = np.zeros_like(xd)
        g = out.grad * scale
        for i in range(kernel):
            for j in range(kernel):
                grad[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += g
        x._accumulate(grad)

    out._backward = backward
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax built from autograd primitives."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales by 1/(1-p) at train time, identity at eval."""
    if not (0.0 <= p < 1.0):
        raise ValueError("dropout p must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    # Match the input dtype so dropout never upcasts a float32 model.
    return x * Tensor(mask.astype(x.dtype, copy=False))


def one_hot(labels: np.ndarray, n_classes: int,
            dtype=np.float64) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= n_classes:
        raise ValueError("labels out of range")
    out = np.zeros((labels.shape[0], n_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
