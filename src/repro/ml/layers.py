"""Neural-network layers (Keras/pyTorch-style modules).

Provides the layer set the paper's case studies need: Dense, Conv2D/Conv1D,
BatchNorm, Dropout, pooling, activations, Flatten and Sequential.  Recurrent
layers (the ARDS GRU) live in :mod:`repro.ml.rnn`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.ml import functional as F
from repro.ml.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data, name: str = "") -> None:
        # Tensor.__init__ preserves float dtypes (float32 weights stay
        # float32) and promotes integer initialisers to float64.
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: parameter discovery, train/eval mode, state dict."""

    def __init__(self) -> None:
        self.training = True
        self._buffers: dict[str, np.ndarray] = {}

    # -- forward -------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- parameter discovery -----------------------------------------------------
    def _children(self) -> Iterator[tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{name}", value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{prefix}{name}.{i}", item
        for name, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- modes ----------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for _, child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self._children():
            child.eval()
        return self

    # -- state ---------------------------------------------------------------------
    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for name, child in self._children():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({f"buffer:{name}": b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {f"buffer:{name}": b for name, b in self.named_buffers()}
        expected = set(params) | set(buffers)
        missing = expected - set(state)
        extra = set(state) - expected
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(extra)}")
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            p.data[...] = state[name]
        for name, b in buffers.items():
            b[...] = state[name]


# ---------------------------------------------------------------------------
# initialisers
# ---------------------------------------------------------------------------

def he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """Kaiming-He normal initialisation (ReLU networks)."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_init(rng: np.random.Generator, shape: tuple[int, ...],
                fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot uniform initialisation (tanh/sigmoid networks)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


# ---------------------------------------------------------------------------
# layers
# ---------------------------------------------------------------------------

class Dense(Module):
    """Fully connected layer: y = x W + b."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(he_init(rng, (in_features, out_features), in_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2D(Module):
    """2-D convolution over NCHW images."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            he_init(rng, (out_channels, in_channels, kernel, kernel), fan_in))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class Conv1D(Module):
    """1-D convolution over (N, C, L) sequences."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            he_init(rng, (out_channels, in_channels, kernel), fan_in))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class BatchNorm(Module):
    """Batch normalisation over the channel axis.

    Works for (N, C), (N, C, L) and (N, C, H, W) inputs; keeps running
    statistics for eval mode.
    """

    def __init__(self, num_features: int, momentum: float = 0.9,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self._buffers["running_mean"] = np.zeros(num_features)
        self._buffers["running_var"] = np.ones(num_features)

    @property
    def running_mean(self) -> np.ndarray:
        return self._buffers["running_mean"]

    @property
    def running_var(self) -> np.ndarray:
        return self._buffers["running_var"]

    def _reduce_axes(self, x: Tensor) -> tuple[int, ...]:
        return tuple(i for i in range(x.ndim) if i != 1)

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        return tuple(self.num_features if i == 1 else 1 for i in range(x.ndim))

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes(x)
        shape = self._shape(x)
        if self.training:
            mu = x.mean(axis=axes, keepdims=True)
            var = ((x - mu) ** 2).mean(axis=axes, keepdims=True)
            m = self.momentum
            rm, rv = self._buffers["running_mean"], self._buffers["running_var"]
            rm *= m
            rm += (1 - m) * mu.data.reshape(-1)
            rv *= m
            rv += (1 - m) * var.data.reshape(-1)
            x_hat = (x - mu) / ((var + self.eps) ** 0.5)
        else:
            mu = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mu) / ((var + self.eps) ** 0.5)
        return x_hat * self.gamma.reshape(shape) + self.beta.reshape(shape)


class Dropout(Module):
    """Inverted dropout with its own deterministic stream."""

    def __init__(self, p: float, seed: int = 0) -> None:
        super().__init__()
        if not (0.0 <= p < 1.0):
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MaxPool2D(Module):
    def __init__(self, kernel: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2D(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    """Chain of modules."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)
