"""Loss functions for the case-study models.

* cross-entropy with logits (multi-class: land-cover, COVID-Net),
* binary cross-entropy with logits (multi-label: BigEarthNet-style),
* MAE — the ARDS GRU's loss (paper Sec. IV-B),
* MSE — autoencoder reconstruction,
* optional masking so imputation losses only score observed entries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.functional import log_softmax, one_hot
from repro.ml.tensor import Tensor


def _target_tensor(ref: Tensor, values) -> Tensor:
    """Targets as a Tensor without dtype surprises: float targets keep
    their dtype; integer/bool targets adopt the prediction's dtype (so a
    float32 model is not upcast by int labels)."""
    arr = np.asarray(values)
    if arr.dtype.kind != "f":
        arr = arr.astype(ref.dtype if ref.dtype.kind == "f" else np.float64)
    return Tensor(arr)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; ``labels`` are integer class ids."""
    n, n_classes = logits.shape
    targets = Tensor(one_hot(np.asarray(labels), n_classes,
                             dtype=logits.dtype))
    logp = log_softmax(logits, axis=-1)
    return -(targets * logp).sum() * (1.0 / n)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean element-wise BCE for multi-label targets in {0,1}.

    Uses the numerically stable form
    ``max(x,0) - x·y + log(1 + exp(-|x|))``.
    """
    y = _target_tensor(logits, targets)
    x = logits
    relu_x = x.relu()
    abs_x = x.abs()
    loss = relu_x - x * y + (1.0 + (-abs_x).exp()).log()
    return loss.mean()


def mse(pred: Tensor, target: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean squared error, optionally masked to observed entries."""
    t = _target_tensor(pred, target)
    sq = (pred - t) ** 2
    if mask is None:
        return sq.mean()
    m = np.asarray(mask, dtype=np.float64)
    denom = max(m.sum(), 1.0)
    return (sq * _target_tensor(pred, mask)).sum() * (1.0 / denom)


def mae(pred: Tensor, target: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean absolute error — the ARDS GRU's training loss."""
    t = _target_tensor(pred, target)
    err = (pred - t).abs()
    if mask is None:
        return err.mean()
    m = np.asarray(mask, dtype=np.float64)
    denom = max(m.sum(), 1.0)
    return (err * _target_tensor(pred, mask)).sum() * (1.0 / denom)


def l2_regularisation(params, coeff: float) -> Tensor:
    """Kernel/recurrent regularisation term (paper's GRU uses both)."""
    total = None
    for p in params:
        term = (p ** 2).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coeff
