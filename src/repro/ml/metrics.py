"""Evaluation metrics for the case studies.

Classification (accuracy, confusion matrix, precision/recall/F1 — COVID-Net
and land-cover), multi-label (subset accuracy, micro-F1 — BigEarthNet-style),
and regression (MAE/RMSE/R² — ARDS imputation).
"""

from __future__ import annotations

import numpy as np


def accuracy(pred_labels: np.ndarray, true_labels: np.ndarray) -> float:
    pred_labels = np.asarray(pred_labels)
    true_labels = np.asarray(true_labels)
    if pred_labels.shape != true_labels.shape:
        raise ValueError("shape mismatch")
    if pred_labels.size == 0:
        raise ValueError("empty predictions")
    return float((pred_labels == true_labels).mean())


def confusion_matrix(pred: np.ndarray, true: np.ndarray, n_classes: int) -> np.ndarray:
    pred = np.asarray(pred, dtype=np.int64)
    true = np.asarray(true, dtype=np.int64)
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (true, pred), 1)
    return cm


def precision_recall_f1(
    pred: np.ndarray, true: np.ndarray, n_classes: int
) -> dict[str, np.ndarray]:
    """Per-class precision/recall/F1 (zero-safe)."""
    cm = confusion_matrix(pred, true, n_classes)
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    actual_pos = cm.sum(axis=1).astype(np.float64)
    precision = np.divide(tp, pred_pos, out=np.zeros_like(tp), where=pred_pos > 0)
    recall = np.divide(tp, actual_pos, out=np.zeros_like(tp), where=actual_pos > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom,
                   out=np.zeros_like(tp), where=denom > 0)
    return {"precision": precision, "recall": recall, "f1": f1}


def multilabel_micro_f1(pred: np.ndarray, true: np.ndarray,
                        threshold: float = 0.5) -> float:
    """Micro-averaged F1 over binary label matrices (or probabilities)."""
    p = (np.asarray(pred) >= threshold).astype(np.int64)
    t = np.asarray(true).astype(np.int64)
    tp = int(((p == 1) & (t == 1)).sum())
    fp = int(((p == 1) & (t == 0)).sum())
    fn = int(((p == 0) & (t == 1)).sum())
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom > 0 else 0.0


def subset_accuracy(pred: np.ndarray, true: np.ndarray,
                    threshold: float = 0.5) -> float:
    """Exact-match accuracy for multi-label predictions."""
    p = (np.asarray(pred) >= threshold).astype(np.int64)
    t = np.asarray(true).astype(np.int64)
    return float((p == t).all(axis=1).mean())


def mae_score(pred: np.ndarray, true: np.ndarray,
              mask: np.ndarray | None = None) -> float:
    err = np.abs(np.asarray(pred) - np.asarray(true))
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if not m.any():
            raise ValueError("mask selects no entries")
        err = err[m]
    return float(err.mean())


def rmse_score(pred: np.ndarray, true: np.ndarray,
               mask: np.ndarray | None = None) -> float:
    sq = (np.asarray(pred) - np.asarray(true)) ** 2
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if not m.any():
            raise ValueError("mask selects no entries")
        sq = sq[m]
    return float(np.sqrt(sq.mean()))


def r2_score(pred: np.ndarray, true: np.ndarray) -> float:
    true = np.asarray(true, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    ss_res = float(((true - pred) ** 2).sum())
    ss_tot = float(((true - true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
