"""Case-study model zoo.

The architectures the paper's experiments run:

* :mod:`repro.ml.models.resnet` — residual CNNs (the ResNet-50-class
  land-cover classifier of Sec. III-A, plus scaled-down variants sized for
  laptop execution),
* :mod:`repro.ml.models.covidnet` — a COVID-Net-style CXR classifier
  (Sec. IV-A),
* :mod:`repro.ml.models.gru_forecaster` — the ARDS GRU (2×32 units,
  dropout 0.2, Dense(1); Sec. IV-B) and the 1-D CNN alternative,
* :mod:`repro.ml.models.gru_d` — GRU-D with learned decay (the related-work
  model of Che et al., ref [39]),
* :mod:`repro.ml.models.autoencoder` — the Spark-style autoencoder for RS
  data compression (Sec. III-B, ref [7]),
* :mod:`repro.ml.models.mlp` — a generic MLP baseline.
"""

from repro.ml.models.resnet import (ResidualBlock, BottleneckBlock, ResNet,
    BottleneckResNet, resnet_small, resnet20, resnet50_config)
from repro.ml.models.covidnet import CovidNet
from repro.ml.models.gru_forecaster import GruForecaster, Cnn1dForecaster
from repro.ml.models.gru_d import GruD, GruDCell, make_grud_inputs
from repro.ml.models.autoencoder import SpectralAutoencoder
from repro.ml.models.mlp import MLP

__all__ = [
    "ResidualBlock",
    "BottleneckBlock",
    "ResNet",
    "BottleneckResNet",
    "resnet_small",
    "resnet20",
    "resnet50_config",
    "CovidNet",
    "GruForecaster",
    "Cnn1dForecaster",
    "GruD",
    "GruDCell",
    "make_grud_inputs",
    "SpectralAutoencoder",
    "MLP",
]
