"""Autoencoder for non-linear remote-sensing data compression.

The paper (Sec. III-B, ref [7] Haut et al.) describes a cloud/Spark
implementation of a DL network for non-linear RS data compression "known as
AutoEncoder".  :class:`SpectralAutoencoder` compresses per-pixel spectra
(hyperspectral/multispectral band vectors) through a bottleneck; the E5
bench runs it inside the Spark-like engine on DAM-tier memory.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Dense, Module
from repro.ml.tensor import Tensor


class SpectralAutoencoder(Module):
    """Dense encoder/decoder over spectral vectors (N, bands)."""

    def __init__(self, n_bands: int, bottleneck: int, hidden: int = 32,
                 seed: int = 0) -> None:
        super().__init__()
        if bottleneck >= n_bands:
            raise ValueError("bottleneck must compress (be < n_bands)")
        rng = np.random.default_rng(seed)
        self.enc1 = Dense(n_bands, hidden, rng=rng)
        self.enc2 = Dense(hidden, bottleneck, rng=rng)
        self.dec1 = Dense(bottleneck, hidden, rng=rng)
        self.dec2 = Dense(hidden, n_bands, rng=rng)
        self.n_bands = n_bands
        self.bottleneck = bottleneck

    def encode(self, x: Tensor) -> Tensor:
        return self.enc2(self.enc1(x).relu())

    def decode(self, z: Tensor) -> Tensor:
        return self.dec2(self.dec1(z).relu())

    def forward(self, x: Tensor) -> Tensor:
        return self.decode(self.encode(x))

    @property
    def compression_ratio(self) -> float:
        return self.n_bands / self.bottleneck

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        out = self.forward(Tensor(x)).data
        if was_training:
            self.train()
        return out

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error on a raw batch."""
        rec = self.reconstruct(x)
        return float(((rec - x) ** 2).mean())
