"""COVID-Net-style chest-X-ray classifier (Wang et al. [25], Sec. IV-A).

COVID-Net is a tailored CNN detecting COVID-19 from CXR images with three
classes (normal / non-COVID pneumonia / COVID-19).  The original uses
lightweight PEPX (projection-expansion-projection-extension) blocks; we
implement that block family at a laptop-trainable scale — the experiments
need its class structure and its relative runtime across GPU generations,
not 480×480 resolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml import functional as F
from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    Module,
)
from repro.ml.tensor import Tensor

#: COVID-Net's output classes, in the COVIDx convention.
COVIDNET_CLASSES = ("normal", "pneumonia", "covid19")


class PepxBlock(Module):
    """Projection → expansion → depthwise-ish 3×3 → projection → extension.

    The 'design pattern' of COVID-Net: squeeze channels with 1×1 convs
    around a cheap 3×3 to keep parameter counts low.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        mid = max(in_channels // 2, 4)
        self.proj1 = Conv2D(in_channels, mid, 1, rng=rng, bias=False)
        self.expand = Conv2D(mid, mid * 2, 1, rng=rng, bias=False)
        self.conv = Conv2D(mid * 2, mid * 2, 3, padding=1, rng=rng, bias=False)
        self.proj2 = Conv2D(mid * 2, mid, 1, rng=rng, bias=False)
        self.extend = Conv2D(mid, out_channels, 1, rng=rng, bias=False)
        self.bn = BatchNorm(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.proj1(x).relu()
        out = self.expand(out).relu()
        out = self.conv(out).relu()
        out = self.proj2(out).relu()
        return self.bn(self.extend(out)).relu()


class CovidNet(Module):
    """A COVID-Net-style classifier over (N, 1, H, W) radiographs."""

    def __init__(self, n_classes: int = 3, base_width: int = 16,
                 n_blocks: int = 3, seed: int = 0) -> None:
        super().__init__()
        if n_blocks < 1:
            raise ValueError("need at least one PEPX block")
        rng = np.random.default_rng(seed)
        self.stem = Conv2D(1, base_width, 5, stride=2, padding=2,
                           rng=rng, bias=False)
        self.stem_bn = BatchNorm(base_width)
        blocks: list[Module] = []
        channels = base_width
        for i in range(n_blocks):
            out_channels = base_width * (2 ** min(i, 2))
            blocks.append(PepxBlock(channels, out_channels, rng=rng))
            channels = out_channels
        self.blocks = blocks
        self.pool = GlobalAvgPool2D()
        self.fc1 = Dense(channels, 32, rng=rng)
        self.fc2 = Dense(32, n_classes, rng=rng)
        self.n_classes = n_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for i, block in enumerate(self.blocks):
            out = block(out)
            if i < len(self.blocks) - 1:
                out = F.max_pool2d(out, 2)
        out = self.pool(out)
        out = self.fc1(out).relu()
        return self.fc2(out)

    def predict(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x))
        if was_training:
            self.train()
        return logits.data.argmax(axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        probs = F.softmax(self.forward(Tensor(x)), axis=-1).data
        if was_training:
            self.train()
        return probs
