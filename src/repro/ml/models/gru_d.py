"""GRU-D: recurrent imputation with learned decay (Che et al., ref [39]).

The paper's related work singles out GRU-D: a GRU whose inputs carry
explicit missingness information — for each channel, a **mask** (observed
or not) and the **time since the last observation** — and which decays both
the last observed input value toward the channel's empirical mean and the
hidden state toward zero, with *learned* decay rates:

.. math::
    γ_t = exp(-max(0, W_γ δ_t + b_γ)) \\
    hat-x_t = m_t ⊙ x_t + (1 - m_t) ⊙ (γ^x_t x_{last} + (1-γ^x_t) mean(x)) \\
    h_{t-1} ← γ^h_t ⊙ h_{t-1}

exploiting the physiology the paper mentions (homeostasis: unobserved
vitals drift back toward their set-points).  This implementation follows
the original formulation at laptop scale and plugs into the same training
loop as :class:`~repro.ml.models.gru_forecaster.GruForecaster`, reading
(values, mask, delta) triples produced by
:func:`make_grud_inputs`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.layers import Dense, Module, Parameter, xavier_init
from repro.ml.tensor import Tensor


class GruDCell(Module):
    """One GRU-D step over (x_t, m_t, δ_t)."""

    def __init__(self, input_size: int, hidden_size: int,
                 channel_means: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if channel_means.shape != (input_size,):
            raise ValueError("channel_means must have one entry per input")
        d, h = input_size, hidden_size
        self.input_size = d
        self.hidden_size = h
        self._buffers["channel_means"] = np.asarray(channel_means,
                                                    dtype=np.float64).copy()
        # Gate kernels: input, recurrent and mask contributions.
        self.W = Parameter(xavier_init(rng, (d, 3 * h), d, h))
        self.U = Parameter(xavier_init(rng, (h, 3 * h), h, h))
        self.V = Parameter(xavier_init(rng, (d, 3 * h), d, h))   # mask kernel
        self.b = Parameter(np.zeros(3 * h))
        # Input decay (diagonal: one rate per channel) and hidden decay.
        self.w_gamma_x = Parameter(np.zeros(d))
        self.b_gamma_x = Parameter(np.zeros(d))
        self.w_gamma_h = Parameter(xavier_init(rng, (d, h), d, h))
        self.b_gamma_h = Parameter(np.zeros(h))

    @property
    def channel_means(self) -> np.ndarray:
        return self._buffers["channel_means"]

    def forward(self, x: Tensor, m: Tensor, delta: Tensor,
                h_prev: Tensor, x_last: Tensor) -> tuple[Tensor, Tensor]:
        """Returns (h_t, x_last_updated)."""
        hsz = self.hidden_size
        mean = Tensor(self.channel_means)

        # Input decay toward the empirical mean.
        gamma_x = (-(delta * self.w_gamma_x + self.b_gamma_x).relu()).exp()
        x_hat = m * x + (1.0 - m) * (gamma_x * x_last
                                     + (1.0 - gamma_x) * mean)
        # Hidden-state decay.
        gamma_h = (-(delta @ self.w_gamma_h + self.b_gamma_h).relu()).exp()
        h_decayed = gamma_h * h_prev

        gates_x = x_hat @ self.W + m @ self.V + self.b
        gates_h = h_decayed @ self.U
        z = (gates_x[:, :hsz] + gates_h[:, :hsz]).sigmoid()
        r = (gates_x[:, hsz:2 * hsz] + gates_h[:, hsz:2 * hsz]).sigmoid()
        cand = (gates_x[:, 2 * hsz:] + r * gates_h[:, 2 * hsz:]).tanh()
        h = z * h_decayed + (1.0 - z) * cand

        # Carry forward the last observation per channel.
        x_last_new = m * x + (1.0 - m) * x_last
        return h, x_last_new


class GruD(Module):
    """GRU-D forecaster: (N, T, D) values + mask + delta → (N, 1)."""

    def __init__(self, n_features: int, hidden: int = 32,
                 channel_means: Optional[np.ndarray] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        means = (channel_means if channel_means is not None
                 else np.zeros(n_features))
        self.cell = GruDCell(n_features, hidden, np.asarray(means,
                                                            dtype=np.float64),
                             rng=rng)
        self.hidden = hidden
        self.out = Dense(hidden, 1, rng=rng)

    def forward(self, x: Tensor, mask: Tensor, delta: Tensor) -> Tensor:
        n, t, d = x.shape
        h = Tensor(np.zeros((n, self.hidden)))
        x_last = Tensor(np.broadcast_to(self.cell.channel_means,
                                        (n, d)).copy())
        for step in range(t):
            h, x_last = self.cell(x[:, step, :], mask[:, step, :],
                                  delta[:, step, :], h, x_last)
        return self.out(h)

    def predict(self, x: np.ndarray, mask: np.ndarray,
                delta: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        pred = self.forward(Tensor(x), Tensor(mask), Tensor(delta)).data
        if was_training:
            self.train()
        return pred


def make_grud_inputs(values: np.ndarray, mask: np.ndarray) -> tuple[
        np.ndarray, np.ndarray, np.ndarray]:
    """Build GRU-D (x, m, δ) from zero-filled windows and their masks.

    ``values``/``mask`` are (N, T, D); δ_t is the time (in steps) since the
    channel was last observed (δ_0 = 0, growing while unobserved).
    """
    values = np.asarray(values, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if values.shape != mask.shape or values.ndim != 3:
        raise ValueError("values and mask must be (N, T, D) and congruent")
    n, t, d = values.shape
    delta = np.zeros_like(values)
    for step in range(1, t):
        delta[:, step] = np.where(mask[:, step - 1] > 0, 1.0,
                                  delta[:, step - 1] + 1.0)
    return values, mask, delta
