"""ARDS time-series models (Sec. IV-B).

The paper's GRU: *"two GRU layers with 32 units each, with dropout values
of 0.2 and both kernel and recurrent regularization, followed by an output
layer (Dense layer of size 1)"*, trained with MAE loss and ADAM at lr 1e-4.
:class:`GruForecaster` is that model verbatim (sizes configurable so tests
can shrink it); :class:`Cnn1dForecaster` is the One-Dimensional CNN the
paper reports as equally promising for missing-value prediction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml import functional as F
from repro.ml.layers import Conv1D, Dense, Dropout, Module
from repro.ml.rnn import GRU
from repro.ml.tensor import Tensor


class GruForecaster(Module):
    """2×GRU(32) + dropout(0.2) + Dense(1): next-value prediction.

    Input (N, T, D) windows of vitals; output (N, 1) — the next value of
    the target channel, used to impute missing entries.
    """

    def __init__(self, n_features: int, hidden: int = 32,
                 dropout: float = 0.2, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.gru1 = GRU(n_features, hidden, return_sequences=True, rng=rng)
        self.drop1 = Dropout(dropout, seed=seed + 1)
        self.gru2 = GRU(hidden, hidden, return_sequences=False, rng=rng)
        self.drop2 = Dropout(dropout, seed=seed + 2)
        self.out = Dense(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.gru1(x)
        h = self.drop1(h)
        h = self.gru2(h)
        h = self.drop2(h)
        return self.out(h)

    def regularised_parameters(self):
        """Kernel + recurrent weights — the paper regularises both."""
        return [self.gru1.cell.W, self.gru1.cell.U,
                self.gru2.cell.W, self.gru2.cell.U]

    def predict(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        pred = self.forward(Tensor(x)).data
        if was_training:
            self.train()
        return pred


class Cnn1dForecaster(Module):
    """1-D CNN alternative the paper highlights as promising."""

    def __init__(self, n_features: int, channels: int = 32,
                 kernel: int = 5, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv1D(n_features, channels, kernel,
                            padding=kernel // 2, rng=rng)
        self.conv2 = Conv1D(channels, channels, kernel,
                            padding=kernel // 2, rng=rng)
        self.out = Dense(channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # (N, T, D) -> (N, D, T) for convolution over time.
        h = x.transpose(0, 2, 1)
        h = self.conv1(h).relu()
        h = self.conv2(h).relu()
        h = h.mean(axis=2)          # global average over time
        return self.out(h)

    def predict(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        pred = self.forward(Tensor(x)).data
        if was_training:
            self.train()
        return pred


def locf_baseline(windows: np.ndarray, target_channel: int = 0) -> np.ndarray:
    """Last-observation-carried-forward: predict the window's last value.

    The clinical-practice baseline the DL imputers must beat.
    """
    return windows[:, -1, target_channel:target_channel + 1]


def mean_baseline(windows: np.ndarray, target_channel: int = 0) -> np.ndarray:
    """Predict the window mean of the target channel."""
    return windows[:, :, target_channel].mean(axis=1, keepdims=True)
