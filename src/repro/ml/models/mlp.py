"""A plain multi-layer perceptron baseline."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.layers import Dense, Module
from repro.ml.tensor import Tensor


class MLP(Module):
    """Fully connected ReLU network: sizes[0] -> ... -> sizes[-1]."""

    def __init__(self, sizes: Sequence[int], seed: int = 0) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.layers = [
            Dense(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])
        ]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x).relu()
        return self.layers[-1](x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x)).data
        if was_training:
            self.train()
        return logits.argmax(axis=1)
