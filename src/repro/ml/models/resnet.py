"""Residual networks (He et al. [17]) for land-cover classification.

The paper trains a RESNET-50-class CNN "tuned for our multi-class land
cover image classification problem" on BigEarthNet (Sec. III-A).  We
provide:

* :class:`ResNet` — a configurable residual CNN over multispectral NCHW
  patches, with the stage layout given by ``blocks_per_stage``;
* :func:`resnet_small` — the laptop-scale variant the functional
  experiments train end-to-end (same architecture family, fewer/narrower
  stages);
* :func:`resnet20` — the classic CIFAR-style 3-stage ResNet;
* :func:`resnet50_config` — the full ResNet-50 shape (used by the
  performance model to count parameters and FLOPs at paper scale; training
  it numerically on a laptop is intentionally out of scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ml import functional as F
from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    Module,
    ReLU,
    Sequential,
)
from repro.ml.tensor import Tensor


class ResidualBlock(Module):
    """Two 3×3 convs with identity (or 1×1-projected) skip connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride,
                            padding=1, rng=rng, bias=False)
        self.bn1 = BatchNorm(out_channels)
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1,
                            padding=1, rng=rng, bias=False)
        self.bn2 = BatchNorm(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.proj: Optional[Conv2D] = Conv2D(
                in_channels, out_channels, 1, stride=stride, rng=rng, bias=False)
            self.proj_bn: Optional[BatchNorm] = BatchNorm(out_channels)
        else:
            self.proj = None
            self.proj_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = x if self.proj is None else self.proj_bn(self.proj(x))
        return (out + skip).relu()


class BottleneckBlock(Module):
    """1×1 reduce → 3×3 → 1×1 expand with skip — ResNet-50's block type.

    ``expansion`` output channels per bottleneck width (4 in He et al.).
    """

    expansion = 4

    def __init__(self, in_channels: int, width: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        out_channels = width * self.expansion
        self.conv1 = Conv2D(in_channels, width, 1, rng=rng, bias=False)
        self.bn1 = BatchNorm(width)
        self.conv2 = Conv2D(width, width, 3, stride=stride, padding=1,
                            rng=rng, bias=False)
        self.bn2 = BatchNorm(width)
        self.conv3 = Conv2D(width, out_channels, 1, rng=rng, bias=False)
        self.bn3 = BatchNorm(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.proj: Optional[Conv2D] = Conv2D(
                in_channels, out_channels, 1, stride=stride, rng=rng,
                bias=False)
            self.proj_bn: Optional[BatchNorm] = BatchNorm(out_channels)
        else:
            self.proj = None
            self.proj_bn = None
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        skip = x if self.proj is None else self.proj_bn(self.proj(x))
        return (out + skip).relu()


class ResNet(Module):
    """A residual CNN: stem → residual stages → GAP → classifier head."""

    def __init__(
        self,
        in_channels: int,
        n_classes: int,
        blocks_per_stage: Sequence[int] = (2, 2, 2),
        base_width: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not blocks_per_stage:
            raise ValueError("need at least one stage")
        rng = np.random.default_rng(seed)
        self.stem = Conv2D(in_channels, base_width, 3, stride=1, padding=1,
                           rng=rng, bias=False)
        self.stem_bn = BatchNorm(base_width)
        stages: list[Module] = []
        channels = base_width
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            out_channels = base_width * (2 ** stage_idx)
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(ResidualBlock(channels, out_channels,
                                            stride=stride, rng=rng))
                channels = out_channels
        self.stages = stages
        self.pool = GlobalAvgPool2D()
        self.head = Dense(channels, n_classes, rng=rng)
        self.n_classes = n_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.stages:
            out = block(out)
        return self.head(self.pool(out))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a raw array batch (eval mode)."""
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x))
        if was_training:
            self.train()
        return logits.data.argmax(axis=1)


def resnet_small(in_channels: int = 12, n_classes: int = 10,
                 seed: int = 0) -> ResNet:
    """The laptop-scale land-cover classifier used in functional runs."""
    return ResNet(in_channels, n_classes, blocks_per_stage=(1, 1),
                  base_width=8, seed=seed)


def resnet20(in_channels: int = 3, n_classes: int = 10, seed: int = 0) -> ResNet:
    """Classic 3-stage ResNet-20 (He et al.'s CIFAR configuration)."""
    return ResNet(in_channels, n_classes, blocks_per_stage=(3, 3, 3),
                  base_width=16, seed=seed)


class BottleneckResNet(Module):
    """ResNet-50-family network built from bottleneck blocks.

    ``blocks_per_stage=(3, 4, 6, 3)`` with ``base_width=64`` is the exact
    ResNet-50 layout; the default laptop configuration keeps that *shape*
    (4 bottleneck stages, expansion 4) at a trainable width.
    """

    def __init__(self, in_channels: int, n_classes: int,
                 blocks_per_stage: Sequence[int] = (1, 1, 1, 1),
                 base_width: int = 4, seed: int = 0) -> None:
        super().__init__()
        if not blocks_per_stage:
            raise ValueError("need at least one stage")
        rng = np.random.default_rng(seed)
        stem_out = base_width * 4
        self.stem = Conv2D(in_channels, stem_out, 3, stride=1, padding=1,
                           rng=rng, bias=False)
        self.stem_bn = BatchNorm(stem_out)
        stages: list[Module] = []
        channels = stem_out
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            width = base_width * (2 ** stage_idx)
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                block = BottleneckBlock(channels, width, stride=stride,
                                        rng=rng)
                stages.append(block)
                channels = block.out_channels
        self.stages = stages
        self.pool = GlobalAvgPool2D()
        self.head = Dense(channels, n_classes, rng=rng)
        self.n_classes = n_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.stages:
            out = block(out)
        return self.head(self.pool(out))

    def predict(self, x: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x))
        if was_training:
            self.train()
        return logits.data.argmax(axis=1)

    def predict_proba_multilabel(self, x: np.ndarray) -> np.ndarray:
        """Per-class sigmoid probabilities (the BigEarthNet task is
        multi-label: each patch carries several CORINE classes)."""
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x)).data
        if was_training:
            self.train()
        return 1.0 / (1.0 + np.exp(-logits))


@dataclass(frozen=True)
class ResNetShape:
    """Analytic shape of a (bottleneck) ResNet for the performance model."""

    name: str
    n_parameters: int
    flops_per_sample: float     # forward pass, multiply-accumulate counted as 2


def resnet50_config(in_channels: int = 12, n_classes: int = 43,
                    image_hw: int = 120) -> ResNetShape:
    """Parameter/FLOP counts of ResNet-50 on BigEarthNet-sized patches.

    Follows the standard bottleneck accounting (He et al. Table 1): ~25.6 M
    parameters and ~4.1 GFLOPs at 224², rescaled to the input geometry used
    here (BigEarthNet patches are 120×120, 12 bands → 43 classes).  The
    distributed-training performance model (E3) uses these counts; training
    the full net numerically is out of scope for a CPU laptop.
    """
    base_params = 25.6e6
    # Stem + head adjustments for channel/class count differences.
    stem_delta = (in_channels - 3) * 64 * 7 * 7
    head_delta = (n_classes - 1000) * 2048
    params = int(base_params + stem_delta + head_delta)
    flops_224 = 4.1e9 * 2  # MACs -> FLOPs
    scale = (image_hw / 224.0) ** 2
    return ResNetShape(
        name=f"ResNet-50({in_channels}ch,{n_classes}cls,{image_hw}px)",
        n_parameters=params,
        flops_per_sample=flops_224 * scale,
    )
