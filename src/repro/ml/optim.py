"""Optimisers: SGD (momentum/Nesterov/weight decay) and Adam.

The case studies use Adam(lr=1e-4) for the ARDS GRU (per the paper) and
momentum SGD with the linear-scaling + warmup schedule for distributed
ResNet training (the Horovod recipe the paper's [18]/[20] follow).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.ml.layers import Parameter


class Optimizer:
    """Base: holds parameters, applies steps, supports lr scheduling."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            self._update(p)

    def _update(self, p: Parameter) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        return self._step_count


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, nesterov: bool = False,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                grad = grad + self.momentum * v if self.nesterov else v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _update(self, p: Parameter) -> None:  # pragma: no cover - step() overrides
        raise NotImplementedError


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Standard for RNN training (the ARDS GRU benefits from it at higher
    learning rates).  Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float((g ** 2).sum())
    norm = total ** 0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for g in grads:
            g *= scale
    return norm


class CosineDecaySchedule:
    """Cosine learning-rate decay with optional linear warmup.

    The schedule large-batch ResNet recipes (including Horovod's examples)
    pair with the linear-scaling rule: warm up to ``peak_lr``, then decay
    to ``final_lr`` over ``total_steps`` following a half cosine.
    """

    def __init__(self, optimizer: Optimizer, peak_lr: float,
                 total_steps: int, warmup_steps: int = 0,
                 final_lr: float = 0.0) -> None:
        if total_steps < 1 or warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("need 0 <= warmup_steps <= total_steps, "
                             "total_steps >= 1")
        if peak_lr <= 0 or final_lr < 0:
            raise ValueError("peak_lr must be positive, final_lr >= 0")
        self.optimizer = optimizer
        self.peak_lr = peak_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.final_lr = final_lr
        self._t = 0
        optimizer.lr = self._lr_at(0)

    def _lr_at(self, t: int) -> float:
        import math

        if self.warmup_steps > 0 and t < self.warmup_steps:
            return self.peak_lr * (t + 1) / self.warmup_steps
        progress = (t - self.warmup_steps) / max(
            1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.peak_lr - self.final_lr) * cosine

    def step(self) -> float:
        self._t += 1
        self.optimizer.lr = self._lr_at(self._t)
        return self.optimizer.lr


class LinearWarmupSchedule:
    """Linear LR warmup then constant — the large-batch recipe Horovod's
    ResNet examples (and the paper's [18], [20]) use when scaling workers."""

    def __init__(self, optimizer: Optimizer, base_lr: float,
                 target_lr: float, warmup_steps: int) -> None:
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.target_lr = target_lr
        self.warmup_steps = warmup_steps
        self._t = 0
        optimizer.lr = base_lr if warmup_steps > 0 else target_lr

    def step(self) -> float:
        """Advance one step; returns the LR now in effect."""
        self._t += 1
        if self.warmup_steps == 0 or self._t >= self.warmup_steps:
            self.optimizer.lr = self.target_lr
        else:
            frac = self._t / self.warmup_steps
            self.optimizer.lr = self.base_lr + frac * (self.target_lr - self.base_lr)
        return self.optimizer.lr
