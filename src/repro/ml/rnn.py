"""Recurrent layers: the GRU used by the ARDS time-series case study.

The paper's model (Sec. IV-B): two GRU layers with 32 units each, dropout
0.2, kernel and recurrent regularisation, followed by a Dense(1) output;
MAE loss, ADAM with learning rate 1e-4.  :class:`GRU` implements the cuDNN
default GRU formulation (reset gate applied to the candidate's recurrent
term), which is the configuration Keras requires for cuDNN support — the
constraint the paper explicitly mentions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.layers import Module, Parameter, xavier_init
from repro.ml.tensor import Tensor


class GRUCell(Module):
    """A single GRU step.

    Gates (cuDNN/Keras `reset_after` convention):

    .. math::
        z_t = σ(x_t W_z + h_{t-1} U_z + b_z) \\
        r_t = σ(x_t W_r + h_{t-1} U_r + b_r) \\
        \\tilde h_t = tanh(x_t W_h + r_t ⊙ (h_{t-1} U_h) + b_h) \\
        h_t = z_t ⊙ h_{t-1} + (1 - z_t) ⊙ \\tilde h_t
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h, d = hidden_size, input_size
        self.W = Parameter(xavier_init(rng, (d, 3 * h), d, h))   # input kernel
        self.U = Parameter(xavier_init(rng, (h, 3 * h), h, h))   # recurrent kernel
        self.b = Parameter(np.zeros(3 * h))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        hsz = self.hidden_size
        gates_x = x @ self.W + self.b         # (N, 3h)
        gates_h = h_prev @ self.U             # (N, 3h)
        z = (gates_x[:, :hsz] + gates_h[:, :hsz]).sigmoid()
        r = (gates_x[:, hsz:2 * hsz] + gates_h[:, hsz:2 * hsz]).sigmoid()
        h_cand = (gates_x[:, 2 * hsz:] + r * gates_h[:, 2 * hsz:]).tanh()
        return z * h_prev + (1.0 - z) * h_cand


class GRU(Module):
    """A full GRU layer over (N, T, D) sequences.

    ``return_sequences=True`` yields (N, T, H); otherwise the last hidden
    state (N, H) — matching Keras semantics so the paper's 2-layer stack
    translates directly.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 return_sequences: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    def forward(self, x: Tensor, h0: Optional[Tensor] = None) -> Tensor:
        n, t, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((n, self.hidden_size)))
        outputs: list[Tensor] = []
        for step in range(t):
            h = self.cell(x[:, step, :], h)
            if self.return_sequences:
                outputs.append(h)
        if self.return_sequences:
            return Tensor.stack(outputs, axis=1)
        return h
