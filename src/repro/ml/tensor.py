"""Reverse-mode autodiff on NumPy arrays, over a lazy execution engine.

The DL substrate of this reproduction (the paper's TensorFlow/Keras and
pyTorch stand-in).  A :class:`Tensor` wraps either a realized ``ndarray``
or a recorded :class:`~repro.ml.engine.graph.LazyExpr`; operations build
a DAG of closures and :meth:`Tensor.backward` runs reverse topological
accumulation.  All arithmetic is broadcasting-aware: gradients are summed
back over broadcast dimensions (:func:`unbroadcast`).

Execution modes (``ENGINE=eager|lazy``, see :mod:`repro.ml.engine`):

* **eager** (default) — every op calls NumPy immediately, exactly the
  original op-by-op path;
* **lazy** — primitive ops record graph nodes; demanding bytes
  (``.data``, ``.item()``, ``backward()``, a boundary op such as conv2d)
  schedules the pending subgraph through the fuser and runs fused
  kernels on the current device (``cpu`` or ``sim-gpu``).

Both modes are bit-identical by construction: fused kernels replay the
same ufunc sequence in the same order, only eliding intermediate buffer
allocations.  Dtypes are preserved — float32 stays float32 end-to-end;
integer inputs promote to float64 (gradients need a float domain); a
python scalar operand adopts the tensor's dtype (weak promotion), so
``x * 0.5`` never silently upcasts a float32 model.

Everything is vectorised NumPy — per the optimisation guides, no Python
loops inside kernels; convolutions (in :mod:`repro.ml.functional`) lower
to im2col matmuls and act as (eager) boundary ops for the lazy graph.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.ml.engine import state as _engine_state
from repro.ml.engine.graph import LazyExpr
from repro.ml.engine.stats import STATS as _STATS

ArrayLike = Union["Tensor", np.ndarray, float, int, list]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _eager(arr: np.ndarray) -> np.ndarray:
    """Count one eager op + its output allocation when stats are on."""
    st = _STATS
    if st.enabled:
        st.eager_ops += 1
        st.eager_alloc_bytes += arr.nbytes
    return arr


class Tensor:
    """A differentiable array (realized or lazily recorded)."""

    __slots__ = ("_data", "_lazy", "grad", "requires_grad", "_backward",
                 "_prev", "name")
    __array_priority__ = 100  # numpy defers binary ops to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data._lazy if data._data is None else data._data
        if isinstance(data, LazyExpr):
            self._data: Optional[np.ndarray] = None
            self._lazy: Optional[LazyExpr] = data
        else:
            arr = np.asarray(data)
            if arr.dtype.kind != "f":
                # Integers/bools promote (gradients live in a float
                # domain); float32/float16 are preserved as-is.
                arr = arr.astype(np.float64)
            self._data = arr
            self._lazy = None
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Callable[[], None] = lambda: None
        self._prev = _prev
        self.name = name

    # -- lazy plumbing ---------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The realized ndarray (forces lazy evaluation on demand)."""
        d = self._data
        if d is None:
            d = self._lazy.realize()
            self._data = d
        return d

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._lazy = None          # any recorded expr is stale now

    def _payload(self) -> LazyExpr:
        """This tensor as a lazy-graph input (memoized leaf if realized)."""
        lz = self._lazy
        if lz is None:
            lz = LazyExpr.leaf(self._data)
            self._lazy = lz
        return lz

    @property
    def realized(self) -> bool:
        return self._data is not None

    def realize(self) -> "Tensor":
        """Force materialization (no-op in eager mode)."""
        _ = self.data
        return self

    def _fwd(self, op: str, *others: "Tensor", **kwargs) -> object:
        """Forward payload for a primitive op: LazyExpr (lazy) or None
        (eager — caller computes the ndarray inline)."""
        if _engine_state.lazy:
            return LazyExpr.make(
                op, (self._payload(),) + tuple(t._payload() for t in others),
                **kwargs)
        return None

    # -- introspection --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        d = self._data
        return d.shape if d is not None else self._lazy.shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        d = self._data
        return d.size if d is not None else self._lazy.size

    @property
    def dtype(self):
        d = self._data
        return d.dtype if d is not None else self._lazy.dtype

    def __len__(self) -> int:
        shape = self.shape
        if not shape:
            raise TypeError("len() of unsized object")
        return shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self._lazy if self._data is None else self._data,
                      requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd engine -------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode accumulation from this tensor."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=self.data.dtype).reshape(self.shape)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _needs_grad(*tensors: "Tensor") -> bool:
        return any(t.requires_grad for t in tensors)

    @staticmethod
    def as_tensor(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def _coerce(self, x: ArrayLike) -> "Tensor":
        """Like :meth:`as_tensor`, but a python/0-d numeric scalar adopts
        this tensor's float dtype (weak promotion — a literal constant
        must not upcast a float32 graph to float64)."""
        if isinstance(x, Tensor):
            return x
        arr = np.asarray(x)
        if arr.ndim == 0 and arr.dtype.kind in "bif" and self.dtype.kind == "f":
            return Tensor(arr.astype(self.dtype))
        return Tensor(arr)

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        rg = self.requires_grad or other.requires_grad
        data = self._fwd("add", other)
        if data is None:
            data = _eager(self.data + other.data)
        out = Tensor(data, requires_grad=rg,
                     _prev=(self, other) if rg else ())
        if rg:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(out.grad, other.shape))

            out._backward = backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        rg = self.requires_grad or other.requires_grad
        data = self._fwd("mul", other)
        if data is None:
            data = _eager(self.data * other.data)
        out = Tensor(data, requires_grad=rg,
                     _prev=(self, other) if rg else ())
        if rg:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad * other.data,
                                                 self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(out.grad * self.data,
                                                  other.shape))

            out._backward = backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __neg__(self) -> "Tensor":
        rg = self.requires_grad
        data = self._fwd("neg")
        if data is None:
            data = _eager(-self.data)
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                self._accumulate(-out.grad)

            out._backward = backward
        return out

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        rg = self.requires_grad or other.requires_grad
        data = self._fwd("div", other)
        if data is None:
            data = _eager(self.data / other.data)
        out = Tensor(data, requires_grad=rg,
                     _prev=(self, other) if rg else ())
        if rg:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad / other.data,
                                                 self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(
                        -out.grad * self.data / (other.data ** 2),
                        other.shape))

            out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        rg = self.requires_grad
        data = self._fwd("pow", exponent=exponent)
        if data is None:
            data = _eager(self.data ** exponent)
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                self._accumulate(out.grad * exponent
                                 * self.data ** (exponent - 1))

            out._backward = backward
        return out

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        if self.ndim == 0 or other.ndim == 0:
            raise ValueError("matmul does not support 0-d operands")
        # NumPy semantics for 1-D operands: lift, contract, squeeze.  The
        # lift runs through autograd reshapes, so unbroadcast gradients
        # come out right for vec·mat, mat·vec and vec·vec for free.
        a = self.reshape(1, self.shape[0]) if self.ndim == 1 else self
        b = other.reshape(other.shape[0], 1) if other.ndim == 1 else other
        out = a._matmul2d(b)
        if self.ndim == 1 and other.ndim == 1:
            return out.reshape(())
        if self.ndim == 1:
            return out.reshape(out.shape[:-2] + out.shape[-1:])
        if other.ndim == 1:
            return out.reshape(out.shape[:-1])
        return out

    def _matmul2d(self, other: "Tensor") -> "Tensor":
        """Batched matmul, both operands of ndim >= 2."""
        rg = self.requires_grad or other.requires_grad
        data = self._fwd("matmul", other)
        if data is None:
            data = _eager(self.data @ other.data)
        out = Tensor(data, requires_grad=rg,
                     _prev=(self, other) if rg else ())
        if rg:
            def backward() -> None:
                g = out.grad
                a, b = self.data, other.data
                if self.requires_grad:
                    ga = g @ np.swapaxes(b, -1, -2)
                    self._accumulate(unbroadcast(ga, a.shape))
                if other.requires_grad:
                    gb = np.swapaxes(a, -1, -2) @ g
                    other._accumulate(unbroadcast(gb, b.shape))

            out._backward = backward
        return out

    # -- elementwise nonlinearities ------------------------------------------------
    def _unary(self, op: str, eager_fn, backward_fn, **kwargs) -> "Tensor":
        """Shared scaffold: forward via engine or ``eager_fn(ndarray)``,
        backward via ``backward_fn(self, out)`` (deferred — nothing reads
        ``.data`` until gradients actually flow)."""
        rg = self.requires_grad
        data = self._fwd(op, **kwargs)
        if data is None:
            data = _eager(eager_fn(self.data))
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                self._accumulate(backward_fn(self, out))

            out._backward = backward
        return out

    def exp(self) -> "Tensor":
        return self._unary("exp", np.exp,
                           lambda t, out: out.grad * out.data)

    def log(self) -> "Tensor":
        return self._unary("log", np.log,
                           lambda t, out: out.grad / t.data)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return self._unary("tanh", np.tanh,
                           lambda t, out: out.grad * (1.0 - out.data ** 2))

    def sigmoid(self) -> "Tensor":
        return self._unary(
            "sigmoid", lambda d: 1.0 / (1.0 + np.exp(-d)),
            lambda t, out: out.grad * out.data * (1.0 - out.data))

    def relu(self) -> "Tensor":
        return self._unary("relu", lambda d: d * (d > 0),
                           lambda t, out: out.grad * (t.data > 0))

    def abs(self) -> "Tensor":
        return self._unary("abs", np.abs,
                           lambda t, out: out.grad * np.sign(t.data))

    def clip(self, lo: float, hi: float) -> "Tensor":
        return self._unary(
            "clip", lambda d: np.clip(d, lo, hi),
            lambda t, out: out.grad * ((t.data >= lo) & (t.data <= hi)),
            lo=lo, hi=hi)

    # -- reductions -------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        rg = self.requires_grad
        data = self._fwd("sum", axis=axis, keepdims=keepdims)
        if data is None:
            data = _eager(self.data.sum(axis=axis, keepdims=keepdims))
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                g = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = [1 if i in axes else s
                             for i, s in enumerate(self.shape)]
                    g = g.reshape(shape)
                self._accumulate(np.broadcast_to(g, self.shape).copy())

            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else (
            np.prod([self.shape[a % self.ndim] for a in
                     (axis if isinstance(axis, tuple) else (axis,))])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        rg = self.requires_grad
        data = self._fwd("max", axis=axis, keepdims=keepdims)
        if data is None:
            data = _eager(self.data.max(axis=axis, keepdims=keepdims))
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                g = out.grad
                ref = out.data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = [1 if i in axes else s
                             for i, s in enumerate(self.shape)]
                    g = g.reshape(shape)
                    ref = ref.reshape(shape)
                mask = (self.data == ref)
                # Split gradient evenly among ties (rare but keeps sums exact).
                counts = mask.sum(axis=axis, keepdims=True) \
                    if axis is not None else mask.sum()
                self._accumulate(mask * g / counts)

            out._backward = backward
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    # -- shape manipulation -----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        rg = self.requires_grad
        data = self._fwd("reshape", shape=shape)
        if data is None:
            data = self.data.reshape(shape)
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                self._accumulate(out.grad.reshape(self.shape))

            out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or tuple(reversed(range(self.ndim)))
        axes = tuple(a % self.ndim for a in axes)
        rg = self.requires_grad
        data = self._fwd("transpose", axes=axes)
        if data is None:
            data = self.data.transpose(axes)
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        inverse = np.argsort(axes)
        if rg:
            def backward() -> None:
                self._accumulate(out.grad.transpose(inverse))

            out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        # Boundary op: arbitrary indexing shapes are data-dependent, so
        # this realizes its input rather than recording a lazy node.
        rg = self.requires_grad
        data = self.data[idx]
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                g = np.zeros_like(self.data)
                np.add.at(g, idx, out.grad)
                self._accumulate(g)

            out._backward = backward
        return out

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        rg = any(t.requires_grad for t in tensors)
        out = Tensor(
            np.concatenate([t.data for t in tensors], axis=axis),
            requires_grad=rg,
            _prev=tuple(tensors) if rg else (),
        )
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        if rg:
            def backward() -> None:
                for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    if t.requires_grad:
                        sl = [slice(None)] * out.ndim
                        sl[axis] = slice(int(start), int(stop))
                        t._accumulate(out.grad[tuple(sl)])

            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        rg = any(t.requires_grad for t in tensors)
        out = Tensor(
            np.stack([t.data for t in tensors], axis=axis),
            requires_grad=rg,
            _prev=tuple(tensors) if rg else (),
        )

        if rg:
            def backward() -> None:
                for i, t in enumerate(tensors):
                    if t.requires_grad:
                        t._accumulate(np.take(out.grad, i, axis=axis))

            out._backward = backward
        return out

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically (NCHW images)."""
        if pad == 0:
            return self
        rg = self.requires_grad
        data = self._fwd("pad2d", pad=pad)
        if data is None:
            widths = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
            data = _eager(np.pad(self.data, widths))
        out = Tensor(data, requires_grad=rg, _prev=(self,) if rg else ())
        if rg:
            def backward() -> None:
                sl = tuple([slice(None)] * (self.ndim - 2)
                           + [slice(pad, -pad), slice(pad, -pad)])
                self._accumulate(out.grad[sl])

            out._backward = backward
        return out


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False, dtype=np.float64) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=np.float64) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)
