"""Reverse-mode autodiff on NumPy arrays.

The DL substrate of this reproduction (the paper's TensorFlow/Keras and
pyTorch stand-in).  A :class:`Tensor` wraps an ``ndarray``; operations build
a DAG of closures and :meth:`Tensor.backward` runs reverse topological
accumulation.  All arithmetic is broadcasting-aware: gradients are summed
back over broadcast dimensions (:func:`unbroadcast`).

Everything is vectorised NumPy — per the optimisation guides, no Python
loops inside kernels; convolutions (in :mod:`repro.ml.functional`) lower to
im2col matmuls.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # numpy defers binary ops to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind != "f":
            arr = arr.astype(np.float64)
        self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Callable[[], None] = lambda: None
        self._prev = _prev
        self.name = name

    # -- introspection --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd engine -------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode accumulation from this tensor."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=self.data.dtype).reshape(self.shape)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _needs_grad(*tensors: "Tensor") -> bool:
        return any(t.requires_grad for t in tensors)

    @staticmethod
    def as_tensor(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=Tensor._needs_grad(self, other),
            _prev=(self, other),
        )

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(out.grad, other.shape))

        out._backward = backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=Tensor._needs_grad(self, other),
            _prev=(self, other),
        )

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(out.grad * self.data, other.shape))

        out._backward = backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = backward
        return out

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=Tensor._needs_grad(self, other),
            _prev=(self, other),
        )

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(
                    -out.grad * self.data / (other.data ** 2), other.shape))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(self.data ** exponent, requires_grad=self.requires_grad,
                     _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires operands of ndim >= 2")
        out = Tensor(
            self.data @ other.data,
            requires_grad=Tensor._needs_grad(self, other),
            _prev=(self, other),
        )

        def backward() -> None:
            g = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                ga = g @ np.swapaxes(b, -1, -2)
                self._accumulate(unbroadcast(ga, a.shape))
            if other.requires_grad:
                gb = np.swapaxes(a, -1, -2) @ g
                other._accumulate(unbroadcast(gb, b.shape))

        out._backward = backward
        return out

    # -- elementwise nonlinearities ------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor(np.exp(self.data), requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = Tensor(np.tanh(self.data), requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(sig, requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = Tensor(np.abs(self.data), requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        out._backward = backward
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        out = Tensor(np.clip(self.data, lo, hi),
                     requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out._backward = backward
        return out

    # -- reductions -------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims),
                     requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else (
            np.prod([self.shape[a % self.ndim] for a in
                     (axis if isinstance(axis, tuple) else (axis,))])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            ref = out.data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
                ref = ref.reshape(shape)
            mask = (self.data == ref)
            # Split gradient evenly among ties (rare but keeps sums exact).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        out._backward = backward
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    # -- shape manipulation -----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), requires_grad=self.requires_grad,
                     _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or tuple(reversed(range(self.ndim)))
        out = Tensor(self.data.transpose(axes), requires_grad=self.requires_grad,
                     _prev=(self,))
        inverse = np.argsort(axes)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out = Tensor(self.data[idx], requires_grad=self.requires_grad, _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, idx, out.grad)
                self._accumulate(g)

        out._backward = backward
        return out

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out = Tensor(
            np.concatenate([t.data for t in tensors], axis=axis),
            requires_grad=any(t.requires_grad for t in tensors),
            _prev=tuple(tensors),
        )
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward() -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * out.ndim
                    sl[axis] = slice(int(start), int(stop))
                    t._accumulate(out.grad[tuple(sl)])

        out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out = Tensor(
            np.stack([t.data for t in tensors], axis=axis),
            requires_grad=any(t.requires_grad for t in tensors),
            _prev=tuple(tensors),
        )

        def backward() -> None:
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(out.grad, i, axis=axis))

        out._backward = backward
        return out

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically (NCHW images)."""
        if pad == 0:
            return self
        widths = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out = Tensor(np.pad(self.data, widths), requires_grad=self.requires_grad,
                     _prev=(self,))

        def backward() -> None:
            if self.requires_grad:
                sl = tuple([slice(None)] * (self.ndim - 2)
                           + [slice(pad, -pad), slice(pad, -pad)])
                self._accumulate(out.grad[sl])

        out._backward = backward
        return out


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
