"""Simulated MPI for the MSA reproduction.

An in-process SPMD MPI implementation with the mpi4py API flavour: lowercase
methods (``send``/``recv``/``bcast``/``allreduce``) communicate generic
Python objects, uppercase methods (``Send``/``Recv``/``Bcast``/``Allreduce``)
communicate NumPy buffers in place.

Two things distinguish it from a toy:

* **Collective algorithms are real.**  Ring allreduce, recursive doubling,
  Rabenseifner reduce-scatter+allgather, binomial-tree broadcast and
  dissemination barrier are implemented on top of point-to-point messaging
  (:mod:`repro.mpi.collectives`), exactly the algorithms Horovod and MPI
  libraries use on the systems in the paper.
* **Every rank carries a simulated clock.**  Messages piggyback send
  timestamps; a receive advances the receiver to
  ``max(local, send_time + link_cost)`` (a conservative PDES logical clock).
  Running a distributed algorithm therefore yields both its *result* and its
  *simulated time* on a chosen fabric — this is how laptop runs regenerate
  booster-scale behaviour.

The FPGA Global Collective Engine of the ESB module (Fig. 1) is modelled in
:mod:`repro.mpi.gce`.
"""

from repro.mpi.runtime import run_spmd, SpmdFailure
from repro.mpi.comm import Communicator, Request, ReduceOp, ANY_SOURCE, ANY_TAG
from repro.mpi.transport import Transport, RankState
from repro.mpi.gce import GlobalCollectiveEngine, gce_allreduce
from repro.mpi.modular import ModularCostModel, run_modular_spmd

__all__ = [
    "run_spmd",
    "SpmdFailure",
    "Communicator",
    "Request",
    "ReduceOp",
    "ANY_SOURCE",
    "ANY_TAG",
    "Transport",
    "RankState",
    "GlobalCollectiveEngine",
    "gce_allreduce",
    "ModularCostModel",
    "run_modular_spmd",
]
