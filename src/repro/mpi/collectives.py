"""Collective algorithms implemented over point-to-point messaging.

These are the algorithms actually used by Horovod and MPI libraries on the
paper's systems:

* **ring allreduce** — bandwidth-optimal; Horovod's default for large
  gradient tensors (reduce-scatter ring followed by allgather ring),
* **recursive doubling** — latency-optimal allreduce for small payloads and
  arbitrary reducible Python objects,
* **binomial tree** broadcast / reduce,
* **ring allgather**,
* **dissemination barrier**.

All functions take a :class:`~repro.mpi.comm.Communicator` and a
pre-allocated internal tag; they are invoked through the communicator's
high-level methods, which handle algorithm selection.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.mpi.comm import Communicator, ReduceOp


def dissemination_barrier(comm: Communicator, tag: int) -> None:
    """Dissemination barrier: ceil(log2(p)) rounds of pairwise signalling."""
    p = comm.size
    if p == 1:
        return
    rounds = math.ceil(math.log2(p))
    for k in range(rounds):
        dist = 1 << k
        dest = (comm.rank + dist) % p
        src = (comm.rank - dist) % p
        comm._send_raw(dest, None, tag + k)
        comm._recv_raw(source=src, tag=tag + k)


def binomial_bcast(comm: Communicator, obj: Any, root: int, tag: int) -> Any:
    """Binomial-tree broadcast rooted at ``root``."""
    p = comm.size
    if p == 1:
        return obj
    # Work in a rotated rank space where the root is virtual rank 0.  A
    # non-root receives from its parent at its lowest set bit, then forwards
    # to children at all smaller bits; the root forwards at every bit.
    vrank = (comm.rank - root) % p
    if vrank == 0:
        value = obj
        mask = 1
        while mask < p:
            mask <<= 1
    else:
        mask = 1
        while not (vrank & mask):
            mask <<= 1
        parent = ((vrank - mask) + root) % p
        value = comm._recv_raw(source=parent, tag=tag).payload
    m = mask >> 1
    while m > 0:
        child = vrank + m
        if child < p:
            comm._send_raw((child + root) % p, value, tag)
        m >>= 1
    return value


def binomial_reduce(comm: Communicator, obj: Any, op: str, root: int, tag: int) -> Any:
    """Binomial-tree reduction to ``root`` (returns result at root, None elsewhere)."""
    p = comm.size
    fn = ReduceOp.func(op)
    vrank = (comm.rank - root) % p
    acc = obj
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % p
            comm._send_raw(parent, acc, tag)
            break
        partner = vrank | mask
        if partner < p:
            incoming = comm._recv_raw(source=(partner + root) % p, tag=tag).payload
            acc = fn(acc, incoming)
        mask <<= 1
    return acc if comm.rank == root else None


def recursive_doubling_allreduce(comm: Communicator, obj: Any, op: str, tag: int) -> Any:
    """Latency-optimal allreduce for any reducible object.

    Handles non-power-of-two sizes with the standard fold-in/fold-out trick:
    excess ranks first send their contribution to a partner, sit out the
    doubling rounds, and receive the final result afterwards.
    """
    p = comm.size
    if p == 1:
        return obj
    fn = ReduceOp.func(op)
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    acc = obj
    # Fold-in: ranks [0, 2*rem) pair up; odd ones contribute and retire.
    if comm.rank < 2 * rem:
        if comm.rank % 2 == 1:
            comm._send_raw(comm.rank - 1, acc, tag)
            new_rank = -1
        else:
            incoming = comm._recv_raw(source=comm.rank + 1, tag=tag).payload
            acc = fn(acc, incoming)
            new_rank = comm.rank // 2
    else:
        new_rank = comm.rank - rem
    # Doubling rounds among pof2 virtual ranks.
    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            partner_v = new_rank ^ mask
            partner = partner_v * 2 if partner_v < rem else partner_v + rem
            comm._send_raw(partner, acc, tag + 1 + mask)
            incoming = comm._recv_raw(source=partner, tag=tag + 1 + mask).payload
            acc = fn(acc, incoming)
            mask <<= 1
    # Fold-out: retired odd ranks get the result back.
    if comm.rank < 2 * rem:
        if comm.rank % 2 == 0:
            comm._send_raw(comm.rank + 1, acc, tag + 1 + pof2)
        else:
            acc = comm._recv_raw(source=comm.rank - 1, tag=tag + 1 + pof2).payload
    return acc


def ring_allgather(comm: Communicator, obj: Any, tag: int) -> list:
    """Ring allgather: p-1 steps, each forwarding the next rank's block."""
    p = comm.size
    out: list[Any] = [None] * p
    out[comm.rank] = obj
    if p == 1:
        return out
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    carry_idx = comm.rank
    for _ in range(p - 1):
        comm._send_raw(right, (carry_idx, out[carry_idx]), tag)
        idx, value = comm._recv_raw(source=left, tag=tag).payload
        out[idx] = value
        carry_idx = idx
    return out


def ring_allreduce_inplace(comm: Communicator, array: np.ndarray, tag: int) -> None:
    """Bandwidth-optimal ring allreduce (SUM) on a NumPy array, in place.

    Phase 1 (reduce-scatter): p-1 steps; after them, each rank holds the
    fully reduced chunk ``(rank+1) % p``.  Phase 2 (allgather): p-1 steps
    circulating reduced chunks.  This is Horovod's core algorithm.
    """
    p = comm.size
    if p == 1:
        return
    flat = array.reshape(-1)
    n = flat.shape[0]
    if n < p:
        raise ValueError(f"array of {n} elements too small for {p}-rank ring")
    # Chunk boundaries (near-equal split).
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    chunks = [(int(bounds[i]), int(bounds[i + 1])) for i in range(p)]
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p

    # Reduce-scatter ring.
    for step in range(p - 1):
        send_idx = (comm.rank - step) % p
        recv_idx = (comm.rank - step - 1) % p
        s0, s1 = chunks[send_idx]
        comm._send_raw(right, flat[s0:s1].copy(), tag + step)
        incoming = comm._recv_raw(source=left, tag=tag + step).payload
        r0, r1 = chunks[recv_idx]
        flat[r0:r1] += incoming

    # Allgather ring.
    base = tag + p
    for step in range(p - 1):
        send_idx = (comm.rank - step + 1) % p
        recv_idx = (comm.rank - step) % p
        s0, s1 = chunks[send_idx]
        comm._send_raw(right, flat[s0:s1].copy(), base + step)
        incoming = comm._recv_raw(source=left, tag=base + step).payload
        r0, r1 = chunks[recv_idx]
        flat[r0:r1] = incoming


def ring_reduce_scatter(
    comm: Communicator, array: np.ndarray, tag: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Ring reduce-scatter (SUM): each rank ends with one fully reduced
    chunk of the flattened buffer.  Returns (chunk, (lo, hi)) where the
    bounds index the flattened array — the building block of ZeRO stage 2's
    gradient sharding.
    """
    p = comm.size
    flat = np.asarray(array, dtype=np.float64).reshape(-1).copy()
    n = flat.shape[0]
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    chunks = [(int(bounds[i]), int(bounds[i + 1])) for i in range(p)]
    if p == 1:
        return flat, (0, n)
    if n < p:
        raise ValueError(f"array of {n} elements too small for {p}-rank ring")
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    for step in range(p - 1):
        send_idx = (comm.rank - step) % p
        recv_idx = (comm.rank - step - 1) % p
        s0, s1 = chunks[send_idx]
        comm._send_raw(right, flat[s0:s1].copy(), tag + step)
        incoming = comm._recv_raw(source=left, tag=tag + step).payload
        r0, r1 = chunks[recv_idx]
        flat[r0:r1] += incoming
    own = (comm.rank + 1) % p
    lo, hi = chunks[own]
    return flat[lo:hi].copy(), (lo, hi)


def rabenseifner_allreduce(comm: Communicator, array: np.ndarray, tag: int) -> np.ndarray:
    """Reduce-scatter (recursive halving) + allgather (recursive doubling).

    Power-of-two rank counts only; used as an alternative algorithm in the
    GCE comparison bench.  Returns a new array.
    """
    p = comm.size
    flat = array.reshape(-1).copy()
    if p == 1:
        return flat.reshape(array.shape)
    if p & (p - 1):
        raise ValueError("rabenseifner_allreduce requires power-of-two ranks")
    n = flat.shape[0]
    if n < p:
        raise ValueError("array too small")

    # Recursive halving reduce-scatter.  Track this rank's owned interval.
    lo, hi = 0, n
    dist = p // 2
    t = tag
    while dist >= 1:
        group = (comm.rank // dist) % 2  # 0 = lower half owner, 1 = upper
        partner = comm.rank + dist if group == 0 else comm.rank - dist
        mid = (lo + hi) // 2
        if group == 0:
            # Keep lower half, send upper half.
            comm._send_raw(partner, flat[mid:hi].copy(), t)
            incoming = comm._recv_raw(source=partner, tag=t).payload
            flat[lo:mid] += incoming
            hi = mid
        else:
            comm._send_raw(partner, flat[lo:mid].copy(), t)
            incoming = comm._recv_raw(source=partner, tag=t).payload
            flat[mid:hi] += incoming
            lo = mid
        dist //= 2
        t += 1

    # Recursive doubling allgather (reverse the halving).
    dist = 1
    while dist < p:
        group = (comm.rank // dist) % 2
        partner = comm.rank + dist if group == 0 else comm.rank - dist
        span = hi - lo
        comm._send_raw(partner, (lo, flat[lo:hi].copy()), t)
        rlo, block = comm._recv_raw(source=partner, tag=t).payload
        flat[rlo:rlo + block.shape[0]] = block
        lo = min(lo, rlo)
        hi = lo + span + block.shape[0]
        dist *= 2
        t += 1
    return flat.reshape(array.shape)
