"""The communicator: mpi4py-flavoured API over the mailbox transport.

Lowercase methods (``send``, ``recv``, ``bcast``, ``scatter``, ``gather``,
``allgather``, ``reduce``, ``allreduce``, ``alltoall``, ``barrier``)
communicate arbitrary Python objects.  Uppercase methods (``Send``,
``Recv``, ``Bcast``, ``Reduce``, ``Allreduce``, ``Allgather``) operate on
NumPy buffers, filling receive buffers in place — the fast path that
distributed training uses, mirroring mpi4py's convention.

Simulated time: all traffic is charged to each rank's logical clock using
the communicator's :class:`~repro.simnet.costs.CommCostModel` (a fabric
choice, e.g. the booster's InfiniBand HDR).  ``comm.compute(seconds)``
charges modelled computation, so a full training loop produces a faithful
simulated timeline alongside its real numerical results.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.simnet.costs import CommCostModel
from repro.simnet.link import LinkKind
from repro.mpi.transport import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    RankState,
    Transport,
    payload_nbytes,
)


class ReduceOp:
    """Reduction operators for reduce/allreduce (mpi4py's MPI.SUM etc.)."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"
    LAND = "land"
    LOR = "lor"

    _FUNCS: dict[str, Callable[[Any, Any], Any]] = {
        "sum": lambda a, b: a + b,
        "prod": lambda a, b: a * b,
        "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
        "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
        "land": lambda a, b: bool(a) and bool(b),
        "lor": lambda a, b: bool(a) or bool(b),
    }

    @classmethod
    def func(cls, op: str) -> Callable[[Any, Any], Any]:
        try:
            return cls._FUNCS[op]
        except KeyError:
            raise ValueError(f"unknown reduce op {op!r}") from None


#: Default fabric if none is specified: the booster's InfiniBand HDR.
_DEFAULT_COST_MODEL = CommCostModel.of_kind(LinkKind.INFINIBAND_HDR)

#: Tag space partitioning: user tags must stay below this; internal
#: collective traffic uses tags above it.
_INTERNAL_TAG_BASE = 1 << 20


class Request:
    """Completed-immediately request handle (sends are buffered)."""

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> tuple[bool, Any]:
        return True, self._value


class RecvRequest:
    """A genuinely non-blocking receive: matched on wait()/test()."""

    def __init__(self, comm: "Communicator", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    def test(self) -> tuple[bool, Any]:
        """Non-destructively check for a match; completes if present."""
        if self._done:
            return True, self._value
        match = self._comm.transport.probe(
            self._comm._world(self._comm.rank), source=self._source,
            tag=self._tag, context=self._comm.context)
        if match is None:
            return False, None
        return True, self.wait()

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm._recv_raw(
                source=self._source, tag=self._tag).payload
            self._done = True
        return self._value


class Communicator:
    """A process group over a :class:`Transport`.

    ``group`` maps group-local ranks to world ranks; COMM_WORLD uses the
    identity mapping and context 0.
    """

    def __init__(
        self,
        transport: Transport,
        rank: int,
        group: Optional[Sequence[int]] = None,
        context: int = 0,
        cost_model: Optional[CommCostModel] = None,
        integrity: Optional[Any] = None,
    ) -> None:
        self.transport = transport
        self.group = list(group) if group is not None else list(range(transport.world_size))
        if rank not in range(len(self.group)):
            raise ValueError(f"rank {rank} outside group of size {len(self.group)}")
        self.rank = rank
        self.size = len(self.group)
        self.context = context
        self.cost_model = cost_model or _DEFAULT_COST_MODEL
        #: Optional :class:`~repro.resilience.integrity.IntegrityContext`
        #: shared world-wide; wraps every message in a checksummed envelope
        #: and/or injects the fault plan's silent message corruption.
        #: Inherited by communicators derived via Split/shrink/Dup.
        self.integrity = integrity
        self.state: RankState = transport.states[self.group[rank]]
        self._coll_seq = 0  # per-communicator collective sequence for tag isolation
        # Hot-path caches: every message pays _send_raw/_recv_raw, so the
        # per-call attribute/hasattr/import lookups are hoisted here.  The
        # cost model is immutable per communicator (``with_cost_model``
        # builds a new one), so caching its methods is safe.
        self._ptp_between = getattr(self.cost_model, "ptp_between", None)
        self._ptp = self.cost_model.ptp
        self._alpha = self.cost_model.alpha
        if integrity is not None:
            from repro.resilience.integrity import TRUSTED_CRC, Envelope

            self._envelope_cls = Envelope
            self._trusted_crc = TRUSTED_CRC

    # -- mpi4py-style accessors ---------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def sim_time(self) -> float:
        """This rank's simulated clock (seconds)."""
        return self.state.sim_time

    def compute(self, seconds: float) -> None:
        """Charge modelled local computation to the simulated clock."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        tracer = telemetry.get_tracer()
        if tracer.enabled:
            tracer.record("compute", "compute", self.state.sim_time, seconds,
                          track="mpi", lane=self._lane())
        self.state.advance(seconds)
        self.state.compute_time += seconds

    # -- telemetry ------------------------------------------------------------
    def _lane(self) -> str:
        """This rank's trace lane, keyed by *world* rank so sub-communicator
        traffic lands on the same timeline row as the rank's other work."""
        return f"rank{self._world(self.rank):03d}"

    @contextmanager
    def _traced(self, op: str, obj: Any = None):
        """Span + byte/call counters around one communication operation.

        Only the *public* entry points are traced — the point-to-point
        messages a collective algorithm issues internally go through
        ``_send_raw``/``_recv_raw`` and are charged to the enclosing span,
        so bytes are never double counted.
        """
        tracer = telemetry.get_tracer()
        if not tracer.enabled:
            yield
            return
        nbytes = payload_nbytes(obj) if obj is not None else 0
        start = self.state.sim_time
        try:
            yield
        finally:
            tracer.record(op, "comm", start, self.state.sim_time - start,
                          track="mpi", lane=self._lane(), nbytes=nbytes,
                          comm_size=self.size)
            registry = telemetry.get_registry()
            registry.counter("collective_calls_total", op=op).inc()
            if nbytes:
                registry.counter("collective_bytes", op=op).inc(nbytes)

    # -- internal point-to-point --------------------------------------------
    def _world(self, grp_rank: int) -> int:
        return self.group[grp_rank]

    def _send_raw(self, dest: int, obj: Any, tag: int) -> None:
        state = self.state
        group = self.group
        nbytes = payload_nbytes(obj)
        if self.integrity is not None:
            # Integrity layer: possibly corrupt in transit (fault plan) and,
            # when verification is on, wrap in a checksummed envelope.  The
            # byte accounting stays that of the logical payload — the CRC
            # header is noise next to any tensor.
            obj = self.integrity.outbound(obj, group[self.rank], group[dest])
            if type(obj) is self._envelope_cls:
                if obj.crc == self._trusted_crc:
                    state.envelope_fastpath += 1
                else:
                    state.envelope_checksums += 1
        if self._ptp_between is not None:
            # Modular placement: cost depends on the endpoints' modules.
            cost = self._ptp_between(group[self.rank], group[dest], nbytes)
        else:
            cost = self._ptp(nbytes)
        send_time = state.sim_time
        state.bytes_sent += nbytes
        state.messages_sent += 1
        # Sender-side overhead: the message latency term; transmission
        # overlaps with subsequent computation (eager/buffered send).
        alpha = self._alpha
        state.advance(alpha)
        state.comm_time += alpha
        msg = Message(
            source=self.rank,
            tag=tag,
            context=self.context,
            payload=obj,
            send_time=send_time + cost,  # arrival time for the receiver
            nbytes=nbytes,
        )
        self.transport.put(group[dest], msg)

    def _recv_raw(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        msg = self.transport.get(
            self._world(self.rank), source=source, tag=tag, context=self.context
        )
        state = self.state
        before = state.sim_time
        state.observe(msg.send_time)
        state.comm_time += state.sim_time - before
        state.bytes_received += msg.nbytes
        state.messages_received += 1
        if self.integrity is not None and type(msg.payload) is self._envelope_cls:
            trusted = msg.payload.crc == self._trusted_crc
            payload, penalty = self.integrity.inbound(msg.payload)
            msg.payload = payload
            if trusted:
                state.envelope_fastpath += 1
            else:
                state.envelope_checksums += 1
            if penalty > 0.0:
                # Detected corruption: charge the retransmission to the
                # receiver's simulated clock.
                state.advance(penalty)
                state.comm_time += penalty
        return msg

    # -- lowercase object API -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_user_tag(tag)
        with self._traced("send", obj):
            self._send_raw(dest, obj, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        if tag != ANY_TAG:
            self._check_user_tag(tag)
        with self._traced("recv"):
            return self._recv_raw(source=source, tag=tag).payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "RecvRequest":
        """Non-blocking receive; complete it with ``wait()`` or ``test()``."""
        if tag != ANY_TAG:
            self._check_user_tag(tag)
        return RecvRequest(self, source, tag)

    def sendrecv(
        self, sendobj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        self.send(sendobj, dest, sendtag)
        return self.recv(source=source, tag=recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return (
            self.transport.probe(
                self._world(self.rank), source=source, tag=tag, context=self.context
            )
            is not None
        )

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if not (0 <= tag < _INTERNAL_TAG_BASE):
            raise ValueError(f"user tag must be in [0, {_INTERNAL_TAG_BASE})")

    def _next_coll_tag(self) -> int:
        # Collectives on a communicator are called in the same order by all
        # ranks (MPI semantics), so a local sequence number agrees globally.
        # Each collective owns a block of 4096 tags: multi-step algorithms
        # (ring, recursive doubling) use tag offsets, and ranks may be in
        # adjacent collectives at the same instant.
        self._coll_seq += 1
        return _INTERNAL_TAG_BASE + self._coll_seq * 4096

    # -- collectives (object flavour) ------------------------------------------
    def barrier(self) -> None:
        from repro.mpi import collectives

        with self._traced("barrier"):
            collectives.dissemination_barrier(self, self._next_coll_tag())

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.mpi import collectives

        with self._traced("bcast", obj):
            return collectives.binomial_bcast(self, obj, root,
                                              self._next_coll_tag())

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        tag = self._next_coll_tag()
        with self._traced("scatter", objs):
            if self.rank == root:
                if objs is None or len(objs) != self.size:
                    raise ValueError("root must pass one object per rank")
                for dst in range(self.size):
                    if dst != root:
                        self._send_raw(dst, objs[dst], tag)
                return objs[root]
            return self._recv_raw(source=root, tag=tag).payload

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        tag = self._next_coll_tag()
        with self._traced("gather", obj):
            if self.rank == root:
                out: list[Any] = [None] * self.size
                out[root] = obj
                for _ in range(self.size - 1):
                    msg = self._recv_raw(source=ANY_SOURCE, tag=tag)
                    out[msg.source] = msg.payload
                return out
            self._send_raw(root, obj, tag)
            return None

    def allgather(self, obj: Any) -> list:
        from repro.mpi import collectives

        with self._traced("allgather", obj):
            return collectives.ring_allgather(self, obj,
                                              self._next_coll_tag())

    def alltoall(self, objs: Sequence[Any]) -> list:
        if len(objs) != self.size:
            raise ValueError("alltoall needs one object per rank")
        tag = self._next_coll_tag()
        with self._traced("alltoall", objs):
            out: list[Any] = [None] * self.size
            out[self.rank] = objs[self.rank]
            # Rotating pairwise schedule: step k sends to rank+k, receives
            # from rank-k — deadlock-free because sends are buffered.
            for step in range(1, self.size):
                send_to = (self.rank + step) % self.size
                recv_from = (self.rank - step) % self.size
                self._send_raw(send_to, objs[send_to], tag)
                msg = self._recv_raw(source=recv_from, tag=tag)
                out[recv_from] = msg.payload
            return out

    def reduce(self, obj: Any, op: str = ReduceOp.SUM, root: int = 0) -> Any:
        from repro.mpi import collectives

        with self._traced("reduce", obj):
            return collectives.binomial_reduce(self, obj, op, root,
                                               self._next_coll_tag())

    def allreduce(self, obj: Any, op: str = ReduceOp.SUM) -> Any:
        from repro.mpi import collectives

        with self._traced("allreduce", obj):
            if isinstance(obj, np.ndarray) and obj.size >= self.size \
                    and op == ReduceOp.SUM:
                out = obj.astype(np.result_type(obj.dtype, np.float64),
                                 copy=True) \
                    if obj.dtype.kind in "fc" else obj.copy()
                collectives.ring_allreduce_inplace(self, out,
                                                   self._next_coll_tag())
                return out
            return collectives.recursive_doubling_allreduce(
                self, obj, op, self._next_coll_tag()
            )

    def reduce_scatter(self, array: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        """SUM-reduce a buffer and scatter chunks: each rank gets its fully
        reduced slice plus the (lo, hi) bounds into the flattened buffer."""
        from repro.mpi import collectives

        with self._traced("reduce_scatter", array):
            return collectives.ring_reduce_scatter(
                self, array, self._next_coll_tag())

    def scan(self, obj: Any, op: str = ReduceOp.SUM) -> Any:
        """Inclusive prefix reduction."""
        tag = self._next_coll_tag()
        with self._traced("scan", obj):
            fn = ReduceOp.func(op)
            acc = obj
            if self.rank > 0:
                prev = self._recv_raw(source=self.rank - 1, tag=tag).payload
                acc = fn(prev, obj)
            if self.rank < self.size - 1:
                self._send_raw(self.rank + 1, acc, tag)
            return acc

    # -- uppercase buffer API ----------------------------------------------------
    @staticmethod
    def _as_array(buf: np.ndarray) -> np.ndarray:
        if not isinstance(buf, np.ndarray):
            raise TypeError("uppercase methods require numpy arrays")
        return buf

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self.send(self._as_array(buf).copy(), dest, tag)

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        data = self.recv(source=source, tag=tag)
        arr = self._as_array(buf)
        arr[...] = np.asarray(data).reshape(arr.shape)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        arr = self._as_array(buf)
        out = self.bcast(arr if self.rank == root else None, root=root)
        if self.rank != root:
            arr[...] = np.asarray(out).reshape(arr.shape)

    def Reduce(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               op: str = ReduceOp.SUM, root: int = 0) -> None:
        result = self.reduce(self._as_array(sendbuf).copy(), op=op, root=root)
        if self.rank == root:
            if recvbuf is None:
                raise ValueError("root must pass recvbuf")
            recvbuf[...] = np.asarray(result).reshape(recvbuf.shape)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: str = ReduceOp.SUM) -> None:
        result = self.allreduce(self._as_array(sendbuf).copy(), op=op)
        recvbuf[...] = np.asarray(result).reshape(recvbuf.shape)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        parts = self.allgather(self._as_array(sendbuf).copy())
        stacked = np.concatenate([np.asarray(p).ravel() for p in parts])
        recvbuf.ravel()[...] = stacked

    # -- communicator management -----------------------------------------------
    def Split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """Partition the communicator by ``color``; order ranks by ``key``.

        Returns None for ranks passing a negative color (MPI_UNDEFINED).
        """
        entries = self.allgather((color, key, self.rank))
        # Same context must be agreed by every member: derive from rank 0's
        # allocation and broadcast alongside (deterministic: one allocation
        # per color, done identically on all ranks via sorted colors).
        colors = sorted({c for c, _, _ in entries if c >= 0})
        base_ctx = self.bcast(
            self.transport.allocate_context() if self.rank == 0 else None, root=0
        )
        if color < 0:
            return None
        members = sorted(
            [(k, r) for c, k, r in entries if c == color], key=lambda kr: (kr[0], kr[1])
        )
        group = [self._world(r) for _, r in members]
        new_rank = [r for _, r in members].index(self.rank)
        ctx = base_ctx * 4096 + colors.index(color)
        return Communicator(
            self.transport, new_rank, group=group, context=ctx,
            cost_model=self.cost_model, integrity=self.integrity,
        )

    def shrink(self, dead_ranks: Sequence[int]) -> Optional["Communicator"]:
        """Collectively rebuild the communicator without ``dead_ranks``.

        The ULFM-style recovery step elastic training uses: every member of
        the *current* communicator (including the ranks about to leave)
        calls ``shrink``; survivors get a new communicator with ranks
        renumbered by their old rank order, departing ranks get ``None``.

        ``dead_ranks`` are group-local ranks of this communicator.
        """
        dead = set(dead_ranks)
        if not dead <= set(range(self.size)):
            raise ValueError(f"dead ranks {sorted(dead)} outside group "
                             f"of size {self.size}")
        if len(dead) >= self.size:
            raise ValueError("cannot shrink away every rank")
        return self.Split(-1 if self.rank in dead else 0, key=self.rank)

    def Dup(self) -> "Communicator":
        ctx = self.bcast(
            self.transport.allocate_context() if self.rank == 0 else None, root=0
        )
        return Communicator(
            self.transport, self.rank, group=list(self.group),
            context=ctx * 4096 + 4095, cost_model=self.cost_model,
            integrity=self.integrity,
        )

    def with_cost_model(self, cost_model: CommCostModel) -> "Communicator":
        """Same group/context, different fabric model (e.g. GCE offload)."""
        clone = Communicator(
            self.transport, self.rank, group=list(self.group),
            context=self.context, cost_model=cost_model,
            integrity=self.integrity,
        )
        clone._coll_seq = self._coll_seq
        return clone
