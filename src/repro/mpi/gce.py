"""Global Collective Engine (GCE) — FPGA collective offload of the ESB.

The paper (Sec. II-A, Fig. 1) describes the ESB's network fabric as
integrating an FPGA-based Global Collective Engine that executes common MPI
collectives (reductions in particular) *in hardware*.  Observable effects:

* reductions complete in near-constant time with respect to rank count
  (the fabric reduces in-network, a pipelined tree of switch-resident
  reduction units), and
* per-message software overhead disappears (no p-1 CPU-driven ring steps).

We model the GCE as an alternative collective executor: functionally it
computes the identical result (validated in tests against the software ring),
and its simulated time is ``α_gce + n·β_gce + depth·α_hop`` where depth grows
logarithmically with rank count — the cost of a pipelined in-network tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simnet.costs import CommCostModel
from repro.mpi.comm import Communicator, ReduceOp


@dataclass(frozen=True)
class GlobalCollectiveEngine:
    """Hardware-offload collective model for the ESB fabric.

    Parameters are relative to the host fabric's software path: the FPGA
    pipeline removes the per-step software α and streams at line rate.
    """

    fabric: CommCostModel
    #: Per-collective fixed offload latency (doorbell + descriptor fetch).
    offload_alpha: float = 1.5e-6
    #: In-network per-hop pipeline latency.
    hop_alpha: float = 0.4e-6
    #: Streaming efficiency vs raw link bandwidth (pipelined, near line rate).
    stream_efficiency: float = 0.95
    #: Switch radix of the reduction tree.
    radix: int = 16

    def allreduce_time(self, p: int, nbytes: float) -> float:
        """Simulated time of a GCE-offloaded allreduce."""
        if p < 1:
            raise ValueError("need at least one rank")
        if p == 1:
            return 0.0
        depth = max(1, math.ceil(math.log(p, self.radix)))
        stream = nbytes * self.fabric.beta / self.stream_efficiency
        # Up-tree reduce + down-tree broadcast are pipelined full-duplex
        # (results stream down while data still streams up), so the payload
        # is serialised once; tree propagation costs a hop each way.
        return self.offload_alpha + 2 * depth * self.hop_alpha + stream

    def software_allreduce_time(self, p: int, nbytes: float, algorithm: str = "ring") -> float:
        """Reference software time on the same fabric (for speedup reporting)."""
        from repro.simnet.costs import CollectiveCosts

        return CollectiveCosts(self.fabric).allreduce(p, nbytes, algorithm=algorithm)

    def speedup(self, p: int, nbytes: float, algorithm: str = "ring") -> float:
        hw = self.allreduce_time(p, nbytes)
        if hw == 0.0:
            return 1.0
        return self.software_allreduce_time(p, nbytes, algorithm) / hw


def gce_allreduce(
    comm: Communicator,
    array: np.ndarray,
    gce: GlobalCollectiveEngine,
    op: str = ReduceOp.SUM,
) -> np.ndarray:
    """Functionally exact allreduce with GCE-offload *timing*.

    The numerical result equals the software allreduce (hardware reduction
    units implement the same arithmetic).  The simulated clock of every rank
    is charged the GCE time instead of the software collective's ptp costs:
    we run the reduction through a tree without per-message charging, then
    synchronise clocks explicitly, as the in-network engine does.
    """
    if op != ReduceOp.SUM:
        raise ValueError("the GCE model offloads SUM reductions")
    # Functional phase — use the object tree reduce + bcast for the values,
    # on a zero-cost clone so software ptp costs are not charged.
    free_model = CommCostModel(alpha=0.0, beta=0.0, gamma=0.0)
    quiet = comm.with_cost_model(free_model)
    total = quiet.reduce(array.copy(), op=ReduceOp.SUM, root=0)
    result = quiet.bcast(total, root=0)
    comm._coll_seq = quiet._coll_seq  # keep the collective sequence aligned

    # Timing phase: all ranks enter, the engine completes at
    # max(entry times) + gce_time; every rank leaves at that instant.
    entry_times = quiet.allgather(comm.state.sim_time)
    comm._coll_seq = quiet._coll_seq
    t_done = max(entry_times) + gce.allreduce_time(comm.size, array.nbytes)
    comm.state.observe(t_done)
    return np.asarray(result).reshape(array.shape)
