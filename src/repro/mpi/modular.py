"""Cross-module MPI: ranks distributed over MSA modules.

Fig. 1's defining property is that each module has its own fabric while a
high-performance federation joins them.  For jobs whose ranks span modules
(the paper's 'combinations of MSA module resources'), point-to-point cost
depends on *which* modules the endpoints live in:

* same module → the module fabric's α-β,
* different modules → module fabric out + federation hop + fabric in
  (higher latency, federation-bottlenecked bandwidth).

:class:`ModularCostModel` is a drop-in replacement for
:class:`~repro.simnet.costs.CommCostModel` that the communicator consults
per message; :func:`run_modular_spmd` launches an SPMD world with a
rank→module map.  The E12 bench uses this to show why Horovod jobs are
placed *within* the booster rather than across modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.simnet.costs import CommCostModel
from repro.simnet.link import Link, LinkKind


@dataclass(frozen=True)
class ModularCostModel:
    """Pairwise α-β costs over a rank→module placement.

    Presents the :class:`CommCostModel` interface (``alpha``/``beta``/
    ``gamma``/``ptp``) for homogeneous use, *plus* ``ptp_between`` which the
    communicator prefers when present.  ``alpha``/``beta`` reflect the
    worst (inter-module) path so analytic collective bounds stay safe.
    """

    rank_module: tuple[str, ...]
    module_models: dict[str, CommCostModel]
    federation: CommCostModel
    gamma: float = 5.0e-12

    def __post_init__(self) -> None:
        for module in self.rank_module:
            if module not in self.module_models:
                raise ValueError(f"no fabric model for module {module!r}")

    @classmethod
    def build(
        cls,
        rank_module: Sequence[str],
        module_fabrics: Optional[dict[str, LinkKind]] = None,
        federation_kind: LinkKind = LinkKind.FEDERATION,
    ) -> "ModularCostModel":
        fabrics = module_fabrics or {}
        models = {
            module: CommCostModel.of_kind(
                fabrics.get(module, LinkKind.INFINIBAND_EDR))
            for module in set(rank_module)
        }
        return cls(
            rank_module=tuple(rank_module),
            module_models=models,
            federation=CommCostModel.of_kind(federation_kind),
        )

    # -- CommCostModel-compatible surface ----------------------------------
    @property
    def alpha(self) -> float:
        """Worst-case per-message latency (the inter-module path)."""
        worst_local = max(m.alpha for m in self.module_models.values())
        if len(set(self.rank_module)) > 1:
            return 2 * worst_local + self.federation.alpha
        return worst_local

    @property
    def beta(self) -> float:
        """Worst-case inverse bandwidth (federation bottleneck if spanned)."""
        worst_local = max(m.beta for m in self.module_models.values())
        if len(set(self.rank_module)) > 1:
            return max(worst_local, self.federation.beta)
        return worst_local

    def ptp(self, nbytes: float) -> float:
        return self.alpha + nbytes * self.beta

    # -- the modular part ------------------------------------------------------
    def module_of(self, world_rank: int) -> str:
        return self.rank_module[world_rank]

    def ptp_between(self, src: int, dst: int, nbytes: float) -> float:
        """Cost of one message between two world ranks."""
        m_src = self.rank_module[src]
        m_dst = self.rank_module[dst]
        if m_src == m_dst:
            return self.module_models[m_src].ptp(nbytes)
        # Out through the source fabric, across the federation, in through
        # the destination fabric; bandwidth bottlenecked by the slowest leg.
        a = (self.module_models[m_src].alpha + self.federation.alpha
             + self.module_models[m_dst].alpha)
        b = max(self.module_models[m_src].beta, self.federation.beta,
                self.module_models[m_dst].beta)
        return a + nbytes * b

    def spans_modules(self) -> bool:
        return len(set(self.rank_module)) > 1


def run_modular_spmd(
    fn: Callable,
    rank_module: Sequence[str],
    module_fabrics: Optional[dict[str, LinkKind]] = None,
    args: Sequence = (),
):
    """``run_spmd`` with ranks placed on named MSA modules."""
    from repro.mpi.runtime import run_spmd

    model = ModularCostModel.build(rank_module, module_fabrics)
    return run_spmd(fn, len(rank_module), args=args, cost_model=model)
