"""SPMD runtime: launch one thread per rank, mpiexec-style.

``run_spmd(fn, world_size)`` runs ``fn(comm, *args)`` on every rank and
returns the per-rank results.  A raising rank aborts the world (unblocking
receivers) and the first exception is re-raised in the caller, so test
failures surface instead of deadlocking.

NumPy releases the GIL inside kernels, so ranks genuinely overlap for the
array-heavy workloads this library runs.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Optional, Sequence

from repro.simnet.costs import CommCostModel
from repro.mpi.comm import Communicator
from repro.mpi.transport import Transport, TransportAborted


class SpmdFailure(RuntimeError):
    """Wraps the first exception raised by any rank."""

    def __init__(self, rank: int, original: BaseException, formatted: str) -> None:
        super().__init__(f"rank {rank} failed: {original!r}\n{formatted}")
        self.rank = rank
        self.original = original


def run_spmd(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any] = (),
    cost_model: Optional[CommCostModel] = None,
    rank_args: Optional[Sequence[Sequence[Any]]] = None,
    timeout: Optional[float] = 300.0,
    integrity: Optional[Any] = None,
) -> list[Any]:
    """Execute ``fn(comm, *args)`` on ``world_size`` ranks; return results.

    Parameters
    ----------
    fn:
        The per-rank entry point; receives a :class:`Communicator` first.
    args:
        Extra positional arguments passed identically to every rank.
    rank_args:
        Optional per-rank argument tuples (overrides ``args``).
    cost_model:
        Fabric cost model charged to the simulated clocks.
    timeout:
        Wall-clock safety net per join; ``None`` disables it.
    integrity:
        Optional shared :class:`~repro.resilience.integrity.IntegrityContext`
        installed on every rank's communicator (checksummed envelopes and
        silent-corruption injection).
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if rank_args is not None and len(rank_args) != world_size:
        raise ValueError("rank_args must have one entry per rank")

    transport = Transport(world_size)
    results: list[Any] = [None] * world_size
    errors: list[Optional[SpmdFailure]] = [None] * world_size

    def worker(rank: int) -> None:
        comm = Communicator(transport, rank, cost_model=cost_model,
                            integrity=integrity)
        call_args = rank_args[rank] if rank_args is not None else args
        try:
            results[rank] = fn(comm, *call_args)
        except TransportAborted:
            pass  # secondary failure caused by another rank's abort
        except BaseException as exc:  # noqa: BLE001 — must not deadlock the world
            errors[rank] = SpmdFailure(rank, exc, traceback.format_exc())
            transport.abort()

    if world_size == 1:
        # Fast path: no threads for the degenerate world.
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
            for r in range(world_size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                transport.abort()
                t.join(timeout=5.0)
                raise SpmdFailure(
                    -1, TimeoutError("rank did not finish"), f"thread {t.name} hung"
                )

    for err in errors:
        if err is not None:
            raise err
    return results


def spmd_sim_times(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any] = (),
    cost_model: Optional[CommCostModel] = None,
) -> tuple[list[Any], list[float]]:
    """Like :func:`run_spmd` but also return each rank's final simulated time."""
    transport = Transport(world_size)
    results: list[Any] = [None] * world_size
    errors: list[Optional[SpmdFailure]] = [None] * world_size
    times: list[float] = [0.0] * world_size

    def worker(rank: int) -> None:
        comm = Communicator(transport, rank, cost_model=cost_model)
        try:
            results[rank] = fn(comm, *args)
            times[rank] = comm.sim_time
        except TransportAborted:
            pass
        except BaseException as exc:  # noqa: BLE001
            errors[rank] = SpmdFailure(rank, exc, traceback.format_exc())
            transport.abort()

    if world_size == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), daemon=True)
            for r in range(world_size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for err in errors:
        if err is not None:
            raise err
    return results, times
