"""Thread-safe message transport and per-rank state.

The transport is a set of per-rank mailboxes guarded by a condition
variable.  Messages are addressed by (destination, source, tag, context) —
``context`` isolates communicators produced by ``Split`` from each other,
mirroring MPI context ids.

Message payloads carry the sender's simulated timestamp so receivers can
advance their logical clocks (see :mod:`repro.mpi.comm`).
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.simnet.link import PartitionWindow

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds between abort-flag checks while a recv is blocked.
_POLL_INTERVAL = 0.05


class TransportAborted(RuntimeError):
    """Raised in blocked receivers when another rank has failed."""


def payload_nbytes(obj: Any) -> int:
    """Wire size estimate used by the simulated clock and traffic stats."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable sentinel — charge a small envelope


@dataclass
class Message:
    source: int
    tag: int
    context: int
    payload: Any
    send_time: float
    nbytes: int


@dataclass(frozen=True)
class PartitionSchedule:
    """A NETWORK_PARTITION window applied to the SPMD fabric.

    ``far_ranks`` is one side of the bipartition; a message whose source
    and destination sit on opposite sides while the window is active (on
    the *sender's* simulated clock) stalls until the cut heals, then
    lands after a retransmission burst — TCP-over-a-partition semantics:
    delayed, never silently lost, so collectives finish late instead of
    deadlocking and the zero-loss invariant survives the fault.
    """

    window: PartitionWindow
    far_ranks: frozenset
    retransmit_s: float = 1e-3

    def crosses(self, source: int, dest: int) -> bool:
        return (source in self.far_ranks) != (dest in self.far_ranks)


@dataclass
class RankState:
    """Per-rank simulation state shared by all communicators of that rank."""

    rank: int
    sim_time: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    compute_time: float = 0.0
    comm_time: float = 0.0
    #: Integrity-envelope accounting (only moves when an
    #: :class:`~repro.resilience.integrity.IntegrityContext` is installed):
    #: full payload-checksum computations vs trusted fast-path envelopes
    #: that skipped checksumming because no message corruption is possible.
    envelope_checksums: int = 0
    envelope_fastpath: int = 0

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance the clock backwards")
        self.sim_time += dt

    def observe(self, remote_time: float) -> None:
        """Logical-clock merge: never run ahead of a message's arrival time."""
        if remote_time > self.sim_time:
            self.sim_time = remote_time


class Transport:
    """Mailbox fabric for one SPMD world."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self._mailboxes: list[list[Message]] = [[] for _ in range(world_size)]
        self._conditions = [threading.Condition() for _ in range(world_size)]
        self._aborted = threading.Event()
        self.states = [RankState(rank=r) for r in range(world_size)]
        self._context_lock = threading.Lock()
        self._next_context = 1  # 0 is COMM_WORLD
        self._partitions: list[PartitionSchedule] = []
        #: Messages that hit an active cut and were stalled to heal time.
        self.partition_stalled = 0

    # -- partitions ----------------------------------------------------------
    def install_partition(self, schedule: PartitionSchedule) -> None:
        """Arm a partition window on this fabric (several may overlap)."""
        bad = [r for r in schedule.far_ranks
               if not (0 <= r < self.world_size)]
        if bad:
            raise ValueError(f"far ranks {bad} out of range")
        self._partitions.append(schedule)

    def _apply_partitions(self, dest: int, msg: Message) -> None:
        """Stall ``msg`` past every active cut it crosses (sender clock).

        A stalled message may land inside a later window, so iterate to a
        fixed point — bounded by the number of installed schedules since
        each can only push the send time forward past its own end.
        """
        for _ in range(len(self._partitions) + 1):
            stall = max((p.window.delay_until_heal(msg.send_time)
                         + p.retransmit_s
                         for p in self._partitions
                         if p.crosses(msg.source, dest)
                         and p.window.active(msg.send_time)),
                        default=0.0)
            if stall <= 0.0:
                return
            msg.send_time += stall
            self.partition_stalled += 1

    # -- failure propagation ----------------------------------------------
    def abort(self) -> None:
        self._aborted.set()
        for cond in self._conditions:
            with cond:
                cond.notify_all()

    @property
    def aborted(self) -> bool:
        return self._aborted.is_set()

    def allocate_context(self) -> int:
        with self._context_lock:
            ctx = self._next_context
            self._next_context += 1
            return ctx

    # -- messaging ----------------------------------------------------------
    def put(self, dest: int, msg: Message) -> None:
        if not (0 <= dest < self.world_size):
            raise ValueError(f"destination rank {dest} out of range")
        if self._partitions:
            self._apply_partitions(dest, msg)
        cond = self._conditions[dest]
        with cond:
            self._mailboxes[dest].append(msg)
            cond.notify_all()

    def get(
        self,
        dest: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        context: int = 0,
    ) -> Message:
        """Blocking matched receive for rank ``dest``."""
        cond = self._conditions[dest]
        with cond:
            while True:
                box = self._mailboxes[dest]
                for i, msg in enumerate(box):
                    if msg.context != context:
                        continue
                    if source != ANY_SOURCE and msg.source != source:
                        continue
                    if tag != ANY_TAG and msg.tag != tag:
                        continue
                    return box.pop(i)
                if self._aborted.is_set():
                    raise TransportAborted("SPMD world aborted while receiving")
                cond.wait(timeout=_POLL_INTERVAL)

    def probe(
        self, dest: int, source: int = ANY_SOURCE, tag: int = ANY_TAG, context: int = 0
    ) -> Optional[Message]:
        """Non-destructive check for a matching message (returns it or None)."""
        cond = self._conditions[dest]
        with cond:
            for msg in self._mailboxes[dest]:
                if msg.context != context:
                    continue
                if source != ANY_SOURCE and msg.source != source:
                    continue
                if tag != ANY_TAG and msg.tag != tag:
                    continue
                return msg
        return None
