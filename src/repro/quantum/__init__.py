"""The Quantum Module (QM) — a simulated quantum annealer.

Sec. III-C: the paper uses D-Wave annealers (2000Q with 2000 qubits, later
the Advantage system with 5000 qubits and 35000 couplers via D-Wave Leap /
JUNIQ) as MSA accelerators for ML optimisation problems, specifically a
quantum SVM limited to binary classification and sub-sampled data.

* :mod:`repro.quantum.qubo` — QUBO/Ising problem containers,
* :mod:`repro.quantum.topology` — Chimera and Pegasus hardware graphs and
  their complete-graph embedding capacity (the sub-sampling constraint),
* :mod:`repro.quantum.annealer` — a simulated annealer honouring a
  device's qubit/coupler budget,
* :mod:`repro.quantum.qsvm` — the QUBO formulation of SVM training
  (Willsch et al.), with the ensemble construction of ref [11].
"""

from repro.quantum.qubo import Qubo, IsingModel
from repro.quantum.topology import (
    chimera_graph,
    pegasus_like_graph,
    DeviceTopology,
    DWAVE_2000Q,
    DWAVE_ADVANTAGE,
)
from repro.quantum.annealer import SimulatedQuantumAnnealer, AnnealResult
from repro.quantum.qsvm import QuantumSVM, QSvmEnsemble

__all__ = [
    "Qubo",
    "IsingModel",
    "chimera_graph",
    "pegasus_like_graph",
    "DeviceTopology",
    "DWAVE_2000Q",
    "DWAVE_ADVANTAGE",
    "SimulatedQuantumAnnealer",
    "AnnealResult",
    "QuantumSVM",
    "QSvmEnsemble",
]
