"""Simulated quantum annealer with hardware budget enforcement.

Samples low-energy states of a QUBO with simulated annealing (geometric
temperature schedule, single-bit Metropolis flips using incremental ΔE),
honouring a :class:`~repro.quantum.topology.DeviceTopology`: dense problems
larger than the device's clique capacity are rejected exactly as a real
D-Wave embedding would fail — forcing the sub-sample/ensemble workflow the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quantum.qubo import Qubo
from repro.quantum.topology import (
    DWAVE_2000Q,
    DWAVE_ADVANTAGE,
    DeviceTopology,
)


class EmbeddingError(RuntimeError):
    """Problem does not fit the device topology."""


@dataclass
class AnnealResult:
    """Samples returned by one anneal submission, best-first."""

    samples: np.ndarray          # (num_reads, n) binary, sorted by energy
    energies: np.ndarray         # (num_reads,)
    n_variables: int
    chain_length: int
    physical_qubits: int

    @property
    def best(self) -> np.ndarray:
        return self.samples[0]

    @property
    def best_energy(self) -> float:
        return float(self.energies[0])

    def lowest(self, k: int) -> np.ndarray:
        """The k lowest-energy distinct samples."""
        seen: set[bytes] = set()
        out = []
        for row in self.samples:
            key = row.tobytes()
            if key not in seen:
                seen.add(key)
                out.append(row)
            if len(out) == k:
                break
        return np.asarray(out)


class SimulatedQuantumAnnealer:
    """A QA device simulator.

    >>> annealer = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q)
    >>> result = annealer.sample(qubo, num_reads=50)
    """

    def __init__(self, n_qubits: int = 5000, n_couplers: int = 35000,
                 topology_family: str = "pegasus", seed: int = 0,
                 sweeps: int = 400,
                 chain_break_prob_per_qubit: float = 0.0) -> None:
        if not (0.0 <= chain_break_prob_per_qubit < 1.0):
            raise ValueError("chain_break_prob_per_qubit must be in [0, 1)")
        max_clique = 64 if topology_family == "chimera" else 180
        self.device = DeviceTopology(
            name=f"sim-{topology_family}", family=topology_family,
            n_qubits=n_qubits, n_couplers=n_couplers, max_clique=max_clique,
        )
        self.seed = seed
        self.sweeps = sweeps
        #: Per-physical-qubit chain-break probability per read.  Real
        #: annealers report broken chains (majority-vote repaired);
        #: longer embedding chains break more often, degrading samples —
        #: one more reason sub-problems must stay small.
        self.chain_break_prob_per_qubit = chain_break_prob_per_qubit

    @classmethod
    def for_device(cls, device: DeviceTopology, seed: int = 0,
                   sweeps: int = 400) -> "SimulatedQuantumAnnealer":
        inst = cls(n_qubits=device.n_qubits, n_couplers=device.n_couplers,
                   topology_family=device.family, seed=seed, sweeps=sweeps)
        inst.device = device
        return inst

    # -- budget checks -----------------------------------------------------------
    def _check_embeddable(self, qubo: Qubo) -> int:
        n = qubo.n_variables
        density = qubo.n_interactions / max(1, n * (n - 1) // 2)
        if density > 0.5:
            # Dense problem: needs a clique embedding.
            if not self.device.fits_dense_problem(n):
                raise EmbeddingError(
                    f"{self.device.name}: K_{n} exceeds clique capacity "
                    f"{self.device.max_clique} — sub-sample the data"
                )
            chain = self.device.chain_length_for_clique(n)
        else:
            # Sparse problem: qubit/coupler budget is the binding limit.
            chain = 1
            if n > self.device.n_qubits:
                raise EmbeddingError(f"{n} variables exceed "
                                     f"{self.device.n_qubits} qubits")
            if qubo.n_interactions > self.device.n_couplers:
                raise EmbeddingError("interaction count exceeds couplers")
        physical = n * chain
        if physical > self.device.n_qubits:
            raise EmbeddingError(
                f"embedding needs {physical} physical qubits, device has "
                f"{self.device.n_qubits}"
            )
        return chain

    # -- sampling --------------------------------------------------------------------
    def sample(self, qubo: Qubo, num_reads: int = 100,
               seed: Optional[int] = None) -> AnnealResult:
        """Anneal ``num_reads`` independent runs, return sorted samples."""
        if num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        chain = self._check_embeddable(qubo)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        n = qubo.n_variables

        # Temperature schedule spanning the coefficient scale.
        scale = max(np.abs(qubo.Q).max(), 1e-12)
        t_hot, t_cold = 2.0 * scale * n ** 0.5, 1e-3 * scale
        temps = np.geomspace(t_hot, t_cold, self.sweeps)

        samples = np.empty((num_reads, n))
        energies = np.empty(num_reads)
        for read in range(num_reads):
            x = rng.integers(0, 2, size=n).astype(np.float64)
            for T in temps:
                deltas = qubo.energy_deltas(x)
                # Metropolis sweep in a random order, vectorised acceptance
                # draw; flips applied sequentially via delta refresh every
                # few bits would be exact — one refresh per sweep is the
                # standard fast approximation, but we keep exactness by
                # flipping greedily-stochastically one bit at a time.
                order = rng.permutation(n)
                u = rng.random(n)
                for idx, bit in enumerate(order):
                    d = deltas[bit]
                    if d <= 0 or u[idx] < np.exp(-d / T):
                        # flip and update deltas incrementally
                        x_old = x[bit]
                        x[bit] = 1.0 - x_old
                        sym_col = qubo.Q[bit, :] + qubo.Q[:, bit]
                        sign = 1.0 - 2.0 * x_old   # +1 if turning on
                        deltas += (1.0 - 2.0 * x) * sym_col * sign
                        deltas[bit] = -d
            # Chain-break noise: a logical variable whose embedding chain
            # breaks resolves by (possibly wrong) majority vote — flip it
            # with probability ½.
            if self.chain_break_prob_per_qubit > 0.0 and chain > 1:
                p_break = 1.0 - (1.0 - self.chain_break_prob_per_qubit) \
                    ** (chain - 1)
                broken = rng.random(n) < p_break
                flip = broken & (rng.random(n) < 0.5)
                x = np.where(flip, 1.0 - x, x)
            samples[read] = x
            energies[read] = qubo.energy(x)

        order = np.argsort(energies, kind="stable")
        return AnnealResult(
            samples=samples[order],
            energies=energies[order],
            n_variables=n,
            chain_length=chain,
            physical_qubits=n * chain,
        )
