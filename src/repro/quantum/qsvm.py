"""Quantum SVM on the annealer (Willsch et al.; the paper's refs [10][11]).

SVM training is cast as a QUBO: each dual coefficient α_i is encoded with
``n_bits`` binary variables base ``base`` (α_i = Σ_k base^k a_{iK+k});
minimising

.. math::
    E = ½ Σ_{ij} α_i α_j y_i y_j (K(x_i,x_j) + 2ξ) - Σ_i α_i

(the ξ term softly enforces Σ α_i y_i = 0) over binary a is exactly an
annealer problem.  The encoded problem is *fully connected*, so the device
clique capacity caps the training-set size per anneal — 2000 qubits ≈ 32
samples at 2 bits, the Advantage ≈ 90 — reproducing the paper's "binary
classification only + sub-sampling + ensembles" lesson.  The decision
function averages the ``n_solutions`` lowest-energy samples, as Willsch
et al. do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quantum.annealer import EmbeddingError, SimulatedQuantumAnnealer
from repro.quantum.qubo import Qubo
from repro.svm.kernels import Kernel, make_kernel


class QuantumSVM:
    """Binary SVM trained by quantum annealing (labels in {-1, +1})."""

    def __init__(
        self,
        annealer: SimulatedQuantumAnnealer,
        kernel: str = "rbf",
        n_bits: int = 2,
        base: int = 2,
        xi: float = 1.0,
        num_reads: int = 30,
        n_solutions: int = 5,
        seed: int = 0,
        **kernel_params,
    ) -> None:
        if n_bits < 1 or base < 2:
            raise ValueError("n_bits >= 1 and base >= 2 required")
        self.annealer = annealer
        self.kernel_name = kernel
        self.kernel: Kernel = make_kernel(kernel, **kernel_params)
        self.n_bits = n_bits
        self.base = base
        self.xi = xi
        self.num_reads = num_reads
        self.n_solutions = n_solutions
        self.seed = seed
        # Fitted state.
        self.X_: Optional[np.ndarray] = None
        self.y_: Optional[np.ndarray] = None
        self.alphas_: Optional[np.ndarray] = None   # (n_solutions, n)
        self.biases_: Optional[np.ndarray] = None

    # -- capacity ---------------------------------------------------------------
    def max_training_samples(self) -> int:
        """Largest training set one anneal can hold on this device."""
        return self.annealer.device.max_clique // self.n_bits

    def build_qubo(self, X: np.ndarray, y: np.ndarray) -> Qubo:
        n = X.shape[0]
        K = self.kernel(X, X)
        weights = np.array([float(self.base) ** k for k in range(self.n_bits)])
        nv = n * self.n_bits
        # Pair coefficient matrix over encoded bits.
        yy = np.outer(y, y)
        core = yy * (K + 2.0 * self.xi)                        # (n, n)
        W = np.kron(core, np.outer(weights, weights))          # (nv, nv)
        lin = np.kron(np.ones(n), weights)
        # E = ½ Σ_{uv} W_uv a_u a_v − Σ_u lin_u a_u with binary a (a²=a):
        # off-diagonal pairs keep ½W (folded to W_uv on the upper triangle
        # by Qubo's canonicalisation), the quadratic diagonal ½W_uu merges
        # with the linear term.
        Q = 0.5 * W
        diag = 0.5 * np.diag(W) - lin
        Q[np.arange(nv), np.arange(nv)] = diag
        return Qubo(Q=Q)

    def _decode(self, bits: np.ndarray, n: int) -> np.ndarray:
        weights = np.array([float(self.base) ** k for k in range(self.n_bits)])
        return bits.reshape(n, self.n_bits) @ weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuantumSVM":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be in {-1, +1}")
        n = X.shape[0]
        if n > self.max_training_samples():
            raise EmbeddingError(
                f"{n} samples × {self.n_bits} bits exceed device clique "
                f"capacity {self.annealer.device.max_clique} — sub-sample"
            )
        qubo = self.build_qubo(X, y)
        result = self.annealer.sample(qubo, num_reads=self.num_reads,
                                      seed=self.seed)
        solutions = result.lowest(self.n_solutions)
        alphas = np.stack([self._decode(sol, n) for sol in solutions])

        K = self.kernel(X, X)
        biases = []
        c_max = float(sum(self.base ** k for k in range(self.n_bits)))
        for a in alphas:
            margin = (a > 0) & (a < c_max)
            idx = np.where(margin)[0] if margin.any() else np.where(a > 0)[0]
            if idx.size == 0:
                biases.append(0.0)
                continue
            f = (a * y) @ K[:, idx]
            biases.append(float(np.mean(y[idx] - f)))
        self.X_, self.y_ = X, y
        self.alphas_ = alphas
        self.biases_ = np.asarray(biases)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.alphas_ is None:
            raise RuntimeError("fit before predicting")
        K = self.kernel(np.asarray(X, dtype=np.float64), self.X_)
        scores = [
            K @ (a * self.y_) + b
            for a, b in zip(self.alphas_, self.biases_)
        ]
        return np.mean(scores, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())


class QSvmEnsemble:
    """QSVMs over class-balanced sub-samples, decision-averaged (ref [11])."""

    def __init__(self, annealer: SimulatedQuantumAnnealer,
                 n_members: int = 5, seed: int = 0, **qsvm_kwargs) -> None:
        if n_members < 1:
            raise ValueError("need at least one member")
        self.annealer = annealer
        self.n_members = n_members
        self.seed = seed
        self.qsvm_kwargs = qsvm_kwargs
        self.members_: list[QuantumSVM] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QSvmEnsemble":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        probe = QuantumSVM(self.annealer, seed=self.seed, **self.qsvm_kwargs)
        cap = probe.max_training_samples()
        size = min(cap, X.shape[0])
        self.members_ = []
        attempts = 0
        while len(self.members_) < self.n_members:
            attempts += 1
            if attempts > 20 * self.n_members:
                raise RuntimeError("could not draw class-balanced sub-samples")
            idx = rng.choice(X.shape[0], size=size, replace=False)
            if len(np.unique(y[idx])) < 2:
                continue
            member = QuantumSVM(
                self.annealer, seed=self.seed + len(self.members_),
                **self.qsvm_kwargs,
            )
            member.fit(X[idx], y[idx])
            self.members_.append(member)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self.members_:
            raise RuntimeError("fit before predicting")
        return np.mean([m.decision_function(X) for m in self.members_], axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
