"""QUBO and Ising problem containers.

A QUBO minimises ``x^T Q x`` over binary x; an Ising model minimises
``Σ h_i s_i + Σ J_ij s_i s_j`` over spins s ∈ {-1, +1}.  The two are
related by ``x = (s + 1) / 2``; annealers natively speak Ising, ML
formulations are naturally QUBO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class Qubo:
    """A QUBO instance with a dense upper-triangular coefficient matrix."""

    Q: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        Q = np.asarray(self.Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError("Q must be square")
        # Canonicalise: fold into upper triangle (x_i x_j = x_j x_i).
        upper = np.triu(Q) + np.tril(Q, -1).T
        self.Q = upper

    @property
    def n_variables(self) -> int:
        return self.Q.shape[0]

    @property
    def n_interactions(self) -> int:
        off_diag = np.triu(self.Q, 1)
        return int(np.count_nonzero(off_diag))

    def energy(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_variables,):
            raise ValueError("assignment length mismatch")
        if not np.isin(x, (0.0, 1.0)).all():
            raise ValueError("QUBO variables must be binary")
        return float(x @ self.Q @ x + self.offset)

    def energies(self, X: np.ndarray) -> np.ndarray:
        """Vectorised energies for a batch of assignments (m, n)."""
        X = np.asarray(X, dtype=np.float64)
        return np.einsum("mi,ij,mj->m", X, self.Q, X) + self.offset

    def energy_deltas(self, x: np.ndarray) -> np.ndarray:
        """ΔE of flipping each bit of ``x`` — the annealer's inner loop.

        For bit k: ΔE = (1 - 2 x_k) · (Q_kk + Σ_{j≠k} (Q_kj + Q_jk) x_j).
        """
        x = np.asarray(x, dtype=np.float64)
        sym = self.Q + self.Q.T          # doubles the diagonal
        diag = np.diag(self.Q)
        field = sym @ x - 2.0 * diag * x + diag
        return (1.0 - 2.0 * x) * field

    def to_ising(self) -> "IsingModel":
        """Exact transformation to h/J spin coefficients."""
        Q = self.Q
        n = self.n_variables
        J = np.triu(Q, 1) / 4.0
        h = np.diag(Q) / 2.0 + (np.triu(Q, 1).sum(axis=1)
                                + np.triu(Q, 1).sum(axis=0)) / 4.0
        offset = self.offset + np.diag(Q).sum() / 2.0 + np.triu(Q, 1).sum() / 4.0
        return IsingModel(h=h, J=J, offset=offset)


@dataclass
class IsingModel:
    """Ising spins: E(s) = h·s + Σ_{i<j} J_ij s_i s_j + offset."""

    h: np.ndarray
    J: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        self.h = np.asarray(self.h, dtype=np.float64)
        self.J = np.triu(np.asarray(self.J, dtype=np.float64), 1)
        if self.J.shape != (self.h.shape[0], self.h.shape[0]):
            raise ValueError("J must be (n, n) matching h")

    @property
    def n_spins(self) -> int:
        return self.h.shape[0]

    def energy(self, s: np.ndarray) -> float:
        s = np.asarray(s, dtype=np.float64)
        if not np.isin(s, (-1.0, 1.0)).all():
            raise ValueError("spins must be ±1")
        return float(self.h @ s + s @ self.J @ s + self.offset)

    def to_qubo(self) -> Qubo:
        """Inverse transformation (x = (s+1)/2)."""
        n = self.n_spins
        Jsym = self.J
        Q = np.zeros((n, n))
        Q += 4.0 * Jsym
        diag = 2.0 * self.h - 2.0 * (Jsym.sum(axis=1) + Jsym.sum(axis=0))
        Q[np.arange(n), np.arange(n)] += diag
        offset = self.offset - self.h.sum() + Jsym.sum()
        return Qubo(Q=Q, offset=offset)
