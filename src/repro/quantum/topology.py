"""Quantum annealer hardware topologies (Chimera / Pegasus).

The device budget drives the paper's key QSVM constraint: dense ML
problems must be minor-embedded, and a Chimera C16 (the 2000Q) can embed a
complete graph of only ~65 logical variables, the Pegasus-based Advantage
(5000 qubits, 35000 couplers) ~180.  That is why the paper's QSVM
"requires ... sub-sampl[ing] from large quantities of data and using
ensemble methods" — the experiments validate exactly this capacity gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


def chimera_graph(m: int, n: int | None = None, t: int = 4) -> nx.Graph:
    """The Chimera graph C_{m,n,t}: an m×n grid of K_{t,t} unit cells.

    Within a cell, left spins connect to right spins (complete bipartite);
    right spins connect horizontally between column-adjacent cells, left
    spins vertically between row-adjacent cells.  C_{16,16,4} is the
    D-Wave 2000Q working graph (2048 qubits).
    """
    n = m if n is None else n
    if m < 1 or n < 1 or t < 1:
        raise ValueError("all Chimera dimensions must be >= 1")
    g = nx.Graph()
    def node(i, j, side, k):
        return (i, j, side, k)

    for i in range(m):
        for j in range(n):
            for k in range(t):
                g.add_node(node(i, j, 0, k))
                g.add_node(node(i, j, 1, k))
            # complete bipartite inside the cell
            for k1 in range(t):
                for k2 in range(t):
                    g.add_edge(node(i, j, 0, k1), node(i, j, 1, k2))
    for i in range(m):
        for j in range(n):
            for k in range(t):
                if i + 1 < m:   # vertical couplers on side 0
                    g.add_edge(node(i, j, 0, k), node(i + 1, j, 0, k))
                if j + 1 < n:   # horizontal couplers on side 1
                    g.add_edge(node(i, j, 1, k), node(i, j + 1, 1, k))
    return g


def pegasus_like_graph(size: int = 16) -> nx.Graph:
    """A Pegasus-degree proxy: Chimera connectivity densified to degree ~15.

    The exact Pegasus construction is intricate; for budget modelling we
    need node count (~5000), coupler count (~35000) and clique capacity
    (~(K next-nearest) — achieved here by adding odd-couplers between
    neighbouring cells, raising the average degree from 6 to ~14).
    """
    g = chimera_graph(size, size, 4)
    # Add intra-cell same-side ("odd") couplers and diagonal cell links.
    for i in range(size):
        for j in range(size):
            for k in range(0, 4, 2):
                g.add_edge((i, j, 0, k), (i, j, 0, k + 1))
                g.add_edge((i, j, 1, k), (i, j, 1, k + 1))
            if i + 1 < size and j + 1 < size:
                for k in range(4):
                    g.add_edge((i, j, 0, k), (i + 1, j + 1, 0, k))
                    g.add_edge((i, j, 1, k), (i + 1, j + 1, 1, k))
    return g


@dataclass(frozen=True)
class DeviceTopology:
    """An annealer's hardware budget."""

    name: str
    family: str
    n_qubits: int
    n_couplers: int
    #: Largest complete graph minor-embeddable (vendor-published capacity).
    max_clique: int

    def fits_dense_problem(self, n_variables: int) -> bool:
        """Can a fully-connected problem of this size be embedded?"""
        return 1 <= n_variables <= self.max_clique

    def chain_length_for_clique(self, n_variables: int) -> int:
        """Approximate embedding chain length for a K_n minor.

        Chimera's TRIAD embedding uses chains of ~n/4 qubits; Pegasus'
        higher connectivity shortens chains to ~n/12 (K_177 embeds with
        chains of ~15 physical qubits on the Advantage).
        """
        if not self.fits_dense_problem(n_variables):
            raise ValueError(
                f"{self.name} cannot embed K_{n_variables} "
                f"(max clique {self.max_clique})"
            )
        denom = 4 if self.family == "chimera" else 12
        return max(1, -(-n_variables // denom))

    def physical_qubits_for_clique(self, n_variables: int) -> int:
        return n_variables * self.chain_length_for_clique(n_variables)


#: D-Wave 2000Q: Chimera C16, 2048 qubits, ~6016 couplers, K_64-ish cliques.
DWAVE_2000Q = DeviceTopology(
    name="DW-2000Q", family="chimera",
    n_qubits=2048, n_couplers=6016, max_clique=64,
)

#: D-Wave Advantage (the paper: 5000 qubits, 35000 couplers via JUNIQ/Leap).
DWAVE_ADVANTAGE = DeviceTopology(
    name="Advantage", family="pegasus",
    n_qubits=5000, n_couplers=35000, max_clique=180,
)


def graph_for(device: DeviceTopology) -> nx.Graph:
    """Construct the (approximate) hardware graph of a device."""
    if device.family == "chimera":
        return chimera_graph(16, 16, 4)
    if device.family == "pegasus":
        return pegasus_like_graph(16)
    raise ValueError(f"unknown family {device.family!r}")
