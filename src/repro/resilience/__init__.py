"""Fault injection and recovery for the MSA stack.

The paper's experience claim — MSA workloads keep running at 96–128 GPU
scale across co-allocated modules — holds only because the surrounding
stack tolerates node loss and stragglers.  This package supplies that
layer for the simulation:

* :mod:`repro.resilience.faults` — seeded :class:`FaultPlan`s and the
  :class:`FaultInjector` that turns them into simulated events,
* :mod:`repro.resilience.integrity` — silent-corruption injection and
  detection: checksummed message envelopes, the ABFT-verified allreduce
  (:class:`IntegrityConfig`, :class:`CorruptionInjector`) and the
  injected/detected/undetected reconciliation,
* :mod:`repro.resilience.detect` — the phi-accrual failure detector and
  structured :class:`ComponentHealth` reports shared by the serving,
  scheduling and storage planes,
* :mod:`repro.resilience.drill` — the end-to-end SDC drill behind
  ``repro drill sdc`` (:func:`run_sdc_drill`),
* :mod:`repro.resilience.chaosdrill` — the partition / gray-failure drill
  behind ``repro drill chaos`` (:func:`run_chaos_drill`),
* :mod:`repro.resilience.retry` — exponential backoff with deterministic
  jitter (:class:`RetryPolicy`),
* :mod:`repro.resilience.policy` — checkpoint cadence/placement
  (:class:`CheckpointPolicy`, NAM-first with PFS fallback),
* :mod:`repro.resilience.report` — fault vs recovery accounting
  (:class:`ResilienceReport`: MTTR, retries, lost work).

With an empty plan the layer is zero-cost: no events are scheduled and
every existing workload produces byte-identical results.
"""

from repro.resilience.chaosdrill import ChaosDrillReport, run_chaos_drill
from repro.resilience.detect import (
    ComponentHealth,
    DetectorConfig,
    PhiAccrualDetector,
)
from repro.resilience.faults import (
    DATA_FAULTS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    partition_cut,
)
from repro.resilience.integrity import (
    CorruptionInjector,
    GradientCorruptionError,
    IntegrityConfig,
    IntegrityContext,
    corruption_totals,
    publish_undetected,
    verified_grad_allreduce,
)
from repro.resilience.policy import CheckpointPolicy
from repro.resilience.report import (
    FailoverEvent,
    FailureEvent,
    RecoveryEvent,
    RequeueEvent,
    ResilienceReport,
)
from repro.resilience.retry import NO_RETRY, RetryBudget, RetryPolicy

__all__ = [
    "ChaosDrillReport",
    "run_chaos_drill",
    "ComponentHealth",
    "DetectorConfig",
    "PhiAccrualDetector",
    "DATA_FAULTS",
    "partition_cut",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "CorruptionInjector",
    "GradientCorruptionError",
    "IntegrityConfig",
    "IntegrityContext",
    "corruption_totals",
    "publish_undetected",
    "verified_grad_allreduce",
    "CheckpointPolicy",
    "FailoverEvent",
    "FailureEvent",
    "RecoveryEvent",
    "RequeueEvent",
    "ResilienceReport",
    "RetryBudget",
    "RetryPolicy",
    "NO_RETRY",
]
