"""The chaos drill: partitions and gray failures against a live gateway.

``repro drill chaos`` runs a seeded serving scenario with one fault of
each *partial-failure* class armed — a network bipartition that delays
(never drops) traffic for a window, a gray-failed replica whose service
time inflates while it keeps answering health probes, and a hard node
crash — plus a storage sidecar losing an OST mid-drill.  It then
reconciles the books:

* **zero loss**: every admitted request completes — partitions hold
  responses until heal (TCP-retransmit semantics), hedges never
  double-complete, crashes requeue; ``admitted == completed`` is the
  drill's inviolable invariant and the serving engine raises if the
  conservation law ``offered = admitted + rate_limited + shed`` breaks;
* with defenses **on** (the default), the control plane must visibly
  engage: the phi-accrual detector raises suspicion, circuit breakers
  trip on the gray replica, hedged requests win races, and the wasted
  duplicate work stays under the 15 % budget;
* with defenses **off** (``--no-defend``), the same faults run against
  the bare engine — zero loss must *still* hold (it is structural, not a
  defense), proving the invariant does not depend on the defense layer
  being armed;
* the storage sidecar must report the OST loss as a *gray* state
  (``ok`` but ``degraded``) through :meth:`ParallelFileSystem.health`
  and come back clean after recovery.

Everything is a pure function of ``(seed, quick, defend)``: two
same-argument drills render byte-identical reports (asserted by the test
suite and diffed in CI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry

#: Drill geometry (quick mode halves the horizon).
RATE_PER_S = 120.0
DURATION_S = 12.0
REPLICAS = 3
BRONZE_FRACTION = 0.25
CACHE_CAPACITY = 64
#: Ceiling on wasted duplicate (hedge) work, as a fraction of busy time.
DUPLICATE_WORK_BUDGET = 0.15


@dataclass(frozen=True)
class ChaosDrillReport:
    """Everything the chaos drill measured, reconciled and judged."""

    seed: int
    defend: bool
    quick: bool
    # -- request ledger ----------------------------------------------------
    offered: int
    admitted: int
    completed: int
    rate_limited: int
    shed: int
    deadline_misses: int
    p99_ms: float
    # -- chaos actually delivered ------------------------------------------
    partition_windows: int
    gray_episodes: int
    crashes: int
    held_responses: int
    # -- defense engagement ------------------------------------------------
    suspicion_events: int
    breaker_transitions: int
    hedges_issued: int
    hedges_backup_won: int
    duplicate_work_ratio: float
    brownout_path: tuple[int, ...]
    retry_budget_spent: float
    retry_budget_refused: int
    retry_budget_overdraft: float
    # -- storage sidecar ---------------------------------------------------
    storage_degraded_detail: str
    storage_degraded_ok: bool
    storage_recovered: bool

    @property
    def lost_requests(self) -> int:
        """Admitted requests that never completed — must be zero."""
        return self.admitted - self.completed

    @property
    def chaos_delivered(self) -> bool:
        """Did the armed faults actually land on the serving plane?"""
        return (self.partition_windows > 0 and self.gray_episodes > 0
                and self.crashes > 0)

    @property
    def ok(self) -> bool:
        """The drill's verdict.

        Either mode: no admitted request may be lost, the faults must
        have demonstrably fired, and the storage sidecar must have
        reported gray (ok-but-degraded) and then recovered.  Defenses
        on: breakers must have tripped and hedges must have raced — a
        gray replica *answers* its probes, so breaker/hedge engagement
        (not heartbeat suspicion) is the proof the defense layer did
        real work.  Defenses off: the defense counters must all read
        zero — the gates are real, not decorative.  The duplicate-work
        budget is enforced by the serving bench case, where a fixed
        scenario makes the ratio a stable regression signal; here it is
        reported for the record.
        """
        base = (self.lost_requests == 0
                and self.chaos_delivered
                and self.storage_degraded_ok
                and self.storage_recovered)
        if not base:
            return False
        if self.defend:
            return self.breaker_transitions > 0 and self.hedges_issued > 0
        return (self.suspicion_events == 0
                and self.breaker_transitions == 0
                and self.hedges_issued == 0
                and not self.brownout_path)

    def to_text(self) -> str:
        """Deterministic human-readable report (the CI artifact)."""
        mode = "on" if self.defend else "off"
        path = "->".join(str(level) for level in (0,) + self.brownout_path)
        lines = [
            f"chaos drill report (seed {self.seed}, defenses {mode})",
            "=" * 54,
            "request ledger:",
            f"  offered {self.offered}  admitted {self.admitted}  "
            f"completed {self.completed}",
            f"  rate-limited {self.rate_limited}  shed {self.shed}",
            f"  lost: {self.lost_requests}",
            f"  deadline misses: {self.deadline_misses}  "
            f"p99 {self.p99_ms:.3f} ms",
            "",
            "chaos delivered:",
            f"  partitions {self.partition_windows}  "
            f"gray {self.gray_episodes}  crashes {self.crashes}  "
            f"responses held {self.held_responses}",
            "",
            "defense engagement:",
            f"  suspicion events: {self.suspicion_events}",
            f"  breaker transitions: {self.breaker_transitions}",
            f"  hedges: {self.hedges_issued} issued, "
            f"{self.hedges_backup_won} backup wins "
            f"(duplicate-work ratio {self.duplicate_work_ratio:.4f}, "
            f"budget {DUPLICATE_WORK_BUDGET:g})",
            f"  brownout path: {path}",
            f"  retry budget: {self.retry_budget_spent:.1f} spent, "
            f"{self.retry_budget_refused} refused, "
            f"overdraft {self.retry_budget_overdraft:.1f}",
            "",
            "storage sidecar:",
            f"  degraded window: {self.storage_degraded_detail or '(none)'} "
            f"(ok={self.storage_degraded_ok})",
            f"  recovered clean: {self.storage_recovered}",
            "",
            f"verdict: {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines) + "\n"


def chaos_drill_plan(seed: int, duration_s: float):
    """One fault of each partial-failure class, deterministically placed.

    The gray failure and the crash target the booster nodes the first
    replicas land on (placement is deterministic), so the faults hit the
    serving plane rather than empty corners of the system.
    """
    from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec

    return FaultPlan(seed=seed, specs=(
        FaultSpec(kind=FaultKind.GRAY_FAILURE,
                  time=duration_s * 0.15, module="esb", node=0,
                  duration=duration_s * 0.35,
                  magnitude=8.0, probability=0.6),
        FaultSpec(kind=FaultKind.NETWORK_PARTITION,
                  time=duration_s * 0.55,
                  duration=duration_s * 0.12,
                  probability=0.4),
        FaultSpec(kind=FaultKind.NODE_CRASH,
                  time=duration_s * 0.75, module="esb", node=1,
                  duration=duration_s * 0.2),
    ))


def run_chaos_drill(seed: int = 0, quick: bool = False, defend: bool = True
                    ) -> tuple[ChaosDrillReport, str]:
    """Run the drill; returns ``(report, prometheus metrics text)``."""
    from repro.core.presets import small_msa_system
    from repro.resilience.faults import FaultInjector
    from repro.serving import (
        AutoscalerConfig,
        DefenseConfig,
        ServingConfig,
        TraceConfig,
        simulate_serving,
    )
    from repro.storage.pfs import ParallelFileSystem

    duration = DURATION_S / 2 if quick else DURATION_S
    plan = chaos_drill_plan(seed, duration)
    config = ServingConfig(
        trace=TraceConfig(rate_per_s=RATE_PER_S, duration_s=duration,
                          seed=seed, bronze_fraction=BRONZE_FRACTION),
        initial_replicas=REPLICAS,
        cache_capacity=CACHE_CAPACITY,
        # Pinned capacity: the drill measures the defenses, not the
        # autoscaler's scale-up lag.
        autoscaler=AutoscalerConfig(enabled=False),
        defense=DefenseConfig(enabled=defend),
    )

    with telemetry.capture() as (tracer, registry):
        pfs = ParallelFileSystem("sssm", n_targets=4)
        pfs.fail_target(seed % pfs.n_targets)
        degraded = pfs.health()
        report = simulate_serving(
            config,
            system=small_msa_system(),
            fault_injector=FaultInjector(plan),
            registry=registry,
        )
        pfs.recover_target(seed % pfs.n_targets)
        recovered = pfs.healthy
        prometheus = registry.to_prometheus()

    m = report.metrics
    drill = ChaosDrillReport(
        seed=seed,
        defend=defend,
        quick=quick,
        offered=m.offered,
        admitted=m.admitted,
        completed=m.completed,
        rate_limited=m.rate_limited,
        shed=m.shed,
        deadline_misses=m.deadline_misses,
        p99_ms=m.p99 * 1e3,
        partition_windows=report.partition_windows,
        gray_episodes=report.gray_episodes,
        crashes=len(report.failover_events),
        held_responses=report.held_responses,
        suspicion_events=report.suspicion_events,
        breaker_transitions=report.breaker_transitions,
        hedges_issued=m.hedges_issued,
        hedges_backup_won=m.hedges_backup_won,
        duplicate_work_ratio=report.duplicate_work_ratio,
        brownout_path=report.brownout_path,
        retry_budget_spent=report.retry_budget_spent,
        retry_budget_refused=report.retry_budget_refused,
        retry_budget_overdraft=report.retry_budget_overdraft,
        storage_degraded_detail=degraded.detail,
        storage_degraded_ok=degraded.ok and degraded.degraded,
        storage_recovered=recovered,
    )
    return drill, prometheus
