"""Phi-accrual failure detection on the simulated clock.

Crisp failures (a node crash event) announce themselves; the failures
that dominate production serving are *ambiguous* — a partitioned replica
stops answering, a gray-failed one answers probes only sometimes while
serving 10x slow.  Binary timeout detectors handle these badly: too
short and a healthy node flaps in and out of the pool, too long and a
dead one keeps taking traffic.

The phi-accrual detector (Hayashibara et al., SRDS'04 — the design
behind Cassandra's and Akka's membership) replaces the binary verdict
with a *suspicion level*: from the observed heartbeat inter-arrival
history it computes

    phi(now) = -log10( P(a heartbeat gap longer than now - t_last) )

under an exponential gap model, so phi grows linearly with silence and
each unit of phi is one decade of confidence.  Consumers pick their own
thresholds: the scheduler can avoid placing on nodes above phi 3 while
the circuit breaker only opens at phi 8.

Everything is deterministic: heartbeats are instants on the simulated
clock, the window is a plain deque, and there is no wall-clock anywhere
— the same event schedule always produces the same suspicion levels.

:class:`ComponentHealth` is the companion report type for subsystems
whose health is state, not heartbeats (the parallel filesystem's failed
OSTs): one structured record instead of a bare bool, published through
the telemetry registry so drills can reconcile it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Optional

LN10 = math.log(10.0)

#: Suspicion assigned once the gap model would underflow (certain death).
PHI_CEILING = 1e3


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs for one :class:`PhiAccrualDetector`.

    ``expected_interval_s`` seeds the gap model until a window of real
    intervals exists (the simulation-start edge case: a node that never
    heartbeats must still grow suspicious against *some* expectation).
    ``min_interval_s`` floors the modelled mean so a burst of rapid
    heartbeats cannot make the detector hair-triggered (the flapping
    edge case).  ``threshold`` is the default phi above which
    :meth:`PhiAccrualDetector.suspect` fires.
    """

    expected_interval_s: float = 0.05
    window: int = 16
    min_interval_s: float = 1e-3
    threshold: float = 6.0

    def __post_init__(self) -> None:
        if self.expected_interval_s <= 0:
            raise ValueError("expected_interval_s must be positive")
        if self.window < 1:
            raise ValueError("window must hold at least one interval")
        if self.min_interval_s <= 0:
            raise ValueError("min_interval_s must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


@dataclass
class _Endpoint:
    """Heartbeat history of one monitored endpoint."""

    registered_at: float
    last_beat: Optional[float] = None
    intervals: deque = field(default_factory=deque)
    beats: int = 0


class PhiAccrualDetector:
    """Per-endpoint suspicion levels from heartbeat instants.

    >>> det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1.0))
    >>> det.register("r0", now=0.0)
    >>> for t in (1.0, 2.0, 3.0):
    ...     det.heartbeat("r0", t)
    >>> det.phi("r0", 3.5) < det.phi("r0", 9.0)
    True
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self._endpoints: dict[Hashable, _Endpoint] = {}
        #: (time, key, phi) rows for every suspect transition (telemetry).
        self.suspicion_log: list[tuple[float, Hashable, float]] = []
        self._suspected: set[Hashable] = set()

    # -- feeding --------------------------------------------------------------
    def register(self, key: Hashable, now: float) -> None:
        """Start monitoring ``key``; idempotent."""
        self._endpoints.setdefault(key, _Endpoint(registered_at=now))

    def forget(self, key: Hashable) -> None:
        """Stop monitoring ``key`` (replica retired/crashed on purpose)."""
        self._endpoints.pop(key, None)
        self._suspected.discard(key)

    def heartbeat(self, key: Hashable, now: float) -> None:
        """One successful probe answer from ``key`` at simulated ``now``."""
        ep = self._endpoints.setdefault(key, _Endpoint(registered_at=now))
        if ep.last_beat is not None:
            gap = now - ep.last_beat
            if gap < 0:
                raise ValueError("heartbeat clock ran backwards")
            ep.intervals.append(gap)
            while len(ep.intervals) > self.config.window:
                ep.intervals.popleft()
        ep.last_beat = now
        ep.beats += 1
        self._suspected.discard(key)

    # -- reading --------------------------------------------------------------
    def monitored(self) -> list:
        return sorted(self._endpoints, key=repr)

    def mean_interval(self, key: Hashable) -> float:
        """The modelled heartbeat gap for ``key`` (floored, bootstrapped)."""
        ep = self._endpoints[key]
        if ep.intervals:
            mean = sum(ep.intervals) / len(ep.intervals)
        else:
            # Bootstrap: no observed gap yet (start of simulation, or a
            # single beat so far) — fall back on the declared expectation.
            mean = self.config.expected_interval_s
        return max(mean, self.config.min_interval_s)

    def phi(self, key: Hashable, now: float) -> float:
        """Suspicion level of ``key`` at ``now`` (0 = just heard from it).

        Exponential gap model: ``P(gap > x) = exp(-x / mean)`` so
        ``phi = x / (mean * ln 10)`` — linear in silence, one decade of
        confidence per unit.
        """
        ep = self._endpoints.get(key)
        if ep is None:
            raise KeyError(f"endpoint {key!r} is not monitored")
        anchor = ep.last_beat if ep.last_beat is not None else ep.registered_at
        silence = now - anchor
        if silence <= 0:
            return 0.0
        return min(silence / (self.mean_interval(key) * LN10), PHI_CEILING)

    def suspect(self, key: Hashable, now: float,
                threshold: Optional[float] = None) -> bool:
        """Is ``key``'s suspicion above ``threshold`` (default: config's)?"""
        level = self.phi(key, now)
        limit = threshold if threshold is not None else self.config.threshold
        is_suspect = level > limit
        if is_suspect and key not in self._suspected:
            self._suspected.add(key)
            self.suspicion_log.append((now, key, level))
        elif not is_suspect:
            self._suspected.discard(key)
        return is_suspect

    def suspicion_levels(self, now: float) -> dict:
        """``{key: phi}`` for every monitored endpoint (sorted keys)."""
        return {key: self.phi(key, now) for key in self.monitored()}

    def suspects(self, now: float,
                 threshold: Optional[float] = None) -> list:
        """Monitored endpoints whose phi exceeds ``threshold``, sorted."""
        return [key for key in self.monitored()
                if self.suspect(key, now, threshold)]

    def publish(self, registry, now: float, component: str = "detector"
                ) -> None:
        """Export per-endpoint phi as labeled gauges on ``registry``."""
        for key, level in self.suspicion_levels(now).items():
            registry.gauge("health_suspicion_phi", component=component,
                           endpoint=str(key)).set(level)


@dataclass(frozen=True)
class ComponentHealth:
    """Structured health of a stateful component (storage, fabric, ...).

    Replaces bare-bool ``healthy`` flags: ``ok`` is the old bool,
    ``degraded`` marks the gray zone (still serving, slower), ``detail``
    says why, and ``suspicion`` carries a phi-compatible level so
    heartbeat-driven and state-driven health land on one scale.
    """

    component: str
    ok: bool
    degraded: bool = False
    detail: str = ""
    suspicion: float = 0.0

    def publish(self, registry, now: float) -> None:
        """Export this report as gauges + a transition-friendly instant."""
        registry.gauge("component_health_ok",
                       component=self.component).set(1.0 if self.ok else 0.0)
        registry.gauge("component_health_degraded",
                       component=self.component).set(
                           1.0 if self.degraded else 0.0)
        registry.gauge("health_suspicion_phi", component=self.component,
                       endpoint="state").set(self.suspicion)
