"""The SDC drill: an end-to-end silent-corruption exercise.

``repro drill sdc`` runs a seeded elastic-training job with at least one
fault of *each* silent-corruption class armed — per-message bitflips on
the fabric, one rank's gradient contribution corrupted before allreduce,
and bit-rot on a stored checkpoint — then reconciles the books:

* with verification **on**, every injected corruption must be detected
  (in transit, at the ABFT allreduce, on restore, or by the at-rest
  scrub): ``integrity_undetected == 0``, the rollback stays within the
  retention window, and the final loss trajectory must match a fault-free
  reference run of the same seed — the drill *fails* otherwise, which is
  what CI asserts;
* with verification **off** (``--no-verify``), the same seed must produce
  a demonstrably *different* (corrupted) trajectory — proving the
  injector is live and the detection layer is doing real work, not
  theatre.

Offending ranks are quarantined through the scheduler's suspect-node
machinery (:meth:`~repro.core.scheduler.MsaScheduler.quarantine`), so a
drill leaves behind exactly the state a production control plane would:
corrupted hardware fenced off, training converged, lineage scrubbed.

Everything is a pure function of the seed: two same-seed drills render
byte-identical reports (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import telemetry
from repro.resilience.integrity import IntegrityConfig, corruption_totals, \
    publish_undetected

#: Drill geometry (quick mode halves the step count).
WORLD_SIZE = 4
BATCH_SIZE = 32
KEEP_LAST = 3                 # retention window == max rollback bound
ANCHOR_EVERY = 8
CHECKPOINT_EVERY = 4
MESSAGE_BITFLIP_P = 0.02


@dataclass(frozen=True)
class SdcDrillReport:
    """Everything the drill measured, reconciled and judged."""

    seed: int
    verify: bool
    n_steps: int
    world_size: int
    injected_by_kind: tuple[tuple[str, int], ...]
    detected_by_kind: tuple[tuple[str, int], ...]
    undetected: float
    recoveries: tuple = ()
    max_rollback_versions: int = 0
    scrub: dict = field(default_factory=dict)
    quarantined_nodes: tuple[int, ...] = ()
    trajectory_matches_reference: bool = False
    max_loss_deviation: float = 0.0
    final_world_size: int = 0

    @property
    def injected_total(self) -> int:
        return sum(n for _, n in self.injected_by_kind)

    @property
    def detected_total(self) -> int:
        return sum(n for _, n in self.detected_by_kind)

    @property
    def ok(self) -> bool:
        """The drill's verdict.

        Verification on: nothing slipped through, rollback bounded, and
        the trajectory is indistinguishable from the fault-free run.
        Verification off: the corruption must have *visibly* landed.
        """
        if self.verify:
            return (self.undetected == 0
                    and self.injected_total > 0
                    and self.max_rollback_versions <= KEEP_LAST
                    and self.trajectory_matches_reference)
        return self.injected_total > 0 \
            and not self.trajectory_matches_reference

    def to_text(self) -> str:
        """Deterministic human-readable report (the CI artifact)."""
        mode = "on" if self.verify else "off"
        lines = [
            f"SDC drill report (seed {self.seed}, verification {mode})",
            "=" * 54,
            f"steps: {self.n_steps}  world: {self.world_size} -> "
            f"{self.final_world_size}",
            "",
            "corruption ledger:",
        ]
        detected = dict(self.detected_by_kind)
        for kind, n in self.injected_by_kind:
            lines.append(f"  {kind:<18} injected {n:3d}   "
                         f"detected {detected.get(kind, 0):3d}")
        lines += [
            f"  undetected: {self.undetected:g}",
            "",
            f"recoveries: {len(self.recoveries)}",
        ]
        for r in self.recoveries:
            lines.append(
                f"  step {r.failed_step}: {r.reason} by world ranks "
                f"{list(r.dead_world_ranks)} -> restored step "
                f"{r.restored_step} from {r.restored_from} "
                f"(rollback {r.rollback_versions} versions)")
        lines += [
            f"max rollback depth: {self.max_rollback_versions} "
            f"(bound {KEEP_LAST})",
            f"scrub: {self.scrub.get('checked', 0)} checked, "
            f"{self.scrub.get('corrupt', 0)} corrupt at rest",
            f"quarantined nodes: {list(self.quarantined_nodes)}",
            f"loss trajectory matches fault-free reference: "
            f"{self.trajectory_matches_reference} "
            f"(max deviation {self.max_loss_deviation:.3e})",
            "",
            f"verdict: {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines) + "\n"


def _drill_data(seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng([seed, 0xD1])
    X = np.concatenate([rng.normal(-2.0, 1.0, size=(64, 2)),
                        rng.normal(2.0, 1.0, size=(64, 2))])
    Y = np.array([0] * 64 + [1] * 64)
    return X, Y


def _run_training(seed: int, n_steps: int, fault_plan, verify: bool,
                  on_quarantine=None):
    from repro.distributed.horovod import run_elastic_training
    from repro.ml.models import MLP
    from repro.resilience.policy import CheckpointPolicy
    from repro.storage.checkpoint import CheckpointManager, \
        CheckpointRetention
    from repro.storage.nam import NetworkAttachedMemory
    from repro.storage.pfs import ParallelFileSystem

    X, Y = _drill_data(seed)
    manager = CheckpointManager(
        nam=NetworkAttachedMemory(capacity_GB=1),
        pfs=ParallelFileSystem("pfs", n_targets=4),
        retention=CheckpointRetention(keep_last=KEEP_LAST,
                                      anchor_every=ANCHOR_EVERY))
    return run_elastic_training(
        model_factory=lambda: MLP([2, 8, 2], seed=3),
        X=X, Y=Y,
        n_steps=n_steps,
        batch_size=BATCH_SIZE,
        world_size=WORLD_SIZE,
        seed=seed,
        fault_plan=fault_plan,
        checkpoint_manager=manager,
        checkpoint_policy=CheckpointPolicy(every_steps=CHECKPOINT_EVERY,
                                           replicate=True),
        integrity_config=IntegrityConfig(verify=verify),
        max_rollback=KEEP_LAST,
        on_quarantine=on_quarantine,
        name="sdc-drill",
    )


def drill_fault_plan(seed: int, n_steps: int):
    """One fault of each silent-corruption class, deterministically placed."""
    from repro.resilience.faults import FaultPlan

    return FaultPlan.silent_corruption(
        seed,
        message_p=MESSAGE_BITFLIP_P,
        gradient={n_steps // 2: [2]},
        checkpoint_rot=[(n_steps - 2, "nam")],
    )


def run_sdc_drill(seed: int = 0, quick: bool = False, verify: bool = True
                  ) -> tuple[SdcDrillReport, str]:
    """Run the drill; returns ``(report, prometheus metrics text)``.

    The fault-free reference run executes first (outside the capture, so
    its traffic does not pollute the corruption ledger), then the faulted
    run under :func:`repro.telemetry.capture`.
    """
    from repro.core.presets import small_msa_system
    from repro.core.scheduler import MsaScheduler

    n_steps = 12 if quick else 24
    reference = _run_training(seed, n_steps, fault_plan=None, verify=False)

    plan = drill_fault_plan(seed, n_steps)
    scheduler = MsaScheduler(small_msa_system())

    def on_quarantine(world_ranks: tuple) -> None:
        # World rank r of the training job runs on booster node r — the
        # mapping a placement would provide; fencing goes through the
        # scheduler's suspect-node machinery.
        for r in world_ranks:
            scheduler.quarantine("esb", r)

    with telemetry.capture() as (tracer, registry):
        result = _run_training(seed, n_steps, fault_plan=plan, verify=verify,
                               on_quarantine=on_quarantine)
        undetected = publish_undetected(registry)
        prometheus = registry.to_prometheus()

    def _by_kind(name: str) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(
            (labels[0][1], int(inst.value))
            for labels, inst in registry.members(name)))

    deviations = [abs(a - b) for a, b in zip(result.losses,
                                             reference.losses)]
    deviations += [float("inf")] * abs(len(result.losses)
                                       - len(reference.losses))
    # np.max propagates NaN, so one NaN loss can never "match".
    max_dev = float(np.max(deviations)) if deviations else 0.0
    matches = bool(np.isfinite(max_dev) and max_dev <= 1e-9)

    report = SdcDrillReport(
        seed=seed,
        verify=verify,
        n_steps=n_steps,
        world_size=WORLD_SIZE,
        injected_by_kind=_by_kind("integrity_corruptions_injected"),
        detected_by_kind=_by_kind("integrity_corruptions_detected"),
        undetected=undetected,
        recoveries=tuple(result.recoveries),
        max_rollback_versions=max(
            (r.rollback_versions for r in result.recoveries), default=0),
        scrub=dict(result.scrub),
        quarantined_nodes=tuple(sorted(scheduler.suspect_nodes("esb"))),
        trajectory_matches_reference=matches,
        max_loss_deviation=float(max_dev),
        final_world_size=result.final_world_size,
    )
    return report, prometheus
