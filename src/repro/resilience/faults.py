"""Deterministic, seed-driven fault injection.

Large heterogeneous systems keep running at scale only because the stack
tolerates node loss and stragglers (the NAM module exists specifically to
accelerate checkpoint/restart, paper ref [12]).  This module supplies the
*injection* side of that story: a :class:`FaultPlan` is a fully resolved,
ordered list of :class:`FaultSpec` entries (all randomness spent at plan
construction from one seed), and a :class:`FaultInjector` schedules each
spec as an ordinary simulated event on a :class:`~repro.simnet.events.Simulator`
— faults are events in the same deterministic queue as everything else,
never monkey-patches.

Fault classes:

* ``NODE_CRASH``     — a compute node dies mid-run and needs repair,
* ``LINK_DEGRADE``   — an inter-module link runs at a fraction of its
  bandwidth for a window,
* ``STRAGGLER``      — a node slows down, stretching whatever runs on it,
* ``MESSAGE_DROP``   — transient message loss on a fabric (handled by
  :class:`~repro.simnet.link.UnreliableLink`),
* ``RANK_KILL``      — a training rank is lost at a given global step
  (consumed by the elastic trainer, not by the scheduler clock).

Ambiguous-failure classes (the gray zone production serving actually
lives in — consumed by the failure detector, circuit breakers and the
partition-aware transports, see :mod:`repro.resilience.detect`):

* ``NETWORK_PARTITION`` — a seeded bipartition of nodes for a window:
  traffic crossing the cut is dropped/timed out until the partition
  heals (``probability`` is the fraction of nodes on the far side;
  the cut itself comes from :func:`partition_cut`),
* ``GRAY_FAILURE``      — a replica whose service time inflates by
  ``magnitude`` while it *still answers health probes* with
  probability ``probability`` — alive enough to fool a binary checker,
  slow enough to wreck the tail.

Silent-corruption classes (consumed by :mod:`repro.resilience.integrity`,
never by the scheduler clock — they damage *data*, not availability):

* ``BITFLIP_MESSAGE``  — each message on the fabric is independently
  corrupted with probability ``magnitude`` (a high-order bit of the
  payload flips in transit),
* ``BITFLIP_GRADIENT`` — one rank's gradient contribution is corrupted
  immediately before the allreduce at training step ``time`` (``node`` is
  the world rank whose contribution rots),
* ``CHECKPOINT_ROT``   — the checkpoint written at training step ``time``
  rots at rest on target ``module`` ("nam" or "pfs"; empty = the
  manager's preferred target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Optional

import numpy as np

from repro.simnet.events import Event, Simulator
from repro.simnet.link import Link, UnreliableLink


class FaultKind(str, Enum):
    NODE_CRASH = "node-crash"
    LINK_DEGRADE = "link-degrade"
    STRAGGLER = "straggler"
    MESSAGE_DROP = "message-drop"
    RANK_KILL = "rank-kill"
    BITFLIP_MESSAGE = "bitflip-message"
    BITFLIP_GRADIENT = "bitflip-gradient"
    CHECKPOINT_ROT = "checkpoint-rot"
    NETWORK_PARTITION = "network-partition"
    GRAY_FAILURE = "gray-failure"


#: Fault classes that are not scheduler-clock events: they are consumed by
#: the elastic trainer, the transport integrity layer or the checkpoint
#: manager instead of firing on the simulator.
DATA_FAULTS = frozenset({
    FaultKind.RANK_KILL,
    FaultKind.MESSAGE_DROP,
    FaultKind.BITFLIP_MESSAGE,
    FaultKind.BITFLIP_GRADIENT,
    FaultKind.CHECKPOINT_ROT,
})


@dataclass(frozen=True)
class FaultSpec:
    """One fully resolved fault: what, where, when, how bad, how long.

    ``time`` is simulated seconds for scheduler-clock faults and the global
    *training step* for ``RANK_KILL`` faults.  ``magnitude`` is the slowdown
    factor for stragglers, link degradation and gray failures, and the drop
    probability for message drops.  ``probability`` is the probe-answer
    probability of a gray-failed node and the far-side node fraction of a
    network partition (unused, 1.0, elsewhere).
    """

    kind: FaultKind
    time: float
    module: str = ""
    node: int = -1
    duration: float = 600.0
    magnitude: float = 1.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")
        if self.kind in (FaultKind.STRAGGLER, FaultKind.LINK_DEGRADE) \
                and self.magnitude < 1.0:
            raise ValueError("slowdown magnitude must be >= 1")
        if self.kind is FaultKind.MESSAGE_DROP \
                and not (0.0 <= self.magnitude < 1.0):
            raise ValueError("drop probability must be in [0, 1)")
        if self.kind is FaultKind.BITFLIP_MESSAGE \
                and not (0.0 < self.magnitude <= 1.0):
            raise ValueError("bitflip probability must be in (0, 1]")
        if self.kind is FaultKind.CHECKPOINT_ROT \
                and self.module not in ("", "nam", "pfs"):
            raise ValueError("checkpoint rot target must be 'nam' or 'pfs'")
        if self.kind is FaultKind.GRAY_FAILURE:
            if self.magnitude < 1.0:
                raise ValueError("gray-failure inflation must be >= 1")
            if not (0.0 <= self.probability <= 1.0):
                raise ValueError("probe-answer probability must be in [0, 1]")
        if self.kind is FaultKind.NETWORK_PARTITION \
                and not (0.0 < self.probability < 1.0):
            raise ValueError("partition far-side fraction must be in (0, 1)")


class FaultPlanError(ValueError):
    """Raised for malformed fault-plan descriptions."""


def partition_cut(seed: int, spec: FaultSpec, labels) -> frozenset:
    """The far side of a :data:`~FaultKind.NETWORK_PARTITION` bipartition.

    Each label (a node id, a ``(module, node)`` pair, a replica id …) is
    assigned a side by a stable hash of ``(seed, spec.time, label)`` —
    independent of iteration order, Python hash randomisation and how
    often the cut is recomputed.  Labels whose hash falls below
    ``spec.probability`` land on the far (unreachable) side; when two or
    more labels exist, both sides are kept non-empty so the cut is a real
    bipartition, never a total blackout or a no-op.
    """
    import hashlib

    labels = list(labels)

    def draw(label) -> float:
        digest = hashlib.blake2b(
            f"{seed}:{spec.time!r}:{label!r}".encode(),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    scored = sorted(((draw(lb), repr(lb), lb) for lb in labels))
    far = {lb for u, _, lb in scored if u < spec.probability}
    if len(labels) >= 2:
        if not far:
            far = {scored[0][2]}
        elif len(far) == len(labels):
            far.discard(scored[-1][2])
    return frozenset(far)


def _chaos_specs(
    rng: np.random.Generator,
    keys: list[str],
    targets: dict[str, int],
    n_partitions: int,
    n_gray: int,
    horizon_s: float,
    window_s: float,
) -> list[FaultSpec]:
    """Seeded NETWORK_PARTITION / GRAY_FAILURE specs (shared by
    :meth:`FaultPlan.chaos` and :meth:`FaultPlan.parse` so the two
    construction paths replay identically for the same seed)."""
    specs: list[FaultSpec] = []
    for _ in range(n_partitions):
        specs.append(FaultSpec(
            kind=FaultKind.NETWORK_PARTITION,
            time=float(rng.uniform(0.0, horizon_s * 0.5)),
            duration=window_s,
            probability=float(rng.uniform(0.25, 0.5)),
        ))
    for _ in range(n_gray):
        key = keys[int(rng.integers(len(keys)))] if keys else ""
        n_nodes = targets.get(key, 1)
        specs.append(FaultSpec(
            kind=FaultKind.GRAY_FAILURE,
            time=float(rng.uniform(0.0, horizon_s * 0.5)),
            module=key,
            node=int(rng.integers(max(n_nodes, 1))),
            duration=window_s,
            magnitude=float(rng.uniform(2.0, 6.0)),
            probability=float(rng.uniform(0.3, 0.8)),
        ))
    return specs


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, fully deterministic list of faults plus its seed.

    All randomness is resolved when the plan is built; armed injectors and
    elastic trainers only *read* it, so a plan replays identically however
    many times it is used.
    """

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def enabled(self) -> bool:
        return len(self.specs) > 0

    def of_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind is kind)

    def kills_at_step(self, step: int) -> tuple[int, ...]:
        """World ranks scheduled to die at training step ``step``."""
        return tuple(
            sorted(int(s.node) for s in self.specs
                   if s.kind is FaultKind.RANK_KILL and int(s.time) == step)
        )

    def gradient_corruptions_at_step(self, step: int) -> tuple[int, ...]:
        """World ranks whose gradient contribution rots at ``step``."""
        return tuple(
            sorted(int(s.node) for s in self.specs
                   if s.kind is FaultKind.BITFLIP_GRADIENT
                   and int(s.time) == step)
        )

    def checkpoint_rots_at_step(self, step: int) -> tuple[FaultSpec, ...]:
        """CHECKPOINT_ROT specs striking the snapshot written at ``step``."""
        return tuple(s for s in self.specs
                     if s.kind is FaultKind.CHECKPOINT_ROT
                     and int(s.time) == step)

    @property
    def message_bitflip_probability(self) -> float:
        """Per-message corruption probability (0 when the plan has none)."""
        flips = self.of_kind(FaultKind.BITFLIP_MESSAGE)
        return flips[0].magnitude if flips else 0.0

    @property
    def has_chaos(self) -> bool:
        """True when the plan carries any ambiguous (gray-zone) fault."""
        return any(s.kind in (FaultKind.NETWORK_PARTITION,
                              FaultKind.GRAY_FAILURE)
                   for s in self.specs)

    def chaos_clause(self) -> str:
        """The canonical ``chaos=…`` clause describing this plan's
        ambiguous faults (empty string when it has none); feeding it back
        through :meth:`parse` with the same seed/targets/horizon/repair
        reproduces the same specs (round-trip property, tested)."""
        parts = []
        n_partition = len(self.of_kind(FaultKind.NETWORK_PARTITION))
        n_gray = len(self.of_kind(FaultKind.GRAY_FAILURE))
        if n_partition:
            parts.append(f"partition:{n_partition}")
        if n_gray:
            parts.append(f"gray:{n_gray}")
        return "chaos=" + ",".join(parts) if parts else ""

    @property
    def has_corruption(self) -> bool:
        """True when the plan carries any silent-data-corruption fault."""
        return any(s.kind in (FaultKind.BITFLIP_MESSAGE,
                              FaultKind.BITFLIP_GRADIENT,
                              FaultKind.CHECKPOINT_ROT)
                   for s in self.specs)

    # -- constructors -------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: fault injection disabled, zero-cost."""
        return cls(seed=0, specs=())

    @classmethod
    def random(
        cls,
        seed: int,
        targets: dict[str, int],
        horizon_s: float = 3600.0,
        n_crashes: int = 0,
        n_stragglers: int = 0,
        n_degrades: int = 0,
        repair_s: float = 600.0,
        slowdown: float = 3.0,
        drop_probability: float = 0.0,
    ) -> "FaultPlan":
        """A seeded random plan over ``targets`` (module key -> node count).

        Times are uniform over ``(0, horizon_s)``; crash/straggler nodes are
        uniform over each module's inventory.  The same (seed, arguments)
        always produce the same plan.
        """
        if not targets and (n_crashes or n_stragglers or n_degrades):
            raise FaultPlanError("node faults need at least one target module")
        rng = np.random.default_rng(seed)
        keys = sorted(targets)
        specs: list[FaultSpec] = []
        for _ in range(n_crashes):
            key = keys[int(rng.integers(len(keys)))]
            specs.append(FaultSpec(
                kind=FaultKind.NODE_CRASH,
                time=float(rng.uniform(0.0, horizon_s)),
                module=key,
                node=int(rng.integers(max(targets[key], 1))),
                duration=repair_s,
            ))
        for _ in range(n_stragglers):
            key = keys[int(rng.integers(len(keys)))]
            specs.append(FaultSpec(
                kind=FaultKind.STRAGGLER,
                time=float(rng.uniform(0.0, horizon_s)),
                module=key,
                node=int(rng.integers(max(targets[key], 1))),
                duration=repair_s,
                magnitude=max(1.0, float(rng.uniform(1.0, slowdown))),
            ))
        for _ in range(n_degrades):
            key = keys[int(rng.integers(len(keys)))]
            specs.append(FaultSpec(
                kind=FaultKind.LINK_DEGRADE,
                time=float(rng.uniform(0.0, horizon_s)),
                module=key,
                duration=repair_s,
                magnitude=max(1.0, float(rng.uniform(1.5, slowdown + 1.0))),
            ))
        if drop_probability > 0.0:
            specs.append(FaultSpec(
                kind=FaultKind.MESSAGE_DROP, time=0.0,
                duration=horizon_s, magnitude=drop_probability,
            ))
        specs.sort(key=lambda s: (s.time, s.kind.value, s.module, s.node))
        return cls(seed=seed, specs=tuple(specs))

    @classmethod
    def rank_kills(cls, seed: int, kills: dict[int, Iterable[int]]) -> "FaultPlan":
        """A plan killing training ranks: ``{step: [world ranks]}``."""
        specs = tuple(
            FaultSpec(kind=FaultKind.RANK_KILL, time=float(step), node=int(rank))
            for step in sorted(kills)
            for rank in sorted(kills[step])
        )
        return cls(seed=seed, specs=specs)

    @classmethod
    def silent_corruption(
        cls,
        seed: int,
        message_p: float = 0.0,
        gradient: Optional[dict[int, Iterable[int]]] = None,
        checkpoint_rot: Optional[Iterable[tuple[int, str]]] = None,
    ) -> "FaultPlan":
        """A plan of silent-data-corruption faults.

        * ``message_p`` — per-message bitflip probability on the fabric,
        * ``gradient`` — ``{step: [world ranks]}`` whose allreduce
          contribution rots at that step,
        * ``checkpoint_rot`` — ``(step, target)`` pairs: the snapshot
          written at ``step`` rots at rest on ``target`` ("nam"/"pfs",
          "" = the manager's preferred target).
        """
        specs: list[FaultSpec] = []
        if message_p > 0.0:
            specs.append(FaultSpec(kind=FaultKind.BITFLIP_MESSAGE, time=0.0,
                                   magnitude=message_p))
        for step in sorted(gradient or {}):
            for rank in sorted(gradient[step]):
                specs.append(FaultSpec(kind=FaultKind.BITFLIP_GRADIENT,
                                       time=float(step), node=int(rank)))
        for step, target in sorted(checkpoint_rot or ()):
            specs.append(FaultSpec(kind=FaultKind.CHECKPOINT_ROT,
                                   time=float(step), module=target))
        return cls(seed=seed, specs=tuple(specs))

    @classmethod
    def chaos(
        cls,
        seed: int,
        targets: Optional[dict[str, int]] = None,
        horizon_s: float = 3600.0,
        n_partitions: int = 1,
        n_gray: int = 1,
        window_s: float = 600.0,
    ) -> "FaultPlan":
        """A seeded partition + gray-failure campaign.

        ``n_partitions`` network bipartition windows and ``n_gray``
        gray-failure episodes, each ``window_s`` long, with start times
        in the first half of ``horizon_s`` so every window can heal
        before the horizon.  Identical to
        ``parse(f"seed={seed},chaos=partition:{n},gray:{m}", …)``.
        """
        targets = dict(targets or {})
        rng = np.random.default_rng(seed)
        specs = _chaos_specs(rng, sorted(targets), targets,
                             n_partitions, n_gray, horizon_s, window_s)
        specs.sort(key=lambda s: (s.time, s.kind.value, s.module, s.node))
        return cls(seed=seed, specs=tuple(specs))

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """This plan plus ``other``'s specs (this plan's seed wins)."""
        specs = list(self.specs) + list(other.specs)
        specs.sort(key=lambda s: (s.time, s.kind.value, s.module, s.node))
        return FaultPlan(seed=self.seed, specs=tuple(specs))

    @classmethod
    def parse(
        cls,
        text: str,
        targets: Optional[dict[str, int]] = None,
        horizon_s: float = 3600.0,
    ) -> "FaultPlan":
        """Parse a CLI-style plan description.

        Grammar (comma-separated ``key=value`` clauses):

        * ``seed=7``            — RNG seed for fault times/locations,
        * ``crash=cm:2``        — 2 node crashes on module ``cm``,
        * ``straggler=esb:1``   — 1 straggler on module ``esb``,
        * ``degrade=cm:1``      — 1 link-degradation window on ``cm``,
        * ``drop=0.05``         — 5% message drop probability,
        * ``bitflip=0.01``      — 1% per-message silent-corruption probability,
        * ``horizon=3600``      — fault window in simulated seconds,
        * ``repair=600``        — node repair / fault window length (s),
        * ``chaos=partition:1,gray:2`` — 1 seeded network-bipartition
          window and 2 gray-failure episodes (``name:count`` terms after
          the ``chaos=`` clause continue it, so the comma form reads
          naturally on the command line).

        Example: ``--faults seed=7,crash=cm:2,chaos=partition:1,gray:1``.
        """
        targets = dict(targets or {})
        seed = 0
        horizon = horizon_s
        repair = 600.0
        drop = 0.0
        bitflip = 0.0
        counts: dict[FaultKind, list[tuple[str, int]]] = {
            FaultKind.NODE_CRASH: [], FaultKind.STRAGGLER: [],
            FaultKind.LINK_DEGRADE: [],
        }
        kind_names = {"crash": FaultKind.NODE_CRASH,
                      "straggler": FaultKind.STRAGGLER,
                      "degrade": FaultKind.LINK_DEGRADE}
        chaos_counts = {"partition": 0, "gray": 0}

        def add_chaos(term: str) -> None:
            name, _, count = term.partition(":")
            name = name.strip().lower()
            if name not in chaos_counts:
                raise FaultPlanError(
                    f"unknown chaos fault {name!r} "
                    f"(choose from {sorted(chaos_counts)})")
            chaos_counts[name] += int(count) if count.strip() else 1

        in_chaos = False
        for clause in filter(None, (c.strip() for c in text.split(","))):
            if "=" not in clause:
                # A bare name:count term continues a preceding chaos=
                # clause — the documented comma grammar
                # ``chaos=partition:1,gray:2`` splits into two tokens.
                if in_chaos and ":" in clause:
                    try:
                        add_chaos(clause)
                    except ValueError as exc:
                        if isinstance(exc, FaultPlanError):
                            raise
                        raise FaultPlanError(
                            f"malformed value in clause {clause!r}") from exc
                    continue
                raise FaultPlanError(f"expected key=value, got {clause!r}")
            key, _, value = clause.partition("=")
            key = key.strip().lower()
            value = value.strip()
            in_chaos = False
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "horizon":
                    horizon = float(value)
                elif key == "repair":
                    repair = float(value)
                elif key == "drop":
                    drop = float(value)
                elif key == "bitflip":
                    bitflip = float(value)
                elif key == "chaos":
                    add_chaos(value)
                    in_chaos = True
                elif key in kind_names:
                    module, _, count = value.partition(":")
                    counts[kind_names[key]].append(
                        (module, int(count) if count else 1))
                else:
                    raise FaultPlanError(f"unknown fault clause {key!r}")
            except ValueError as exc:
                if isinstance(exc, FaultPlanError):
                    raise
                raise FaultPlanError(
                    f"malformed value in clause {clause!r}") from exc
        for entries in counts.values():
            for module, _ in entries:
                if targets and module not in targets:
                    raise FaultPlanError(
                        f"unknown module {module!r}; known: {sorted(targets)}")
        n_by_kind = {k: sum(c for _, c in v) for k, v in counts.items()}
        # Build with the module restriction each clause names: generate one
        # sub-plan per clause so module choices are honoured exactly.
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for kind, entries in counts.items():
            for module, count in entries:
                n_nodes = targets.get(module, 1)
                for _ in range(count):
                    t = float(rng.uniform(0.0, horizon))
                    if kind is FaultKind.NODE_CRASH:
                        specs.append(FaultSpec(
                            kind=kind, time=t, module=module,
                            node=int(rng.integers(max(n_nodes, 1))),
                            duration=repair))
                    elif kind is FaultKind.STRAGGLER:
                        specs.append(FaultSpec(
                            kind=kind, time=t, module=module,
                            node=int(rng.integers(max(n_nodes, 1))),
                            duration=repair,
                            magnitude=max(1.0, float(rng.uniform(1.5, 4.0)))))
                    else:
                        specs.append(FaultSpec(
                            kind=kind, time=t, module=module, duration=repair,
                            magnitude=max(1.0, float(rng.uniform(1.5, 4.0)))))
        specs.extend(_chaos_specs(rng, sorted(targets), targets,
                                  chaos_counts["partition"],
                                  chaos_counts["gray"], horizon, repair))
        if drop > 0.0:
            specs.append(FaultSpec(kind=FaultKind.MESSAGE_DROP, time=0.0,
                                   duration=horizon, magnitude=drop))
        if bitflip > 0.0:
            specs.append(FaultSpec(kind=FaultKind.BITFLIP_MESSAGE, time=0.0,
                                   duration=horizon, magnitude=bitflip))
        specs.sort(key=lambda s: (s.time, s.kind.value, s.module, s.node))
        return cls(seed=seed, specs=tuple(specs))


class FaultInjector:
    """Schedules a plan's faults as events on a simulator.

    Consumers register handlers per fault kind *before* arming; when a
    spec's time arrives the handler runs inside the simulation event loop,
    exactly like a job arrival or phase completion.  ``RANK_KILL`` and
    ``MESSAGE_DROP`` specs are not clock events (training steps / per-message
    loss) and are skipped at arm time — the elastic trainer and
    :meth:`unreliable` consume them instead.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: list[tuple[float, FaultSpec]] = []
        self._handlers: dict[FaultKind, list[Callable[[FaultSpec], None]]] = {}
        self._armed = False

    def on(self, kind: FaultKind, handler: Callable[[FaultSpec], None]) -> None:
        self._handlers.setdefault(kind, []).append(handler)

    def arm(self, sim: Simulator) -> int:
        """Schedule every clock-driven fault on ``sim``; returns the count."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        n = 0
        for spec in self.plan:
            if spec.kind in DATA_FAULTS:
                continue
            evt = sim.timeout(spec.time, value=spec,
                              name=f"fault-{spec.kind.value}")
            evt.add_callback(self._fire)
            n += 1
        return n

    def _fire(self, evt: Event) -> None:
        spec: FaultSpec = evt.value
        self.injected.append((evt.time, spec))
        from repro import telemetry

        telemetry.get_tracer().instant(
            spec.kind.value, "fault", evt.time, track="faults",
            lane="injector", module=spec.module, node=spec.node,
            fault_duration_s=spec.duration, magnitude=spec.magnitude)
        telemetry.get_registry().counter(
            "faults_injected_total", kind=spec.kind.value).inc()
        for handler in self._handlers.get(spec.kind, ()):
            handler(spec)

    # -- simnet-level faults -----------------------------------------------
    def unreliable(self, link: Link) -> Link | UnreliableLink:
        """Wrap ``link`` with the plan's MESSAGE_DROP fault, if any."""
        drops = self.plan.of_kind(FaultKind.MESSAGE_DROP)
        if not drops:
            return link
        return UnreliableLink(link, drop_probability=drops[0].magnitude,
                              seed=self.plan.seed)
