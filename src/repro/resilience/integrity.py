"""End-to-end data integrity: silent-corruption injection and detection.

Long-running distributed ML at MSA scale must survive not just fail-stop
faults but *silent* data corruption — a bit flips on a fabric link, in a
DIMM holding a gradient buffer, or in a checkpoint at rest, and nothing
crashes: the job simply converges to the wrong model.  This module is the
detection side of that story, mirroring how production systems layer it:

* **checksummed envelopes** — every point-to-point message (and therefore
  every collective step) carries a CRC32 of its payload; the receiver
  verifies and, on mismatch, charges a retransmission penalty and consumes
  the sender's retained clean copy (the simulation stand-in for a
  retransmit),
* **ABFT-verified allreduce** — the classic cheap invariant for SUM
  reductions: the sum of the ranks' linear checksums must equal the
  checksum of the reduced result (both are the same linear functional of
  the inputs).  A mismatch proves some contribution was corrupted in
  flight; an O(P)-scalar audit identifies the offending rank so the
  caller can quarantine it and retry the collective over the survivors
  via the existing ``comm.shrink`` elastic path,
* **corruption injection** — the :class:`CorruptionInjector` consumes the
  silent-corruption fault classes of a
  :class:`~repro.resilience.faults.FaultPlan` fully deterministically
  (stable hashes, never shared RNG state), so every drill replays
  byte-identically.

The injected flip is a *stuck-at-one fault on the exponent field* of one
element: the corrupted value lands around ±1e300 (or NaN/Inf), which is
the detectable regime ABFT targets — flips below the reduction's own
floating-point noise floor are indistinguishable from rounding and are
out of scope by construction.

Accounting contract (asserted by the SDC drill and CI): every corruption
the injector introduces increments ``integrity_corruptions_injected``;
every verification catch increments ``integrity_corruptions_detected``;
:func:`publish_undetected` sets the ``integrity_undetected`` gauge to
their difference, which must be **zero** whenever verification is on.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import threading
import zlib
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional

import numpy as np

from repro.resilience.faults import FaultKind, FaultPlan


# ---------------------------------------------------------------------------
# checksums
# ---------------------------------------------------------------------------

#: dtype/shape header CRCs, cached — the same few shapes recur on every hop.
_HEADER_CRC: dict[tuple[str, tuple[int, ...]], int] = {}


def checksum_payload(obj: Any) -> int:
    """Checksum of a payload's canonical bytes (dtype/shape-aware).

    Arrays get an IP-style 64-bit word-sum checksum (the same family as
    the TCP/IP header checksum): computed by NumPy at memory bandwidth —
    an order of magnitude faster than CRC32, which would otherwise
    dominate the cost of checksumming every collective hop — and it
    still detects any single flipped word, which covers the bit-flip
    fault model by construction.  The dtype/shape header and any
    non-word tail are folded in via CRC32; non-array payloads use CRC32
    of their pickled form.
    """
    if isinstance(obj, np.ndarray):
        hkey = (obj.dtype.str, obj.shape)
        base = _HEADER_CRC.get(hkey)
        if base is None:
            base = _HEADER_CRC[hkey] = zlib.crc32(
                f"{hkey[0]}:{hkey[1]}".encode())
        buf = obj.data if obj.flags.c_contiguous else memoryview(obj.tobytes())
        nwords = obj.nbytes // 8
        total = 0
        if nwords:
            words = np.frombuffer(buf, dtype=np.uint64, count=nwords)
            total = int(words.sum(dtype=np.uint64))   # wraps mod 2**64
        tail = bytes(buf[nwords * 8:])
        if tail:
            total += zlib.crc32(tail)
        return (base + total) & 0xFFFFFFFFFFFFFFFF
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return zlib.crc32(bytes(obj))
    try:
        return zlib.crc32(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0  # unpicklable sentinel payloads are not integrity-protected


def linear_checksum(arr: np.ndarray) -> float:
    """The ABFT linear checksum of a contribution: sum of elements.

    Pairwise ``np.sum`` keeps the rounding error around ``1e-15 * L1`` —
    six orders of magnitude below the ``tolerance * L1`` detection
    threshold — while running at memory bandwidth; an exact ``fsum``
    would cost more than the reduction it protects.
    """
    return float(np.sum(np.asarray(arr, dtype=np.float64)))


def _stable_uniform(seed: int, key: str, n: int) -> float:
    """Uniform [0, 1) from a stable hash — independent of call order."""
    digest = hashlib.blake2b(
        f"{seed}:{key}:{n}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def _stable_index(seed: int, key: str, n: int, size: int) -> int:
    digest = hashlib.blake2b(
        f"{seed}:idx:{key}:{n}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % max(size, 1)


def flip_high_bits(arr: np.ndarray, index: int) -> np.ndarray:
    """Stuck-at-one fault on the exponent field of element ``index``.

    Returns a corrupted copy; the element's top byte gets ``|= 0x7E``
    (forcing a huge magnitude) and, if that leaves the bytes unchanged
    (the element was already huge), the sign bit flips instead — the
    result always differs from the input.
    """
    out = np.array(arr, copy=True)
    flat = out.reshape(-1)
    cell = flat[index:index + 1]
    raw = bytearray(cell.tobytes())
    before = bytes(raw)
    raw[-1] |= 0x7E
    if bytes(raw) == before:
        raw[-1] ^= 0x80
    flat[index:index + 1] = np.frombuffer(bytes(raw), dtype=out.dtype)
    return out


def _corrupt_scalar(value: float, seed: int, key: str, n: int) -> float:
    arr = flip_high_bits(np.array([value], dtype=np.float64),
                         _stable_index(seed, key, n, 1))
    return float(arr[0])


# ---------------------------------------------------------------------------
# configuration and envelopes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the verification layer (injection is the fault plan's job).

    * ``verify`` — checksum envelopes on messages and the ABFT invariant
      on gradient allreduces; off = corruption flows silently,
    * ``tolerance`` — relative tolerance of the ABFT sum comparison
      (absorbs the reduction-order float jitter a ring introduces),
    * ``retransmit_penalty_s`` — simulated-clock cost charged when a
      corrupted message is detected and retransmitted.
    """

    verify: bool = True
    tolerance: float = 1e-9
    retransmit_penalty_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.retransmit_penalty_s < 0:
            raise ValueError("retransmit penalty must be non-negative")


#: Sentinel CRC marking a trusted-transport envelope.  The in-process
#: shared-memory transport cannot itself corrupt payloads — the only
#: in-transit corruption source is a :class:`CorruptionInjector` with a
#: positive per-message probability — so when no such injector is active
#: the sender skips the payload checksum and the receiver skips
#: verification.  Real checksums are non-negative 64-bit values, so the
#: sentinel can never collide with one.
TRUSTED_CRC = -1


class Envelope(NamedTuple):
    """A checksummed message payload.

    ``clean`` is ``None`` for untampered payloads; when the injector
    corrupted the payload in transit it holds the sender's retained copy,
    standing in for the retransmit buffer a real reliable transport keeps.
    A ``crc`` of :data:`TRUSTED_CRC` marks a trusted-transport envelope
    that carries no checksum at all.
    """

    payload: Any
    crc: int
    clean: Any = None


class GradientCorruptionError(RuntimeError):
    """A verified allreduce caught corrupted contributions.

    Carries the training step and the offending *world* ranks so the
    elastic trainer can quarantine them and shrink the ring.
    """

    def __init__(self, step: int, world_ranks: tuple[int, ...]) -> None:
        super().__init__(
            f"gradient corruption at step {step}: "
            f"offending world ranks {list(world_ranks)}")
        self.step = step
        self.world_ranks = world_ranks


# ---------------------------------------------------------------------------
# the injector: consumes a plan's silent-corruption faults
# ---------------------------------------------------------------------------

class CorruptionInjector:
    """Deterministic silent-corruption injection driven by a fault plan.

    All decisions derive from stable hashes of ``(plan.seed, stream key,
    per-stream counter)``; per-(src, dst) message streams are advanced
    only by their own sender thread, so multi-threaded SPMD runs replay
    identically for a given plan.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.message_p = plan.message_bitflip_probability
        self._lock = threading.Lock()
        self._msg_seq: dict[tuple[int, int], int] = {}
        self._consumed_grads: set[tuple[int, int]] = set()
        #: Local injection log: (kind, stream key) in injection order.
        self.injected: list[tuple[str, str]] = []

    @property
    def active(self) -> bool:
        return self.plan.has_corruption

    def _count(self, kind: FaultKind, key: str) -> None:
        from repro import telemetry

        telemetry.get_registry().counter(
            "integrity_corruptions_injected", kind=kind.value).inc()
        with self._lock:
            self.injected.append((kind.value, key))

    # -- messages ----------------------------------------------------------
    def maybe_corrupt_message(self, obj: Any, src: int, dst: int
                              ) -> tuple[Any, bool]:
        """Corrupt ``obj`` with the plan's per-message probability.

        Only numeric payloads (arrays and floats) are corruptible — the
        physical fault model is a flipped bit in a data word.  Returns
        ``(payload, corrupted?)``; the original object is never mutated.
        """
        if self.message_p <= 0.0:
            return obj, False
        corruptible = (isinstance(obj, np.ndarray) and obj.size > 0
                       and obj.dtype.kind in "fiu") or isinstance(obj, float)
        if not corruptible:
            return obj, False
        key = f"msg:{src}>{dst}"
        with self._lock:
            n = self._msg_seq.get((src, dst), 0)
            self._msg_seq[(src, dst)] = n + 1
        if _stable_uniform(self.plan.seed, key, n) >= self.message_p:
            return obj, False
        if isinstance(obj, float):
            corrupted: Any = _corrupt_scalar(obj, self.plan.seed, key, n)
        else:
            corrupted = flip_high_bits(
                obj, _stable_index(self.plan.seed, key, n, obj.size))
        self._count(FaultKind.BITFLIP_MESSAGE, f"{key}#{n}")
        return corrupted, True

    # -- gradients ---------------------------------------------------------
    def corrupt_contribution(self, arr: np.ndarray, step: int,
                             world_rank: int) -> tuple[np.ndarray, bool]:
        """Apply any BITFLIP_GRADIENT spec for (``step``, ``world_rank``).

        Each spec fires exactly once — a step replayed after a rollback
        does not re-corrupt (the offending rank has left the ring).
        """
        if world_rank not in self.plan.gradient_corruptions_at_step(step):
            return arr, False
        with self._lock:
            if (step, world_rank) in self._consumed_grads:
                return arr, False
            self._consumed_grads.add((step, world_rank))
        key = f"grad:{step}:{world_rank}"
        corrupted = flip_high_bits(
            arr, _stable_index(self.plan.seed, key, 0, arr.size))
        self._count(FaultKind.BITFLIP_GRADIENT, key)
        return corrupted, True


# ---------------------------------------------------------------------------
# the comm-layer context: wrap on send, verify on receive
# ---------------------------------------------------------------------------

class IntegrityContext:
    """Per-world integrity state shared by every rank's communicator.

    Installed on a :class:`~repro.mpi.comm.Communicator` (and inherited by
    every communicator derived from it via ``Split``/``shrink``/``Dup``),
    it sits inside ``_send_raw``/``_recv_raw`` so collective-internal
    traffic is protected exactly like user point-to-point messages.
    """

    def __init__(self, injector: Optional[CorruptionInjector] = None,
                 config: Optional[IntegrityConfig] = None) -> None:
        self.injector = injector
        self.config = config or IntegrityConfig()

    @property
    def verify(self) -> bool:
        return self.config.verify

    def outbound(self, obj: Any, src: int, dst: int) -> Any:
        """The wire form of ``obj``: possibly corrupted, possibly enveloped."""
        injector = self.injector
        if injector is None or injector.message_p <= 0.0:
            # Trusted fast path: nothing can tamper with this message in
            # transit (the transport is shared memory and no injector is
            # armed), so checksumming it could only ever confirm a match.
            # Skipping the computation on both ends is behavior-preserving
            # and removes the envelope layer's dominant per-message cost.
            # Gradient corruption is out of scope here by construction:
            # it is applied *before* send, so even the slow path's
            # checksum is taken over the already-corrupted contribution.
            if not self.config.verify:
                return obj
            return Envelope(payload=obj, crc=TRUSTED_CRC)
        wire, corrupted = injector.maybe_corrupt_message(obj, src, dst)
        if not self.verify:
            return wire          # unprotected: corruption flows silently
        return Envelope(payload=wire, crc=checksum_payload(obj),
                        clean=obj if corrupted else None)

    def inbound(self, envelope: Envelope) -> tuple[Any, float]:
        """Verify an envelope; returns ``(payload, clock penalty)``.

        On a checksum mismatch the corruption is counted as detected, the
        retransmission penalty is charged, and the sender's retained clean
        copy is consumed.
        """
        if envelope.crc == TRUSTED_CRC:
            return envelope.payload, 0.0
        if checksum_payload(envelope.payload) == envelope.crc:
            return envelope.payload, 0.0
        from repro import telemetry

        telemetry.get_registry().counter(
            "integrity_corruptions_detected",
            kind=FaultKind.BITFLIP_MESSAGE.value).inc()
        if envelope.clean is None:
            raise RuntimeError(
                "corrupted message with no retransmit copy — envelope "
                "damaged outside the injector's fault model")
        return envelope.clean, self.config.retransmit_penalty_s


# ---------------------------------------------------------------------------
# ABFT-verified allreduce
# ---------------------------------------------------------------------------

def verified_grad_allreduce(
    comm,
    fused: np.ndarray,
    injector: Optional[CorruptionInjector],
    step: int,
    config: IntegrityConfig,
) -> np.ndarray:
    """SUM-allreduce ``fused`` with the ABFT invariant checked.

    Every rank contributes its (possibly injector-corrupted) buffer; the
    cheap always-on check compares the checksum-of-sum against the
    allreduced sum-of-checksums.  On mismatch an O(P)-scalar audit
    identifies the offending world ranks and a
    :class:`GradientCorruptionError` is raised **on every rank** (the
    invariant is computed from collective results, so the decision is
    globally consistent) — the caller quarantines the offenders and
    retries over the survivors.

    With ``config.verify`` off the reduction is returned unchecked, which
    is exactly how silent corruption earns its name.
    """
    world_rank = comm._world(comm.rank)
    clean_sum = linear_checksum(fused)
    clean_l1 = float(np.sum(np.abs(fused)))
    wire = fused
    if injector is not None:
        wire, _ = injector.corrupt_contribution(fused, step, world_rank)
    if not config.verify:
        return comm.allreduce(wire)
    # Piggyback the two checksum lanes onto the gradient buffer itself, so
    # verification costs zero extra collective rounds.  The lanes are
    # appended *after* injection: the fault model corrupts a rank's
    # gradient contribution, and the lanes carry the clean invariants of
    # exactly that contribution (in-transit flips are the envelope
    # layer's job, which protects this combined buffer like any message).
    combined = np.concatenate([
        np.asarray(wire, dtype=np.float64).ravel(),
        (clean_sum, clean_l1)])
    reduced = comm.allreduce(combined)
    out = reduced[:-2].astype(fused.dtype, copy=False).reshape(fused.shape)
    totals = reduced[-2:]
    actual = float(np.sum(out))
    scale = max(1.0, float(totals[1]))
    if math.isfinite(actual) \
            and abs(actual - float(totals[0])) <= config.tolerance * scale:
        return out
    # Invariant violated: audit per-rank contributions to find offenders.
    sent = float(np.sum(wire))
    audit = comm.allgather((clean_sum, sent))
    offenders = tuple(
        comm._world(i) for i, (clean, actual_i) in enumerate(audit)
        if not (math.isfinite(actual_i)
                and abs(actual_i - clean)
                <= config.tolerance * max(1.0, abs(clean))))
    if not offenders:       # float-jitter false alarm — accept the result
        return out
    if comm.rank == 0:
        from repro import telemetry

        telemetry.get_registry().counter(
            "integrity_corruptions_detected",
            kind=FaultKind.BITFLIP_GRADIENT.value).inc(len(offenders))
    raise GradientCorruptionError(step, offenders)


# ---------------------------------------------------------------------------
# end-of-run reconciliation
# ---------------------------------------------------------------------------

def corruption_totals(registry=None) -> tuple[float, float]:
    """(injected, detected) totals across every corruption kind."""
    from repro import telemetry

    reg = registry if registry is not None else telemetry.get_registry()
    injected = sum(inst.value for _, inst
                   in reg.members("integrity_corruptions_injected"))
    detected = sum(inst.value for _, inst
                   in reg.members("integrity_corruptions_detected"))
    return float(injected), float(detected)


def publish_undetected(registry=None) -> float:
    """Set the ``integrity_undetected`` gauge; returns its value.

    The reconciliation invariant of the whole layer: with verification on,
    every injected corruption must have been caught somewhere (in transit,
    at the allreduce, on restore, or by the scrub), so the gauge must read
    zero — CI fails the SDC drill otherwise.
    """
    from repro import telemetry

    reg = registry if registry is not None else telemetry.get_registry()
    injected, detected = corruption_totals(reg)
    undetected = injected - detected
    reg.gauge("integrity_undetected").set(undetected)
    return undetected
