"""Checkpoint cadence and placement policy.

The NAM's original mission (paper ref [12]) is accelerating
checkpoint/restart: snapshots stream into fabric-attached memory at
memory-class bandwidth with the parallel filesystem as the durable
fallback.  :class:`CheckpointPolicy` makes both knobs — how often to
snapshot and where — an explicit object that the elastic trainer and the
checkpoint manager share, instead of constants buried in a loop.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where training snapshots are taken.

    * ``every_steps`` — checkpoint cadence in optimiser steps,
    * ``prefer`` — primary target (``"nam"`` fast path or ``"pfs"``),
    * ``fallback`` — on a missing/corrupt primary, fall back to the other
      target instead of failing the restore,
    * ``replicate`` — write every snapshot to *both* targets so the
      fallback copy exists (NAM is volatile memory; the PFS replica is what
      survives a NAM loss).
    """

    every_steps: int = 10
    prefer: str = "nam"
    fallback: bool = True
    replicate: bool = False

    def __post_init__(self) -> None:
        if self.every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        if self.prefer not in ("nam", "pfs"):
            raise ValueError("prefer must be 'nam' or 'pfs'")
        if self.replicate and not self.fallback:
            raise ValueError("replicate without fallback is wasted I/O")

    @property
    def secondary(self) -> str:
        return "pfs" if self.prefer == "nam" else "nam"

    def should_checkpoint(self, completed_steps: int) -> bool:
        """True when a snapshot is due after ``completed_steps`` steps."""
        if completed_steps < 0:
            raise ValueError("completed_steps must be non-negative")
        return completed_steps % self.every_steps == 0

    def restore_order(self) -> tuple[str, ...]:
        """Targets to try on restore, in order."""
        if self.fallback:
            return (self.prefer, self.secondary)
        return (self.prefer,)
