"""Recovery-cost accounting: injected faults vs observed recoveries.

Serviceability claims need numbers: how long jobs took to get rescheduled
after a node died (MTTR), how many retries the workload burned, and how
much already-computed work was lost.  The scheduler and the elastic
trainer both feed a :class:`ResilienceReport`, and the bench/property
suites assert recovery cost against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faults import FaultSpec


@dataclass(frozen=True)
class FailureEvent:
    """A job's phase was killed by an injected fault."""

    job_name: str
    phase_index: int
    time: float
    module_key: str
    node: int
    lost_node_seconds: float
    attempt: int                   # failure number for this job (1-based)


@dataclass(frozen=True)
class RequeueEvent:
    """A failed job was put back in the queue after backoff."""

    job_name: str
    attempt: int
    backoff_s: float
    time: float                    # when the requeue was scheduled


@dataclass(frozen=True)
class FailoverEvent:
    """An online-serving replica died and its in-flight work was drained.

    The serving engine records one of these per replica crash: which
    replica, where it lived, how many admitted requests were in flight at
    the kill, and the backoff applied before they re-entered the queue
    (driven by the shared :class:`~repro.resilience.retry.RetryPolicy`).
    A correct drill ends with every drained request completed on a
    surviving replica — requests lost would show up as an accounting gap
    the serving tests refuse.
    """

    replica_id: int
    module_key: str
    node: int
    time: float
    requests_drained: int
    backoff_s: float


@dataclass(frozen=True)
class RecoveryEvent:
    """A previously failed job started running again."""

    job_name: str
    attempt: int
    failed_at: float
    restarted_at: float

    @property
    def time_to_recover(self) -> float:
        return self.restarted_at - self.failed_at


@dataclass
class ResilienceReport:
    """Everything that went wrong and how the system coped."""

    faults_injected: list[tuple[float, "FaultSpec"]] = field(default_factory=list)
    failures: list[FailureEvent] = field(default_factory=list)
    requeues: list[RequeueEvent] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    jobs_failed_permanently: list[str] = field(default_factory=list)
    repairs: list[tuple[float, str, int]] = field(default_factory=list)

    # -- headline metrics ----------------------------------------------------
    @property
    def total_retries(self) -> int:
        return len(self.requeues)

    @property
    def lost_node_seconds(self) -> float:
        return sum(f.lost_node_seconds for f in self.failures)

    @property
    def mttr_s(self) -> Optional[float]:
        """Mean time from a failure to the job running again."""
        if not self.recoveries:
            return None
        return sum(r.time_to_recover for r in self.recoveries) / len(self.recoveries)

    def retries_per_job(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rq in self.requeues:
            out[rq.job_name] = out.get(rq.job_name, 0) + 1
        return out

    def backoff_schedule(self, job_name: str) -> list[float]:
        """Backoff delays a job actually received, in attempt order."""
        return [rq.backoff_s for rq in
                sorted((r for r in self.requeues if r.job_name == job_name),
                       key=lambda r: r.attempt)]

    def publish_metrics(self, registry=None) -> None:
        """Publish the report's headline numbers into a metrics registry."""
        from repro import telemetry

        reg = registry if registry is not None else telemetry.get_registry()
        reg.gauge("resilience_faults_injected").set(len(self.faults_injected))
        reg.gauge("resilience_phase_failures").set(len(self.failures))
        reg.gauge("resilience_retries").set(self.total_retries)
        reg.gauge("resilience_recoveries").set(len(self.recoveries))
        reg.gauge("resilience_permanent_failures").set(
            len(self.jobs_failed_permanently))
        reg.gauge("resilience_lost_node_seconds").set(self.lost_node_seconds)
        mttr = self.mttr_s
        if mttr is not None:
            reg.gauge("resilience_mttr_seconds").set(mttr)

    def summary(self) -> str:
        rows = [
            "resilience report:",
            f"  faults injected   : {len(self.faults_injected)}",
            f"  phase failures    : {len(self.failures)}",
            f"  retries           : {self.total_retries}",
            f"  recoveries        : {len(self.recoveries)}",
            f"  permanent failures: {len(self.jobs_failed_permanently)}",
            f"  lost work         : {self.lost_node_seconds:,.0f} node-s",
        ]
        mttr = self.mttr_s
        rows.append(f"  MTTR              : "
                    + (f"{mttr:,.0f} s" if mttr is not None else "n/a"))
        return "\n".join(rows)
