"""Retry with exponential backoff and deterministic jitter.

Production schedulers (IBM Deep Learning Service, Slurm's requeue) back a
failed job off before requeueing it so a flapping node doesn't thrash the
queue, and add jitter so simultaneous failures don't retry in lock-step.
Jitter here is *deterministic*: a stable hash of (seed, job key, attempt)
drives it, so simulations replay identically and delays stay reproducible
across processes and Python hash randomisation.

Monotonicity guarantee: ``backoff_factor >= 1 + jitter`` is enforced, which
makes the delay sequence per job non-decreasing in the attempt number even
at the jitter extremes — the property suite sweeps this.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass


def _stable_uniform(seed: int, key: str, attempt: int) -> float:
    """Uniform [0, 1) from a stable hash — independent of call order."""
    digest = hashlib.blake2b(
        f"{seed}:{key}:{attempt}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded deterministic jitter.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``base_delay_s * backoff_factor**(attempt-1) * (1 + jitter * u)`` with
    ``u`` uniform in [0, 1) derived from ``(seed, key, attempt)``.
    """

    max_retries: int = 3
    base_delay_s: float = 30.0
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    max_delay_s: float = 24 * 3600.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.backoff_factor < 1.0 + self.jitter:
            raise ValueError(
                "backoff_factor must be >= 1 + jitter "
                "(guarantees non-decreasing delays)")
        if self.max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive")

    def should_retry(self, attempt: int) -> bool:
        """True if a job that has failed ``attempt`` times may run again."""
        if attempt < 0:
            raise ValueError("attempt count must be non-negative")
        return attempt <= self.max_retries

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff delay (s) before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        # Compare in log space first: for large attempts the exponential
        # overflows float range long before min() could cap it, so when
        # the un-jittered delay already reaches the cap, return the cap
        # directly (jitter only pushes it further over).
        log_raw = (math.log(self.base_delay_s)
                   + (attempt - 1) * math.log(self.backoff_factor))
        if log_raw >= math.log(self.max_delay_s):
            return self.max_delay_s
        raw = self.base_delay_s * self.backoff_factor ** (attempt - 1)
        u = _stable_uniform(self.seed, key, attempt)
        return min(raw * (1.0 + self.jitter * u), self.max_delay_s)

    def delays(self, key: str = "") -> list[float]:
        """The full backoff schedule for one job."""
        return [self.delay(a, key) for a in range(1, self.max_retries + 1)]

    def delay_within(self, attempt: int, now: float, deadline_s: float,
                     key: str = "") -> float:
        """Deadline-aware jittered backoff: the :meth:`delay` for
        ``attempt``, clamped so the retry fires no later than
        ``deadline_s`` (absolute, same clock as ``now``).

        Serving-plane retries use this instead of the raw schedule: a
        request with 80 ms of budget left must not sleep 200 ms of
        backoff — better to retry immediately-ish and be honest about
        the deadline miss than to manufacture one.  Returns 0 when the
        deadline has already passed (retry at once; the miss is already
        a fact).
        """
        return max(0.0, min(self.delay(attempt, key), deadline_s - now))


#: Retrying disabled: first failure is terminal.
NO_RETRY = RetryPolicy(max_retries=0)


class RetryBudget:
    """A global cap keeping retries from amplifying an outage.

    The classic failure mode: capacity drops, every failed request
    retries, offered load doubles, the survivors drown — the retry storm
    finishes what the outage started.  The budget (the Google SRE
    pattern) makes retries a *fraction* of real traffic instead: each
    admitted request earns ``ratio`` retry tokens (bounded by
    ``burst``); a retry spends one.  ``try_spend`` refuses once the pool
    is dry — callers convert the refused retry into a shed or skip the
    optional work (a hedge).  ``spend_forced`` is for retries that are
    mandatory for correctness (failover of already-admitted requests can
    never be dropped): it may push the balance negative, and a negative
    balance is the overload signal the brownout controller keys on.

    Deterministic: plain arithmetic, no clock, no randomness.
    """

    def __init__(self, ratio: float = 0.1, burst: float = 20.0,
                 floor: float = 5.0) -> None:
        if ratio < 0:
            raise ValueError("retry ratio must be non-negative")
        if burst < 1:
            raise ValueError("burst must hold at least one token")
        if floor < 0:
            raise ValueError("floor must be non-negative")
        self.ratio = ratio
        self.burst = burst
        self._tokens = floor
        self.spent = 0.0
        self.refused = 0
        self.forced_overdraft = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    @property
    def exhausted(self) -> bool:
        return self._tokens < 1.0

    @property
    def in_overdraft(self) -> bool:
        """True while forced retries have outrun the earned budget."""
        return self._tokens < 0.0

    def note_request(self, n: float = 1.0) -> None:
        """Earn budget: ``n`` admitted requests worth of retry tokens."""
        if n < 0:
            raise ValueError("cannot earn negative budget")
        self._tokens = min(self.burst, self._tokens + n * self.ratio)

    def try_spend(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if the pool covers them (optional work)."""
        if self._tokens >= n:
            self._tokens -= n
            self.spent += n
            return True
        self.refused += 1
        return False

    def spend_forced(self, n: float = 1.0) -> None:
        """Spend unconditionally (mandatory failover); may go negative."""
        self._tokens -= n
        self.spent += n
        if self._tokens < 0:
            self.forced_overdraft = max(self.forced_overdraft,
                                        -self._tokens)
