"""Online model serving on the MSA simulator.

The paper's workload story is train-on-CM/ESB, infer "in (near) real
time" on whatever module is free — this package is that second half as a
first-class subsystem: seeded arrival traces, SLO admission control, a
result cache, dynamic micro-batching, matchmade replica placement with
module-aware autoscaling, and crash failover that never loses an admitted
request.  Everything runs on :mod:`repro.simnet.events`, so whole serving
scenarios replay deterministically.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    TokenBucket,
)
from repro.serving.batcher import BatchPolicy, MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.defense import (
    BreakerPolicy,
    BreakerState,
    BrownoutController,
    BrownoutLevel,
    BrownoutPolicy,
    CircuitBreaker,
    DefenseConfig,
    HedgePolicy,
)
from repro.serving.engine import (
    SERVING_RETRY,
    HedgeGroup,
    ServingConfig,
    ServingEngine,
    ServingReport,
    simulate_serving,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.replicas import (
    Autoscaler,
    AutoscalerConfig,
    Replica,
    ReplicaPool,
    ScaleEvent,
)
from repro.serving.request import (
    ArrivalPattern,
    Request,
    TraceConfig,
    generate_trace,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "ArrivalPattern",
    "Autoscaler",
    "AutoscalerConfig",
    "BatchPolicy",
    "BreakerPolicy",
    "BreakerState",
    "BrownoutController",
    "BrownoutLevel",
    "BrownoutPolicy",
    "CircuitBreaker",
    "DefenseConfig",
    "HedgeGroup",
    "HedgePolicy",
    "MicroBatcher",
    "Replica",
    "ReplicaPool",
    "Request",
    "ResultCache",
    "SERVING_RETRY",
    "ScaleEvent",
    "ServingConfig",
    "ServingEngine",
    "ServingMetrics",
    "ServingReport",
    "TokenBucket",
    "TraceConfig",
    "generate_trace",
    "simulate_serving",
]
