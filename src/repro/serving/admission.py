"""Admission control: token-bucket rate limiting and load shedding.

A serving tier that admits everything during overload serves *nobody*
within the SLO — queues grow without bound and every request misses its
deadline.  Production platforms (the IBM Deep Learning Service gateway
pattern) put two gates in front of the queue instead:

* a **token bucket** caps the sustained admission rate while allowing
  short bursts up to the bucket depth, and
* a **queue-depth shed** drops requests once the backlog exceeds what the
  replicas could clear within a latency budget anyway.

Rejected requests are *not* failures of the serving engine — they are
explicit, counted decisions (the goodput report keeps admitted and
rejected strictly separate, and the failover drill guarantees completion
only for requests that were actually admitted).

Both gates are deterministic: the bucket refills lazily from elapsed
simulated time, so the same trace always admits the same requests.
"""

from __future__ import annotations

from dataclasses import dataclass


class TokenBucket:
    """A classic token bucket on the simulated clock.

    ``rate_per_s`` tokens accrue per simulated second up to ``burst``
    capacity; each admitted request spends one token.  A non-positive
    ``rate_per_s`` disables the gate (always admits).
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s > 0 and burst < 1:
            raise ValueError("burst capacity must hold at least one token")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        """Spend one token if available at simulated time ``now``."""
        if self.rate_per_s <= 0:
            return True
        if now < self._last:
            raise ValueError("token bucket clock ran backwards")
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate_per_s)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionPolicy:
    """The gate configuration in front of the request queue.

    ``rate_limit_per_s <= 0`` disables rate limiting;
    ``max_queue_depth <= 0`` disables shedding.
    """

    rate_limit_per_s: float = 0.0
    burst: float = 50.0
    max_queue_depth: int = 0

    def bucket(self) -> TokenBucket:
        return TokenBucket(self.rate_limit_per_s, self.burst)


@dataclass
class AdmissionDecision:
    """Why a request was turned away (or not)."""

    admitted: bool
    reason: str = ""               # "" | "rate-limited" | "shed"
    #: Shed sub-reason ("queue-depth" | "brownout-bronze" |
    #: "brownout-uncached") — telemetry detail; the metrics ledger folds
    #: every variant into the one ``shed`` counter so the conservation
    #: law (offered = admitted + rate_limited + shed) is untouched.
    detail: str = ""


class AdmissionController:
    """Stateful admission gate the engine consults per arrival."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._bucket = policy.bucket()
        self.n_rate_limited = 0
        self.n_shed = 0

    def decide(
        self,
        now: float,
        queue_depth: int,
        brownout_level: int = 0,
        tier: str = "gold",
        cacheable: bool = True,
    ) -> AdmissionDecision:
        """Gate one arrival.

        The three trailing arguments are the brownout controller's
        degradation signals (see
        :class:`~repro.serving.defense.BrownoutLevel`): at level >= 2 the
        bronze tier is shed, at level 3 only requests servable from the
        cache (``cacheable``) are admitted.  Defaults reproduce the
        pre-defense gate exactly.
        """
        if not self._bucket.try_take(now):
            self.n_rate_limited += 1
            return AdmissionDecision(False, "rate-limited")
        if 0 < self.policy.max_queue_depth <= queue_depth:
            self.n_shed += 1
            return AdmissionDecision(False, "shed", "queue-depth")
        if brownout_level >= 2 and tier == "bronze":
            self.n_shed += 1
            return AdmissionDecision(False, "shed", "brownout-bronze")
        if brownout_level >= 3 and not cacheable:
            self.n_shed += 1
            return AdmissionDecision(False, "shed", "brownout-uncached")
        return AdmissionDecision(True)
