"""Dynamic micro-batching: per-model queues with size/timeout triggers.

GPU inference throughput is overwhelmingly batch-driven — one V100 forward
pass over 16 samples costs barely more than over one (the fixed host
overhead in :class:`~repro.distributed.perfmodel.InferencePerfModel`
dominates small batches).  The batcher therefore holds arriving requests
briefly to fill batches, governed by the two classic knobs:

* ``max_batch_requests`` — dispatch immediately once a queue holds a full
  batch,
* ``max_wait_s`` — never hold the queue head longer than this, however
  empty the batch (the latency cost of batching is bounded).

Queues are strictly per model: batches never mix models (different models
would need different weights resident on the replica).  Everything is a
plain deterministic data structure — the engine drives it from simulated
events and asks two questions: "is a batch ready now?" and "when must a
timer fire?".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.serving.request import Request

#: Tolerance when comparing simulated times (timer fires exactly at the
#: deadline; float addition must not push it an ULP short).
_EPS = 1e-9


@dataclass(frozen=True)
class BatchPolicy:
    """The two micro-batching knobs."""

    max_batch_requests: int = 8
    max_wait_s: float = 0.010

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


class MicroBatcher:
    """Per-model FIFO queues under one :class:`BatchPolicy`."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._queues: dict[str, deque[tuple[float, Request]]] = {}
        self._wait_stretch = 1.0

    def set_wait_stretch(self, factor: float) -> None:
        """Scale ``max_wait_s`` by ``factor`` (brownout throughput mode).

        Stretching the window trades queueing latency for bigger batches —
        the mildest rung of the degradation ladder.  ``factor=1`` restores
        the configured window.
        """
        if factor < 1.0:
            raise ValueError("wait stretch must be >= 1")
        self._wait_stretch = factor

    @property
    def effective_wait_s(self) -> float:
        return self.policy.max_wait_s * self._wait_stretch

    # -- enqueue ------------------------------------------------------------
    def enqueue(self, req: Request, now: float, front: bool = False) -> None:
        """Add a request; ``front=True`` re-queues drained failover work.

        Re-queued requests keep their *original* arrival as the enqueue
        time, so their wait already exceeds ``max_wait_s`` and they ship in
        the very next batch rather than waiting out a fresh timer.
        """
        q = self._queues.setdefault(req.model, deque())
        if front:
            q.appendleft((req.arrival_s, req))
        else:
            q.append((now, req))

    def requeue_front(self, requests: list[Request]) -> None:
        """Put drained requests back at the head, preserving their order."""
        for req in reversed(requests):
            self.enqueue(req, req.arrival_s, front=True)

    # -- inspection ---------------------------------------------------------
    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth_of(self, model: str) -> int:
        return len(self._queues.get(model, ()))

    def oldest_wait(self, model: str, now: float) -> float:
        q = self._queues.get(model)
        if not q:
            return 0.0
        return now - q[0][0]

    def ready_model(self, now: float) -> Optional[str]:
        """The model whose queue should dispatch now, or ``None``.

        A queue is ready when it holds a full batch or its head has waited
        out ``max_wait_s``.  Among ready queues the deepest wins (drain the
        biggest backlog first); ties break on head age, then model name —
        all deterministic.
        """
        best: Optional[tuple[int, float, str]] = None
        for model, q in self._queues.items():
            if not q:
                continue
            wait = now - q[0][0]
            if len(q) >= self.policy.max_batch_requests \
                    or wait >= self.effective_wait_s - _EPS:
                cand = (-len(q), -wait, model)
                if best is None or cand < best:
                    best = cand
        return best[2] if best is not None else None

    def next_deadline(self) -> Optional[float]:
        """Earliest time a queue head hits ``max_wait_s`` (timer target)."""
        heads = [q[0][0] for q in self._queues.values() if q]
        if not heads:
            return None
        return min(heads) + self.effective_wait_s

    # -- dispatch -----------------------------------------------------------
    def take(self, model: str) -> list[Request]:
        """Pop up to one batch from ``model``'s queue, FIFO order."""
        q = self._queues.get(model)
        if not q:
            raise ValueError(f"no queued requests for model {model!r}")
        n = min(len(q), self.policy.max_batch_requests)
        return [q.popleft()[1] for _ in range(n)]
