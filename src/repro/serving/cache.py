"""Result cache with request coalescing.

Online RS serving re-classifies the same scene tiles over and over (every
downstream consumer asks for the hot disaster area), so a small LRU over
request keys converts a large fraction of the offered load into
sub-millisecond hits that never touch a replica.

Two distinct fast paths, counted separately:

* **hit** — the key's result is already cached; the request completes
  after a constant lookup latency,
* **coalesced** — the key is *being computed right now* by an in-flight
  batch; the request attaches to that computation and completes with it
  (single-flight semantics).  Without coalescing, a popularity spike on a
  cold key stampedes the replicas with duplicate work.

The cache is a plain deterministic data structure on the simulated clock:
same trace, same hits, byte-identical metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ResultCache:
    """LRU keyed by request key; ``capacity <= 0`` disables caching."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._store: OrderedDict[int, float] = OrderedDict()
        #: Keys currently being computed -> waiting request ids.
        self._inflight: dict[int, list[int]] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without new replica work."""
        total = self.hits + self.misses + self.coalesced
        return (self.hits + self.coalesced) / total if total else 0.0

    def contains(self, key: int) -> bool:
        """Pure membership probe: would ``key`` hit or coalesce right now?

        Unlike :meth:`lookup` this touches no counters, no LRU order and
        no in-flight registration — the cache-only brownout rung uses it
        to decide admission without perturbing cache statistics.
        """
        return self.enabled and (key in self._store or key in self._inflight)

    # -- lookup path --------------------------------------------------------
    def lookup(self, key: int, req_id: int) -> str:
        """Classify one admitted request: ``hit``/``coalesce``/``miss``.

        A miss registers the key as in-flight — the caller must later call
        :meth:`complete` (or :meth:`abandon` if the computation died with
        no retry) exactly once per missed key.
        """
        if not self.enabled:
            return "miss"
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return "hit"
        if key in self._inflight:
            self._inflight[key].append(req_id)
            self.coalesced += 1
            return "coalesce"
        self.misses += 1
        self._inflight[key] = []
        return "miss"

    # -- completion path ----------------------------------------------------
    def complete(self, key: int, now: float) -> list[int]:
        """The in-flight computation of ``key`` finished at ``now``.

        Inserts the result, evicting LRU entries beyond capacity, and
        returns the coalesced waiter request ids to complete alongside.
        """
        if not self.enabled:
            return []
        waiters = self._inflight.pop(key, [])
        self._store[key] = now
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
        return waiters

    def abandon(self, key: int) -> list[int]:
        """The computation of ``key`` was lost (replica crash, no result).

        Drops the in-flight registration and hands the waiters back to the
        caller — they must re-enter the queue with the crashed request.
        """
        if not self.enabled:
            return []
        return self._inflight.pop(key, [])

    def inflight_waiters(self, key: int) -> Optional[list[int]]:
        """Waiter ids if ``key`` is being computed, else ``None``."""
        return self._inflight.get(key)
