"""Serving-plane defenses against ambiguous failures.

Crashes are the easy case — the engine has handled those since the first
failover drill.  What breaks production serving tiers is the *ambiguous*
middle: a partitioned replica that is merely unreachable, a gray-failed
one that still answers health probes while serving 5x slow.  This module
holds the three classic defenses, each a small deterministic state
machine the engine drives from simulated events:

* :class:`CircuitBreaker` — per-replica closed/open/half-open gate fed by
  probe outcomes.  Consecutive missed probes open the breaker (no new
  dispatch); after a cooldown it goes half-open and admits *probe*
  batches with a seeded probability, closing again only on success.
* :class:`HedgePolicy` — hedged requests: once a batch has been in
  flight longer than a latency percentile of recent service times, a
  backup copy is dispatched to a different replica; the first response
  wins and the duplicate is cancelled and accounted as wasted work.
* :class:`BrownoutController` — graceful degradation ladder under
  overload or mass suspicion: stretch the batching window, then shed the
  bronze traffic tier, then serve only cache hits.  Every transition is
  logged and emitted as a telemetry instant; recovery retraces the
  ladder one rung at a time.

Nothing here uses wall-clock time or unseeded randomness: breaker probe
admission hashes ``(seed, key, attempt)``, hedge deadlines are pure
percentile arithmetic, and the brownout controller is a counter over
tick observations — the same event schedule always produces the same
defensive behaviour, which is what makes the chaos drill's reports
byte-identical.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core.stats import percentile
from repro.resilience.detect import DetectorConfig


def _stable_uniform(seed: int, key: str, attempt: int) -> float:
    """Uniform [0, 1) from a stable hash — independent of call order."""
    digest = hashlib.blake2b(
        f"{seed}:{key}:{attempt}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


# -- circuit breaker ----------------------------------------------------------
class BreakerState(str, enum.Enum):
    CLOSED = "closed"          # healthy: dispatch freely
    OPEN = "open"              # tripped: no dispatch until cooldown
    HALF_OPEN = "half-open"    # probing: seeded trickle of trial batches


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/reset tuning for one :class:`CircuitBreaker`."""

    #: Consecutive probe misses (or dispatch failures) that trip the breaker.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before going half-open.
    open_s: float = 0.5
    #: Probability a half-open breaker admits a given dispatch as a probe.
    probe_probability: float = 0.5
    #: Consecutive successes in half-open needed to close again.
    success_to_close: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.open_s <= 0:
            raise ValueError("open_s must be positive")
        if not (0.0 < self.probe_probability <= 1.0):
            raise ValueError("probe_probability must be in (0, 1]")
        if self.success_to_close < 1:
            raise ValueError("success_to_close must be >= 1")


class CircuitBreaker:
    """Closed/open/half-open dispatch gate for one replica.

    Fed by probe outcomes (:meth:`record_success` / :meth:`record_failure`);
    queried by the dispatcher (:meth:`allows_dispatch`).  Time-driven
    state decay (open → half-open) happens lazily inside :meth:`state`,
    so no timer events are needed.
    """

    def __init__(self, policy: BreakerPolicy, key: str, seed: int = 0) -> None:
        self.policy = policy
        self.key = key
        self.seed = seed
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at = 0.0
        self._probe_draws = 0
        #: (time, from, to) rows for the drill report.
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, now: float, state: BreakerState) -> None:
        if state is not self._state:
            self.transitions.append((now, self._state.value, state.value))
            self._state = state

    def state(self, now: float) -> BreakerState:
        if (self._state is BreakerState.OPEN
                and now >= self._opened_at + self.policy.open_s):
            self._move(now, BreakerState.HALF_OPEN)
            self._consecutive_successes = 0
        return self._state

    def record_failure(self, now: float) -> None:
        """One missed probe / failed dispatch attributed to this replica."""
        self._consecutive_failures += 1
        self._consecutive_successes = 0
        state = self.state(now)
        if state is BreakerState.HALF_OPEN or (
                state is BreakerState.CLOSED
                and self._consecutive_failures
                >= self.policy.failure_threshold):
            self._move(now, BreakerState.OPEN)
            self._opened_at = now

    def record_success(self, now: float) -> None:
        """One answered probe / completed dispatch from this replica."""
        self._consecutive_failures = 0
        if self.state(now) is BreakerState.HALF_OPEN:
            self._consecutive_successes += 1
            if self._consecutive_successes >= self.policy.success_to_close:
                self._move(now, BreakerState.CLOSED)
        elif self._state is BreakerState.CLOSED:
            self._consecutive_successes += 1

    def allows_dispatch(self, now: float) -> bool:
        """May the dispatcher start a batch on this replica right now?"""
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        # Half-open: admit a seeded trickle of probe batches.
        self._probe_draws += 1
        return (_stable_uniform(self.seed, self.key, self._probe_draws)
                < self.policy.probe_probability)


# -- hedged requests ----------------------------------------------------------
@dataclass(frozen=True)
class HedgePolicy:
    """When to dispatch a backup copy of an in-flight batch."""

    #: Percentile of the recent service-time window used as the hedge
    #: deadline.  The median (not p95, as in the tail-at-scale paper) is
    #: deliberate: a gray-failed replica in a small pool can contribute a
    #: *large minority* of the window, dragging p95 up to the inflated
    #: service time itself and scheduling every hedge after its batch
    #: already finished.  The median stays anchored on healthy behaviour
    #: as long as most batches are healthy.
    percentile: float = 50.0
    #: Headroom multiplier on that percentile.
    multiplier: float = 3.0
    #: Never hedge before this much service time has elapsed.
    min_deadline_s: float = 2e-3
    #: Observed service times needed before hedging activates at all.
    min_samples: int = 8
    #: Recent service times retained for the percentile estimate.
    window: int = 64

    def __post_init__(self) -> None:
        if not (0.0 < self.percentile <= 100.0):
            raise ValueError("percentile must be in (0, 100]")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.min_deadline_s <= 0:
            raise ValueError("min_deadline_s must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.window < self.min_samples:
            raise ValueError("window must be >= min_samples")

    def deadline(self, service_window: list[float]) -> Optional[float]:
        """Seconds after dispatch at which to hedge, or ``None`` (no data)."""
        if len(service_window) < self.min_samples:
            return None
        tail = percentile(service_window, self.percentile)
        return max(tail * self.multiplier, self.min_deadline_s)


# -- brownout degradation -----------------------------------------------------
class BrownoutLevel(enum.IntEnum):
    """The degradation ladder, mildest first."""

    NORMAL = 0
    STRETCH_BATCH = 1       # grow the batching window (throughput mode)
    SHED_BRONZE = 2         # shed the bronze traffic tier at admission
    CACHE_ONLY = 3          # admit only requests servable from the cache


@dataclass(frozen=True)
class BrownoutPolicy:
    """When to climb / descend the degradation ladder."""

    #: Queue depth per up replica considered overloaded.
    queue_high_per_replica: float = 8.0
    #: Consecutive hot ticks before escalating one level.
    escalate_ticks: int = 3
    #: Consecutive calm ticks before recovering one level.
    recover_ticks: int = 6
    #: ``max_wait_s`` multiplier while at STRETCH_BATCH or deeper.
    stretch_factor: float = 4.0
    #: Fraction of breakers open that counts as overload on its own.
    breaker_open_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.queue_high_per_replica <= 0:
            raise ValueError("queue_high_per_replica must be positive")
        if self.escalate_ticks < 1 or self.recover_ticks < 1:
            raise ValueError("escalate/recover tick counts must be >= 1")
        if self.stretch_factor < 1.0:
            raise ValueError("stretch_factor must be >= 1")
        if not (0.0 < self.breaker_open_fraction <= 1.0):
            raise ValueError("breaker_open_fraction must be in (0, 1]")


@dataclass
class BrownoutController:
    """Counter-driven ladder over :class:`BrownoutLevel`.

    :meth:`tick` is called on a fixed simulated cadence with the overload
    signals a gateway actually has; it escalates or recovers at most one
    level per call and returns the transition (or ``None``).
    """

    policy: BrownoutPolicy = field(default_factory=BrownoutPolicy)
    level: BrownoutLevel = BrownoutLevel.NORMAL
    _hot_ticks: int = 0
    _calm_ticks: int = 0
    #: (time, from-level, to-level) rows for the drill report.
    transitions: list[tuple[float, int, int]] = field(default_factory=list)

    def tick(
        self,
        now: float,
        queue_depth: int,
        n_up: int,
        budget_overdraft: bool,
        breakers_open: int = 0,
        breakers_total: int = 0,
    ) -> Optional[tuple[BrownoutLevel, BrownoutLevel]]:
        """Observe one tick of overload signals; maybe move one rung."""
        p = self.policy
        deep = queue_depth > p.queue_high_per_replica * max(n_up, 1)
        tripped = (breakers_total > 0
                   and breakers_open
                   >= p.breaker_open_fraction * breakers_total)
        hot = deep or budget_overdraft or tripped
        if hot:
            self._hot_ticks += 1
            self._calm_ticks = 0
        else:
            self._calm_ticks += 1
            self._hot_ticks = 0
        old = self.level
        if hot and self._hot_ticks >= p.escalate_ticks \
                and self.level < BrownoutLevel.CACHE_ONLY:
            self.level = BrownoutLevel(self.level + 1)
            self._hot_ticks = 0
        elif not hot and self._calm_ticks >= p.recover_ticks \
                and self.level > BrownoutLevel.NORMAL:
            self.level = BrownoutLevel(self.level - 1)
            self._calm_ticks = 0
        if self.level is old:
            return None
        self.transitions.append((now, int(old), int(self.level)))
        return (old, self.level)

    @property
    def wait_stretch(self) -> float:
        """Batch-window multiplier implied by the current level."""
        return (self.policy.stretch_factor
                if self.level >= BrownoutLevel.STRETCH_BATCH else 1.0)


# -- the bundle the engine consumes ------------------------------------------
@dataclass(frozen=True)
class DefenseConfig:
    """Every defense knob in one place; disabled by default.

    ``enabled=False`` keeps the serving engine byte-identical to its
    pre-defense behaviour — existing reports, digests and baselines do
    not move.  The chaos drill, the serving CLI's ``--defend`` flag and
    the hedging bench case opt in.
    """

    enabled: bool = False
    #: Simulated seconds between health-probe rounds.
    heartbeat_interval_s: float = 0.05
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    brownout: BrownoutPolicy = field(default_factory=BrownoutPolicy)
    #: Hedging on/off independently of the rest (the bench control leg
    #: runs breakers+brownout but no hedging to isolate the tail effect).
    hedging_enabled: bool = True
    #: Retry tokens earned per admitted request (Google-SRE retry budget).
    retry_budget_ratio: float = 0.2
    retry_budget_burst: float = 50.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.retry_budget_ratio < 0:
            raise ValueError("retry_budget_ratio must be non-negative")
        if self.retry_budget_burst < 1:
            raise ValueError("retry_budget_burst must hold >= 1 token")
