"""The online-serving engine: one discrete-event loop over all components.

The request path, end to end on the deterministic DES engine::

    trace ──> admission ──> cache ──> micro-batcher ──> replica pool
    (seeded    (token bucket  (LRU +     (size/timeout     (CM/ESB/DAM via
     arrivals)  + shedding)   coalesce)   triggers)         matchmaking)

plus two control loops: the **autoscaler** ticks on a fixed interval and
resizes the pool from queue depth and the recent latency tail, and the
**failover** path consumes :class:`~repro.resilience.faults.FaultInjector`
node crashes — a dead replica's in-flight batch is cancelled, its requests
re-queued at the head after a :class:`~repro.resilience.retry.RetryPolicy`
backoff, and a replacement replica is placed.  Admitted requests are never
lost; late ones are counted as deadline misses, honestly.

Everything is seeded and event-ordered, so two runs of the same config
produce byte-identical reports — asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import telemetry
from repro.core.presets import small_msa_system
from repro.core.system import MSASystem
from repro.distributed.perfmodel import InferencePerfModel
from repro.resilience.detect import PhiAccrualDetector
from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    partition_cut,
)
from repro.resilience.report import FailoverEvent
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import BatchPolicy, MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.defense import (
    BreakerState,
    BrownoutController,
    CircuitBreaker,
    DefenseConfig,
    _stable_uniform,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.replicas import (
    Autoscaler,
    AutoscalerConfig,
    InflightBatch,
    Replica,
    ReplicaPool,
)
from repro.serving.request import Request, TraceConfig, generate_trace
from repro.simnet.events import Simulator
from repro.simnet.link import PartitionWindow

#: Backoff used when failing drained requests over to surviving replicas.
#: Much shorter than the batch scheduler's default (serving budgets are
#: sub-second), generous retry head-room so a drill can never exhaust it.
#: .. deprecated:: quasi-unbounded retrying amplifies overload; with
#:    defenses enabled the engine instead pairs a short schedule with a
#:    :class:`~repro.resilience.retry.RetryBudget` and deadline-aware
#:    ``delay_within`` clamping.  Kept as the legacy default so
#:    pre-defense runs replay byte-identically.
SERVING_RETRY = RetryPolicy(max_retries=64, base_delay_s=0.02,
                            backoff_factor=2.0, jitter=0.25,
                            max_delay_s=5.0)

#: Post-heal retransmission cost for a response held across a partition.
_PARTITION_RETRANSMIT_S = 1e-3


@dataclass
class HedgeGroup:
    """One hedged batch: the same requests in flight on several replicas.

    First response wins: the winner completes the requests, cancels the
    other side's completion event and accounts its elapsed compute as
    wasted hedge work.  A side that crashes simply leaves the group; the
    surviving side still carries the requests, so hedging never needs a
    requeue and admitted = completed is preserved structurally.
    """

    requests: list[Request]
    primary_rid: int
    sides: dict[int, Replica]
    #: When the backup was issued — duplicate work is accounted from here
    #: (before this instant only one copy ran, so nothing was duplicated).
    issued_at: float = 0.0
    completed: bool = False


@dataclass(frozen=True)
class ServingConfig:
    """Everything one serving run needs (besides the system + faults)."""

    trace: TraceConfig = field(default_factory=TraceConfig)
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    initial_replicas: int = 2
    nodes_per_replica: int = 1
    cache_capacity: int = 0            # 0 disables the result cache
    cache_lookup_s: float = 2.0e-4
    #: Lognormal sigma multiplying batch service times (0 = analytic model).
    service_jitter: float = 0.0
    #: Partition/gray-failure defenses (disabled by default — enabling
    #: changes dispatch, admission and failover behaviour).
    defense: DefenseConfig = field(default_factory=DefenseConfig)

    def __post_init__(self) -> None:
        if self.initial_replicas < 1:
            raise ValueError("need at least one initial replica")
        if self.cache_lookup_s < 0 or self.service_jitter < 0:
            raise ValueError("cache_lookup_s/service_jitter must be >= 0")


@dataclass
class ServingReport:
    """Outcome of one serving run — deterministic for a given config."""

    config: ServingConfig
    metrics: ServingMetrics
    cache_hits: int
    cache_misses: int
    cache_coalesced: int
    cache_hit_rate: float
    failover_events: list[FailoverEvent]
    scale_events: list
    peak_replicas: int
    final_replicas: int
    module_replica_seconds: dict[str, float]
    #: Batches actually computed: (replica id, request ids in batch order).
    batch_log: list[tuple[int, tuple[int, ...]]]
    #: Defense-layer outcome (all zero / empty unless defenses ran).
    defense_enabled: bool = False
    partition_windows: int = 0
    gray_episodes: int = 0
    held_responses: int = 0
    suspicion_events: int = 0
    breaker_transitions: int = 0
    #: Brownout level after each transition, in order (0 = NORMAL).
    brownout_path: tuple[int, ...] = ()
    retry_budget_spent: float = 0.0
    retry_budget_refused: int = 0
    retry_budget_overdraft: float = 0.0

    @property
    def duplicate_work_ratio(self) -> float:
        """Wasted hedge seconds as a fraction of total replica busy time."""
        busy = sum(self.metrics.module_busy_s.values())
        return self.metrics.hedge_wasted_s / busy if busy > 0 else 0.0

    @property
    def p99(self) -> float:
        return self.metrics.p99

    @property
    def goodput_per_s(self) -> float:
        return self.metrics.goodput_per_s

    def meets_slo(self, quantile: float = 99.0) -> bool:
        return self.metrics.meets_slo(self.config.trace.slo_deadline_s,
                                      quantile)

    def to_text(self) -> str:
        """The canonical metrics report — byte-identical across same-seed runs."""
        m = self.metrics
        t = self.config.trace
        rows = [
            f"serving report ({t.pattern.value}, "
            f"{t.rate_per_s:g} req/s x {t.duration_s:g} s, "
            f"SLO {t.slo_deadline_s * 1e3:g} ms, seed {t.seed})",
            f"  offered          : {m.offered}",
            f"  admitted         : {m.admitted} "
            f"(rate-limited {m.rate_limited}, shed {m.shed})",
            f"  completed        : {m.completed}",
            f"  deadline misses  : {m.deadline_misses} "
            f"({m.deadline_miss_rate:.4f})",
            f"  goodput          : {m.goodput_per_s:.3f} req/s",
        ]
        if m.completed:
            s = m.latency_summary()
            rows += [
                f"  latency p50      : {s.p50_s * 1e3:.3f} ms",
                f"  latency p95      : {s.p95_s * 1e3:.3f} ms",
                f"  latency p99      : {s.p99_s * 1e3:.3f} ms",
                f"  latency max      : {s.max_s * 1e3:.3f} ms",
            ]
        rows += [
            f"  batches          : {m.batches} "
            f"(mean size {m.mean_batch_size:.2f})",
            f"  cache            : {self.cache_hits} hit / "
            f"{self.cache_coalesced} coalesced / {self.cache_misses} miss "
            f"(hit rate {self.cache_hit_rate:.4f})",
            f"  failovers        : {len(self.failover_events)} "
            f"({m.requests_failed_over} requests drained, 0 lost)",
            f"  scale events     : {len(self.scale_events)} "
            f"(peak {self.peak_replicas} replicas)",
        ]
        for key in sorted(self.module_replica_seconds):
            lifetime = self.module_replica_seconds[key]
            busy = m.module_busy_s.get(key, 0.0)
            util = busy / lifetime if lifetime > 0 else 0.0
            rows.append(f"  replicas[{key:<6}] : {lifetime:10.2f} node-s, "
                        f"util {util:6.1%}")
        if self.defense_enabled:
            path = "->".join(str(level) for level in
                             (0,) + self.brownout_path)
            rows += [
                f"  chaos            : {self.partition_windows} partition / "
                f"{self.gray_episodes} gray "
                f"({self.held_responses} responses held)",
                f"  detector         : {self.suspicion_events} suspicion "
                f"events, {self.breaker_transitions} breaker transitions",
                f"  hedging          : {m.hedges_issued} issued, "
                f"{m.hedges_backup_won} backup wins, "
                f"{m.hedge_wasted_s:.4f} s wasted "
                f"(ratio {self.duplicate_work_ratio:.4f})",
                f"  brownout         : path {path} "
                f"({len(self.brownout_path)} transitions)",
                f"  retry budget     : {self.retry_budget_spent:.1f} spent, "
                f"{self.retry_budget_refused} refused, "
                f"overdraft {self.retry_budget_overdraft:.1f}",
            ]
        return "\n".join(rows)


class ServingEngine:
    """Drives one :class:`ServingConfig` through the DES to a report."""

    def __init__(
        self,
        config: ServingConfig,
        system: Optional[MSASystem] = None,
        perf: Optional[InferencePerfModel] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        registry: Optional[telemetry.MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.tracer = telemetry.get_tracer()
        self.system = system if system is not None else small_msa_system()
        self.perf = perf if perf is not None else InferencePerfModel()
        self.sim = Simulator()
        self.requests = generate_trace(config.trace)
        self.batcher = MicroBatcher(config.batch)
        self.admission = AdmissionController(config.admission)
        self.cache = ResultCache(config.cache_capacity)
        ref_batch = (config.batch.max_batch_requests
                     * config.trace.samples_per_request)
        self.pool = ReplicaPool(self.system, self.perf,
                                nodes_per_replica=config.nodes_per_replica,
                                reference_batch_samples=ref_batch)
        self.autoscaler = Autoscaler(config.autoscaler)
        self.metrics = ServingMetrics(duration_s=config.trace.duration_s,
                                      registry=registry)
        self.retry = retry_policy if retry_policy is not None else \
            RetryPolicy(max_retries=SERVING_RETRY.max_retries,
                        base_delay_s=SERVING_RETRY.base_delay_s,
                        backoff_factor=SERVING_RETRY.backoff_factor,
                        jitter=SERVING_RETRY.jitter,
                        max_delay_s=SERVING_RETRY.max_delay_s,
                        seed=config.trace.seed)
        self.failover_events: list[FailoverEvent] = []
        self.batch_log: list[tuple[int, tuple[int, ...]]] = []
        self.peak_replicas = 0
        self._target_replicas = max(config.initial_replicas,
                                    config.autoscaler.min_replicas
                                    if config.autoscaler.enabled else 1)
        #: req_id -> Request for coalesced waiters parked on the cache.
        self._waiting: dict[int, Request] = {}
        #: req_id -> failover retry count (drives the backoff schedule).
        self._retries: dict[int, int] = {}
        self._window: list[float] = []
        self._jitter_rng = np.random.default_rng(config.trace.seed + 0x5EED)
        self._ran = False
        # -- defense state (inert unless config.defense.enabled) ----------
        d = config.defense
        self.detector = PhiAccrualDetector(d.detector) if d.enabled else None
        self.breakers: dict[int, CircuitBreaker] = {}
        self.budget = RetryBudget(ratio=d.retry_budget_ratio,
                                  burst=d.retry_budget_burst) \
            if d.enabled else None
        self.brownout = BrownoutController(d.brownout) if d.enabled else None
        #: Recent batch service times feeding the hedge deadline estimate.
        self._service_window: list[float] = []
        #: (module, node) -> (end_s, slowdown factor, probe-answer prob).
        self._gray: dict[tuple[str, int], tuple[float, float, float]] = {}
        #: Active/scheduled partition cuts over node labels "module:node".
        self._partitions: list[tuple[PartitionWindow, frozenset]] = []
        self._hb_tick = 0
        self._breaker_seen: dict[int, int] = {}
        self._retired_breaker_transitions = 0
        self.held_responses = 0
        self.gray_episodes = 0
        self._fault_seed = (fault_injector.plan.seed
                            if fault_injector is not None
                            else config.trace.seed)
        self.injector = fault_injector
        if fault_injector is not None:
            fault_injector.on(FaultKind.NODE_CRASH, self._on_crash)
            fault_injector.on(FaultKind.NETWORK_PARTITION, self._on_partition)
            fault_injector.on(FaultKind.GRAY_FAILURE, self._on_gray)
            fault_injector.arm(self.sim)

    # -- run ------------------------------------------------------------------
    def run(self) -> ServingReport:
        if self._ran:
            raise RuntimeError("a ServingEngine instance runs exactly once")
        self._ran = True
        for req in self.requests:
            evt = self.sim.timeout(req.arrival_s, value=req,
                                   name=f"arrive-{req.req_id}")
            evt.add_callback(self._on_arrival)
        self._ensure_capacity()
        if self.pool.n_up == 0:
            raise RuntimeError("no module can host even one replica")
        if self.config.autoscaler.enabled:
            self.sim.timeout(self.config.autoscaler.interval_s,
                             name="autoscale-tick"
                             ).add_callback(self._on_tick)
        if self.detector is not None:
            self.sim.timeout(self.config.defense.heartbeat_interval_s,
                             name="heartbeat-tick"
                             ).add_callback(self._on_heartbeat_tick)
        self.sim.run()
        self.metrics.check_conservation()
        final = self.pool.n_up
        for replica in list(self.pool.replicas.values()):
            self.pool.retire(replica, self.sim.now)
        return ServingReport(
            config=self.config,
            metrics=self.metrics,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_coalesced=self.cache.coalesced,
            cache_hit_rate=self.cache.hit_rate,
            failover_events=list(self.failover_events),
            scale_events=list(self.autoscaler.events),
            peak_replicas=self.peak_replicas,
            final_replicas=final,
            module_replica_seconds=dict(self.pool.module_lifetime_s),
            batch_log=list(self.batch_log),
            defense_enabled=self.config.defense.enabled,
            partition_windows=len(self._partitions),
            gray_episodes=self.gray_episodes,
            held_responses=self.held_responses,
            suspicion_events=(len(self.detector.suspicion_log)
                              if self.detector is not None else 0),
            breaker_transitions=self._retired_breaker_transitions + sum(
                len(b.transitions) for b in self.breakers.values()),
            brownout_path=tuple(
                to for _, _, to in self.brownout.transitions)
            if self.brownout is not None else (),
            retry_budget_spent=(self.budget.spent
                                if self.budget is not None else 0.0),
            retry_budget_refused=(self.budget.refused
                                  if self.budget is not None else 0),
            retry_budget_overdraft=(self.budget.forced_overdraft
                                    if self.budget is not None else 0.0),
        )

    # -- arrival path ---------------------------------------------------------
    def _on_arrival(self, evt) -> None:
        req: Request = evt.value
        now = self.sim.now
        if self.brownout is not None:
            decision = self.admission.decide(
                now, self.batcher.depth,
                brownout_level=int(self.brownout.level),
                tier=req.tier,
                cacheable=self.cache.contains(req.key))
        else:
            decision = self.admission.decide(now, self.batcher.depth)
        if not decision.admitted:
            self.metrics.record_rejection(decision.reason)
            detail = {"detail": decision.detail} if decision.detail else {}
            self.tracer.instant(decision.reason, "serving", now,
                                track="serving", lane="admission",
                                req=req.req_id, **detail)
            return
        self.metrics.record_admission()
        if self.budget is not None:
            self.budget.note_request()
        self.tracer.instant("admit", "serving", now, track="serving",
                            lane="admission", req=req.req_id)
        outcome = self.cache.lookup(req.key, req.req_id)
        if outcome == "hit":
            done = self.sim.timeout(self.config.cache_lookup_s, value=req,
                                    name=f"cache-hit-{req.req_id}")
            done.add_callback(self._on_cache_hit)
        elif outcome == "coalesce":
            self._waiting[req.req_id] = req
        else:
            self.batcher.enqueue(req, now)
            self._kick()

    def _on_cache_hit(self, evt) -> None:
        req: Request = evt.value
        self.tracer.record("cache-hit", "serving",
                           self.sim.now - self.config.cache_lookup_s,
                           self.config.cache_lookup_s, track="serving",
                           lane="cache", req=req.req_id)
        self._complete(req)

    def _complete(self, req: Request) -> None:
        latency = self.metrics.record_completion(req, self.sim.now)
        self._window.append(latency)

    # -- dispatch -------------------------------------------------------------
    def _dispatchable(self, replica: Replica, now: float) -> bool:
        """May new work start on ``replica``?  (Breaker-gated.)"""
        breaker = self.breakers.get(replica.rid)
        return breaker is None or breaker.allows_dispatch(now)

    def _kick(self) -> None:
        now = self.sim.now
        while True:
            idle = self.pool.idle_replicas()
            if self.detector is not None:
                idle = [r for r in idle if self._dispatchable(r, now)]
            if not idle:
                break
            model = self.batcher.ready_model(now)
            if model is None:
                break
            self._start_batch(idle[0], self.batcher.take(model))
        deadline = self.batcher.next_deadline()
        if deadline is not None and deadline > now + 1e-12:
            timer = self.sim.timeout(deadline - now, name="batch-timer")
            timer.add_callback(lambda _evt: self._kick())

    def _start_batch(self, replica: Replica, requests: list[Request],
                     group: Optional[HedgeGroup] = None) -> None:
        now = self.sim.now
        samples = sum(r.n_samples for r in requests)
        service = self.pool.batch_time(replica, samples)
        if self.config.service_jitter > 0:
            service *= float(self._jitter_rng.lognormal(
                0.0, self.config.service_jitter))
        # Gray failure: the replica computes, just inflated by the episode
        # factor while the fault window is active.
        service *= self._gray_factor(replica, now)
        # Network partition: the batch computes, but its *response* cannot
        # reach the frontend while the replica sits on the far side of an
        # active cut — it is held to heal time plus a retransmission burst
        # (delayed, never lost; conservation survives the fault).
        delivery = self._response_hold(replica, now + service)
        if delivery > 0.0:
            self.held_responses += 1
            self.tracer.instant("response-held", "serving", now,
                                track="serving", lane="partition",
                                replica=replica.rid, hold_s=delivery)
        batch = InflightBatch(requests=requests, start=now, group=group)
        replica.inflight = batch
        done = self.sim.timeout(service + delivery, value=replica,
                                name=f"batch-done-r{replica.rid}")
        done.add_callback(self._on_batch_done)
        batch.done_evt = done
        if (self.detector is not None
                and self.config.defense.hedging_enabled and group is None):
            deadline = self.config.defense.hedge.deadline(
                self._service_window)
            if deadline is not None:
                timer = self.sim.timeout(deadline, value=(replica, batch),
                                         name=f"hedge-r{replica.rid}")
                timer.add_callback(self._on_hedge_timer)

    def _gray_factor(self, replica: Replica, now: float) -> float:
        """Service-time inflation from active gray episodes on the replica."""
        factor = 1.0
        for node in replica.nodes:
            state = self._gray.get((replica.module_key, node))
            if state is not None and now < state[0]:
                factor = max(factor, state[1])
        return factor

    def _replica_labels(self, replica: Replica) -> list[str]:
        return [f"{replica.module_key}:{n}" for n in replica.nodes]

    def _response_hold(self, replica: Replica, done_t: float) -> float:
        """Extra delay before a response computed at ``done_t`` lands.

        Iterates to a fixed point like the MPI transport: a held response
        can land inside a later window, each window only pushes forward
        past its own end, so the loop is bounded by the window count.
        """
        labels = self._replica_labels(replica)
        hold = 0.0
        for _ in range(len(self._partitions) + 1):
            stall = max((w.delay_until_heal(done_t + hold)
                         + _PARTITION_RETRANSMIT_S
                         for w, far in self._partitions
                         if w.active(done_t + hold)
                         and any(lbl in far for lbl in labels)),
                        default=0.0)
            if stall <= 0.0:
                return hold
            hold += stall
        return hold

    # -- hedged requests ------------------------------------------------------
    def _on_hedge_timer(self, evt) -> None:
        replica, batch = evt.value
        if replica.inflight is not batch or batch.group is not None:
            return  # completed, crashed away, or already hedged
        now = self.sim.now
        backups = [r for r in self.pool.idle_replicas()
                   if r.rid != replica.rid and self._dispatchable(r, now)]
        if not backups:
            return
        if self.budget is not None and not self.budget.try_spend():
            return  # budget dry: the hedge is optional work — skip it
        group = HedgeGroup(requests=batch.requests,
                           primary_rid=replica.rid,
                           sides={replica.rid: replica},
                           issued_at=now)
        batch.group = group
        backup = backups[0]
        group.sides[backup.rid] = backup
        self.metrics.record_hedge_issued()
        self.tracer.instant("hedge", "serving", now, track="serving",
                            lane="hedge", primary=replica.rid,
                            backup=backup.rid,
                            n_requests=len(batch.requests))
        self._start_batch(backup, list(batch.requests), group=group)

    def _on_batch_done(self, evt) -> None:
        replica: Replica = evt.value
        now = self.sim.now
        batch = replica.inflight
        assert batch is not None, "batch completion for an idle replica"
        replica.inflight = None
        replica.busy_s += now - batch.start
        group: Optional[HedgeGroup] = batch.group
        if group is not None:
            if group.completed:
                # The duplicate's cancellation did not beat its response
                # (defensive: winners cancel losers, so normally unreached).
                self.metrics.record_duplicate_response()
                self._kick()
                return
            group.completed = True
            backup_won = replica.rid != group.primary_rid
            wasted = self._cancel_hedge_losers(group, replica.rid, now)
            self.metrics.record_hedge_resolved(backup_won, wasted)
            winner_breaker = self.breakers.get(replica.rid)
            if winner_breaker is not None:
                winner_breaker.record_success(now)
            self.tracer.instant("hedge-won", "serving", now,
                                track="serving", lane="hedge",
                                winner=replica.rid, backup_won=backup_won,
                                wasted_s=wasted)
        self.tracer.record("batch", "serving", batch.start, now - batch.start,
                           track="serving",
                           lane=f"replica{replica.rid:03d}",
                           module=replica.module_key,
                           n_requests=len(batch.requests))
        self.metrics.record_batch(len(batch.requests), replica.module_key,
                                  (now - batch.start) * len(replica.nodes))
        self.batch_log.append(
            (replica.rid, tuple(r.req_id for r in batch.requests)))
        if self.detector is not None:
            self._service_window.append(now - batch.start)
            excess = len(self._service_window) - self.config.defense.hedge.window
            if excess > 0:
                del self._service_window[:excess]
        for req in batch.requests:
            self._complete(req)
            for waiter_id in self.cache.complete(req.key, now):
                self._complete(self._waiting.pop(waiter_id))
        self._kick()

    def _cancel_hedge_losers(self, group: HedgeGroup, winner_rid: int,
                             now: float) -> float:
        """Cancel every other in-flight side of ``group``; returns the
        wasted compute seconds the duplicates burned before cancellation."""
        wasted = 0.0
        for rid, other in list(group.sides.items()):
            if rid == winner_rid:
                continue
            ob = other.inflight
            if ob is not None and ob.group is group:
                if ob.done_evt is not None:
                    ob.done_evt.cancel()
                other.inflight = None
                other.busy_s += now - ob.start
                wasted += now - max(ob.start, group.issued_at)
                # Losing a hedge race is evidence against the replica —
                # feeding it to the breaker is what actually quarantines
                # a gray replica (probes alone flap: gray still answers
                # them with probability q).
                breaker = self.breakers.get(rid)
                if breaker is not None:
                    breaker.record_failure(now)
            group.sides.pop(rid, None)
        return wasted

    # -- failover -------------------------------------------------------------
    def _on_crash(self, spec: FaultSpec) -> None:
        modules = self.system.compute_modules()
        module = modules.get(spec.module)
        if module is None or not (0 <= spec.node < module.n_nodes):
            return
        if spec.node in module.down_nodes:
            return  # already down; first crash's repair is pending
        now = self.sim.now
        replica = self.pool.find(spec.module, spec.node)
        module.mark_down(spec.node)
        repair = self.sim.timeout(spec.duration,
                                  value=(spec.module, spec.node),
                                  name=f"repair-{spec.module}-{spec.node}")
        repair.add_callback(self._on_repair)
        if replica is None:
            return  # the node hosted no replica — capacity dip only
        inflight = replica.inflight
        drained = self.pool.crash(replica, spec.node, now)
        self._unregister_replica(replica.rid)
        group: Optional[HedgeGroup] = \
            inflight.group if inflight is not None else None
        if group is not None:
            # A hedged side died.  If the other side still carries the
            # requests, there is nothing to requeue — first-response-wins
            # covers the loss and admitted = completed holds without a
            # retry.  Only a group whose every side is gone falls back to
            # the ordinary failover requeue below.
            group.sides.pop(replica.rid, None)
            survivor = any(
                r.inflight is not None and r.inflight.group is group
                for r in group.sides.values())
            if not group.completed and survivor:
                drained = []
        backoff = 0.0
        if drained:
            attempt = 1 + max(self._retries.get(r.req_id, 0)
                              for r in drained)
            for r in drained:
                self._retries[r.req_id] = attempt
            if self.budget is not None:
                # Failover of admitted requests is mandatory work: the
                # budget is charged unconditionally, and an overdraft is
                # one of the signals the brownout controller escalates on.
                self.budget.spend_forced(float(len(drained)))
                earliest = min(r.deadline_s for r in drained)
                backoff = self.retry.delay_within(
                    min(attempt, self.retry.max_retries), now, earliest,
                    key=f"replica-{replica.rid}")
            else:
                backoff = self.retry.delay(min(attempt,
                                               self.retry.max_retries),
                                           key=f"replica-{replica.rid}")
            requeue = self.sim.timeout(backoff, value=drained,
                                       name=f"failover-r{replica.rid}")
            requeue.add_callback(self._on_failover_requeue)
        self.metrics.record_failover(len(drained))
        self.tracer.instant("failover", "fault", now, track="serving",
                            lane="failover", module=spec.module,
                            node=spec.node, drained=len(drained),
                            backoff_s=backoff)
        self.failover_events.append(FailoverEvent(
            replica_id=replica.rid, module_key=spec.module, node=spec.node,
            time=now, requests_drained=len(drained), backoff_s=backoff))
        self._ensure_capacity()
        self._kick()

    def _on_failover_requeue(self, evt) -> None:
        self.batcher.requeue_front(evt.value)
        self._kick()

    def _on_repair(self, evt) -> None:
        key, node = evt.value
        self.system.module(key).mark_up(node)
        self._ensure_capacity()
        self._kick()

    # -- ambiguous faults (partition / gray) ----------------------------------
    def _on_partition(self, spec: FaultSpec) -> None:
        """A seeded bipartition of the node fabric, active for a window."""
        now = self.sim.now
        labels = sorted(
            f"{key}:{n}"
            for key, mod in self.system.compute_modules().items()
            for n in range(mod.n_nodes))
        far = partition_cut(self._fault_seed, spec, labels)
        window = PartitionWindow(now, now + spec.duration)
        self._partitions.append((window, far))
        self.tracer.instant("partition-start", "fault", now, track="serving",
                            lane="partition", far=len(far),
                            heal_s=spec.duration)
        heal = self.sim.timeout(spec.duration, name="partition-heal")
        heal.add_callback(self._on_partition_heal)

    def _on_partition_heal(self, evt) -> None:
        now = self.sim.now
        self.tracer.instant("partition-heal", "fault", now, track="serving",
                            lane="partition")
        self._ensure_capacity()
        self._kick()

    def _on_gray(self, spec: FaultSpec) -> None:
        """A node starts serving ``magnitude``x slow while still answering
        health probes with probability ``spec.probability``."""
        now = self.sim.now
        self.gray_episodes += 1
        self._gray[(spec.module, spec.node)] = (
            now + spec.duration, spec.magnitude, spec.probability)
        self.tracer.instant("gray-start", "fault", now, track="serving",
                            lane="gray", module=spec.module, node=spec.node,
                            factor=spec.magnitude,
                            probe_prob=spec.probability)

    # -- health probing -------------------------------------------------------
    def _probe_answered(self, replica: Replica, now: float) -> bool:
        """Does ``replica`` answer this round's health probe?

        Partitioned replicas miss every probe (the probe cannot cross the
        cut); gray-failed ones answer with the episode's seeded
        probability — the ambiguity that defeats binary detectors and
        motivates phi-accrual suspicion.
        """
        for window, far in self._partitions:
            if window.active(now) and any(
                    lbl in far for lbl in self._replica_labels(replica)):
                return False
        for node in replica.nodes:
            state = self._gray.get((replica.module_key, node))
            if state is not None and now < state[0]:
                u = _stable_uniform(
                    self._fault_seed,
                    f"probe-{replica.module_key}:{node}", self._hb_tick)
                return u < state[2]
        return True

    def _on_heartbeat_tick(self, evt) -> None:
        d = self.config.defense
        now = self.sim.now
        self._hb_tick += 1
        for replica in list(self.pool.replicas.values()):
            if not replica.up:
                continue
            breaker = self.breakers.get(replica.rid)
            if self._probe_answered(replica, now):
                self.detector.heartbeat(replica.rid, now)
                if breaker is not None:
                    breaker.record_success(now)
            elif breaker is not None:
                breaker.record_failure(now)
            self.detector.suspect(replica.rid, now)
        self._export_breaker_transitions(now)
        open_count = sum(1 for b in self.breakers.values()
                         if b.state(now) is BreakerState.OPEN)
        change = self.brownout.tick(
            now, self.batcher.depth, self.pool.n_up,
            self.budget.in_overdraft, open_count, len(self.breakers))
        if change is not None:
            old, new = change
            self.batcher.set_wait_stretch(self.brownout.wait_stretch)
            self.metrics.record_brownout_transition(int(new))
            self.tracer.instant("brownout", "serving", now, track="serving",
                                lane="brownout", from_level=int(old),
                                to_level=int(new))
            self._kick()
        drained = (self.metrics.completed == self.metrics.admitted)
        past_horizon = now >= self.config.trace.duration_s
        if not (past_horizon and drained):
            self.sim.timeout(d.heartbeat_interval_s, name="heartbeat-tick"
                             ).add_callback(self._on_heartbeat_tick)

    def _export_breaker_transitions(self, now: float) -> None:
        """Emit breaker state changes since the last tick as telemetry."""
        for rid, breaker in self.breakers.items():
            seen = self._breaker_seen.get(rid, 0)
            for when, frm, to in breaker.transitions[seen:]:
                self.metrics.record_breaker_transition(to)
                self.tracer.instant("breaker", "serving", when,
                                    track="serving", lane="breaker",
                                    replica=rid, from_state=frm, to_state=to)
            self._breaker_seen[rid] = len(breaker.transitions)

    # -- replica registration -------------------------------------------------
    def _register_replica(self, replica: Replica) -> None:
        if self.detector is None:
            return
        now = self.sim.now
        self.detector.register(replica.rid, now)
        self.breakers[replica.rid] = CircuitBreaker(
            self.config.defense.breaker, key=f"replica-{replica.rid}",
            seed=self._fault_seed)
        self._breaker_seen[replica.rid] = 0

    def _unregister_replica(self, rid: int) -> None:
        if self.detector is None:
            return
        self.detector.forget(rid)
        breaker = self.breakers.get(rid)
        if breaker is not None:
            self._export_breaker_transitions(self.sim.now)
            self._retired_breaker_transitions += len(breaker.transitions)
            del self.breakers[rid]
        self._breaker_seen.pop(rid, None)

    def _placement_avoid(self) -> Optional[dict[str, set[int]]]:
        """Nodes the health layer wants new replicas kept away from."""
        if self.detector is None:
            return None
        now = self.sim.now
        avoid: dict[str, set[int]] = {}
        for (key, node), state in self._gray.items():
            if now < state[0]:
                avoid.setdefault(key, set()).add(node)
        for window, far in self._partitions:
            if window.active(now):
                for label in far:
                    key, _, node = label.partition(":")
                    avoid.setdefault(key, set()).add(int(node))
        return avoid or None

    # -- scaling --------------------------------------------------------------
    def _ensure_capacity(self) -> None:
        """Place replicas until the pool matches the current target."""
        while self.pool.n_up < self._target_replicas:
            replica = self.pool.place(self.sim.now,
                                      avoid=self._placement_avoid())
            if replica is None:
                break  # nowhere to place right now; repair/retire will retry
            self._register_replica(replica)
        self.peak_replicas = max(self.peak_replicas, self.pool.n_up)

    def _on_tick(self, evt) -> None:
        now = self.sim.now
        cfg = self.config.autoscaler
        delta, reason = self.autoscaler.decide(
            now, self.pool.n_up, self.batcher.depth, self._window,
            self.config.trace.slo_deadline_s)
        self._window = []
        if delta > 0:
            self._target_replicas = min(cfg.max_replicas,
                                        max(self._target_replicas,
                                            self.pool.n_up) + delta)
            before = self.pool.n_up
            self._ensure_capacity()
            if self.pool.n_up > before:
                self.autoscaler.note(now, self.pool.n_up - before,
                                     self.pool.n_up, reason)
                self.tracer.instant("scale-up", "serving", now,
                                    track="serving", lane="autoscaler",
                                    delta=self.pool.n_up - before,
                                    replicas=self.pool.n_up, reason=reason)
        elif delta < 0:
            victim = self.pool.retirement_candidate()
            if victim is not None:
                self.pool.retire(victim, now)
                self._unregister_replica(victim.rid)
                self._target_replicas = max(cfg.min_replicas,
                                            self.pool.n_up)
                self.autoscaler.note(now, -1, self.pool.n_up, reason)
                self.tracer.instant("scale-down", "serving", now,
                                    track="serving", lane="autoscaler",
                                    delta=-1, replicas=self.pool.n_up,
                                    reason=reason)
        self._kick()
        drained = (self.metrics.completed == self.metrics.admitted)
        past_horizon = now >= self.config.trace.duration_s
        if not (past_horizon and drained):
            self.sim.timeout(cfg.interval_s, name="autoscale-tick"
                             ).add_callback(self._on_tick)


def simulate_serving(
    config: ServingConfig,
    system: Optional[MSASystem] = None,
    perf: Optional[InferencePerfModel] = None,
    fault_injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    registry: Optional[telemetry.MetricsRegistry] = None,
) -> ServingReport:
    """Convenience wrapper: build an engine, run it, return the report."""
    return ServingEngine(config, system=system, perf=perf,
                         fault_injector=fault_injector,
                         retry_policy=retry_policy,
                         registry=registry).run()
