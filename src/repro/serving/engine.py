"""The online-serving engine: one discrete-event loop over all components.

The request path, end to end on the deterministic DES engine::

    trace ──> admission ──> cache ──> micro-batcher ──> replica pool
    (seeded    (token bucket  (LRU +     (size/timeout     (CM/ESB/DAM via
     arrivals)  + shedding)   coalesce)   triggers)         matchmaking)

plus two control loops: the **autoscaler** ticks on a fixed interval and
resizes the pool from queue depth and the recent latency tail, and the
**failover** path consumes :class:`~repro.resilience.faults.FaultInjector`
node crashes — a dead replica's in-flight batch is cancelled, its requests
re-queued at the head after a :class:`~repro.resilience.retry.RetryPolicy`
backoff, and a replacement replica is placed.  Admitted requests are never
lost; late ones are counted as deadline misses, honestly.

Everything is seeded and event-ordered, so two runs of the same config
produce byte-identical reports — asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import telemetry
from repro.core.presets import small_msa_system
from repro.core.system import MSASystem
from repro.distributed.perfmodel import InferencePerfModel
from repro.resilience.faults import FaultInjector, FaultKind, FaultSpec
from repro.resilience.report import FailoverEvent
from repro.resilience.retry import RetryPolicy
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import BatchPolicy, MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.metrics import ServingMetrics
from repro.serving.replicas import (
    Autoscaler,
    AutoscalerConfig,
    InflightBatch,
    Replica,
    ReplicaPool,
)
from repro.serving.request import Request, TraceConfig, generate_trace
from repro.simnet.events import Simulator

#: Backoff used when failing drained requests over to surviving replicas.
#: Much shorter than the batch scheduler's default (serving budgets are
#: sub-second), generous retry head-room so a drill can never exhaust it.
SERVING_RETRY = RetryPolicy(max_retries=64, base_delay_s=0.02,
                            backoff_factor=2.0, jitter=0.25,
                            max_delay_s=5.0)


@dataclass(frozen=True)
class ServingConfig:
    """Everything one serving run needs (besides the system + faults)."""

    trace: TraceConfig = field(default_factory=TraceConfig)
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    initial_replicas: int = 2
    nodes_per_replica: int = 1
    cache_capacity: int = 0            # 0 disables the result cache
    cache_lookup_s: float = 2.0e-4
    #: Lognormal sigma multiplying batch service times (0 = analytic model).
    service_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_replicas < 1:
            raise ValueError("need at least one initial replica")
        if self.cache_lookup_s < 0 or self.service_jitter < 0:
            raise ValueError("cache_lookup_s/service_jitter must be >= 0")


@dataclass
class ServingReport:
    """Outcome of one serving run — deterministic for a given config."""

    config: ServingConfig
    metrics: ServingMetrics
    cache_hits: int
    cache_misses: int
    cache_coalesced: int
    cache_hit_rate: float
    failover_events: list[FailoverEvent]
    scale_events: list
    peak_replicas: int
    final_replicas: int
    module_replica_seconds: dict[str, float]
    #: Batches actually computed: (replica id, request ids in batch order).
    batch_log: list[tuple[int, tuple[int, ...]]]

    @property
    def p99(self) -> float:
        return self.metrics.p99

    @property
    def goodput_per_s(self) -> float:
        return self.metrics.goodput_per_s

    def meets_slo(self, quantile: float = 99.0) -> bool:
        return self.metrics.meets_slo(self.config.trace.slo_deadline_s,
                                      quantile)

    def to_text(self) -> str:
        """The canonical metrics report — byte-identical across same-seed runs."""
        m = self.metrics
        t = self.config.trace
        rows = [
            f"serving report ({t.pattern.value}, "
            f"{t.rate_per_s:g} req/s x {t.duration_s:g} s, "
            f"SLO {t.slo_deadline_s * 1e3:g} ms, seed {t.seed})",
            f"  offered          : {m.offered}",
            f"  admitted         : {m.admitted} "
            f"(rate-limited {m.rate_limited}, shed {m.shed})",
            f"  completed        : {m.completed}",
            f"  deadline misses  : {m.deadline_misses} "
            f"({m.deadline_miss_rate:.4f})",
            f"  goodput          : {m.goodput_per_s:.3f} req/s",
        ]
        if m.completed:
            s = m.latency_summary()
            rows += [
                f"  latency p50      : {s.p50_s * 1e3:.3f} ms",
                f"  latency p95      : {s.p95_s * 1e3:.3f} ms",
                f"  latency p99      : {s.p99_s * 1e3:.3f} ms",
                f"  latency max      : {s.max_s * 1e3:.3f} ms",
            ]
        rows += [
            f"  batches          : {m.batches} "
            f"(mean size {m.mean_batch_size:.2f})",
            f"  cache            : {self.cache_hits} hit / "
            f"{self.cache_coalesced} coalesced / {self.cache_misses} miss "
            f"(hit rate {self.cache_hit_rate:.4f})",
            f"  failovers        : {len(self.failover_events)} "
            f"({m.requests_failed_over} requests drained, 0 lost)",
            f"  scale events     : {len(self.scale_events)} "
            f"(peak {self.peak_replicas} replicas)",
        ]
        for key in sorted(self.module_replica_seconds):
            lifetime = self.module_replica_seconds[key]
            busy = m.module_busy_s.get(key, 0.0)
            util = busy / lifetime if lifetime > 0 else 0.0
            rows.append(f"  replicas[{key:<6}] : {lifetime:10.2f} node-s, "
                        f"util {util:6.1%}")
        return "\n".join(rows)


class ServingEngine:
    """Drives one :class:`ServingConfig` through the DES to a report."""

    def __init__(
        self,
        config: ServingConfig,
        system: Optional[MSASystem] = None,
        perf: Optional[InferencePerfModel] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        registry: Optional[telemetry.MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.tracer = telemetry.get_tracer()
        self.system = system if system is not None else small_msa_system()
        self.perf = perf if perf is not None else InferencePerfModel()
        self.sim = Simulator()
        self.requests = generate_trace(config.trace)
        self.batcher = MicroBatcher(config.batch)
        self.admission = AdmissionController(config.admission)
        self.cache = ResultCache(config.cache_capacity)
        ref_batch = (config.batch.max_batch_requests
                     * config.trace.samples_per_request)
        self.pool = ReplicaPool(self.system, self.perf,
                                nodes_per_replica=config.nodes_per_replica,
                                reference_batch_samples=ref_batch)
        self.autoscaler = Autoscaler(config.autoscaler)
        self.metrics = ServingMetrics(duration_s=config.trace.duration_s,
                                      registry=registry)
        self.retry = retry_policy if retry_policy is not None else \
            RetryPolicy(max_retries=SERVING_RETRY.max_retries,
                        base_delay_s=SERVING_RETRY.base_delay_s,
                        backoff_factor=SERVING_RETRY.backoff_factor,
                        jitter=SERVING_RETRY.jitter,
                        max_delay_s=SERVING_RETRY.max_delay_s,
                        seed=config.trace.seed)
        self.failover_events: list[FailoverEvent] = []
        self.batch_log: list[tuple[int, tuple[int, ...]]] = []
        self.peak_replicas = 0
        self._target_replicas = max(config.initial_replicas,
                                    config.autoscaler.min_replicas
                                    if config.autoscaler.enabled else 1)
        #: req_id -> Request for coalesced waiters parked on the cache.
        self._waiting: dict[int, Request] = {}
        #: req_id -> failover retry count (drives the backoff schedule).
        self._retries: dict[int, int] = {}
        self._window: list[float] = []
        self._jitter_rng = np.random.default_rng(config.trace.seed + 0x5EED)
        self._ran = False
        self.injector = fault_injector
        if fault_injector is not None:
            fault_injector.on(FaultKind.NODE_CRASH, self._on_crash)
            fault_injector.arm(self.sim)

    # -- run ------------------------------------------------------------------
    def run(self) -> ServingReport:
        if self._ran:
            raise RuntimeError("a ServingEngine instance runs exactly once")
        self._ran = True
        for req in self.requests:
            evt = self.sim.timeout(req.arrival_s, value=req,
                                   name=f"arrive-{req.req_id}")
            evt.add_callback(self._on_arrival)
        self._ensure_capacity()
        if self.pool.n_up == 0:
            raise RuntimeError("no module can host even one replica")
        if self.config.autoscaler.enabled:
            self.sim.timeout(self.config.autoscaler.interval_s,
                             name="autoscale-tick"
                             ).add_callback(self._on_tick)
        self.sim.run()
        self.metrics.check_conservation()
        final = self.pool.n_up
        for replica in list(self.pool.replicas.values()):
            self.pool.retire(replica, self.sim.now)
        return ServingReport(
            config=self.config,
            metrics=self.metrics,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_coalesced=self.cache.coalesced,
            cache_hit_rate=self.cache.hit_rate,
            failover_events=list(self.failover_events),
            scale_events=list(self.autoscaler.events),
            peak_replicas=self.peak_replicas,
            final_replicas=final,
            module_replica_seconds=dict(self.pool.module_lifetime_s),
            batch_log=list(self.batch_log),
        )

    # -- arrival path ---------------------------------------------------------
    def _on_arrival(self, evt) -> None:
        req: Request = evt.value
        now = self.sim.now
        decision = self.admission.decide(now, self.batcher.depth)
        if not decision.admitted:
            self.metrics.record_rejection(decision.reason)
            self.tracer.instant(decision.reason, "serving", now,
                                track="serving", lane="admission",
                                req=req.req_id)
            return
        self.metrics.record_admission()
        self.tracer.instant("admit", "serving", now, track="serving",
                            lane="admission", req=req.req_id)
        outcome = self.cache.lookup(req.key, req.req_id)
        if outcome == "hit":
            done = self.sim.timeout(self.config.cache_lookup_s, value=req,
                                    name=f"cache-hit-{req.req_id}")
            done.add_callback(self._on_cache_hit)
        elif outcome == "coalesce":
            self._waiting[req.req_id] = req
        else:
            self.batcher.enqueue(req, now)
            self._kick()

    def _on_cache_hit(self, evt) -> None:
        req: Request = evt.value
        self.tracer.record("cache-hit", "serving",
                           self.sim.now - self.config.cache_lookup_s,
                           self.config.cache_lookup_s, track="serving",
                           lane="cache", req=req.req_id)
        self._complete(req)

    def _complete(self, req: Request) -> None:
        latency = self.metrics.record_completion(req, self.sim.now)
        self._window.append(latency)

    # -- dispatch -------------------------------------------------------------
    def _kick(self) -> None:
        now = self.sim.now
        while True:
            idle = self.pool.idle_replicas()
            if not idle:
                break
            model = self.batcher.ready_model(now)
            if model is None:
                break
            self._start_batch(idle[0], self.batcher.take(model))
        deadline = self.batcher.next_deadline()
        if deadline is not None and deadline > now + 1e-12:
            timer = self.sim.timeout(deadline - now, name="batch-timer")
            timer.add_callback(lambda _evt: self._kick())

    def _start_batch(self, replica: Replica, requests: list[Request]) -> None:
        now = self.sim.now
        samples = sum(r.n_samples for r in requests)
        service = self.pool.batch_time(replica, samples)
        if self.config.service_jitter > 0:
            service *= float(self._jitter_rng.lognormal(
                0.0, self.config.service_jitter))
        batch = InflightBatch(requests=requests, start=now)
        replica.inflight = batch
        done = self.sim.timeout(service, value=replica,
                                name=f"batch-done-r{replica.rid}")
        done.add_callback(self._on_batch_done)
        batch.done_evt = done

    def _on_batch_done(self, evt) -> None:
        replica: Replica = evt.value
        now = self.sim.now
        batch = replica.inflight
        assert batch is not None, "batch completion for an idle replica"
        replica.inflight = None
        replica.busy_s += now - batch.start
        self.tracer.record("batch", "serving", batch.start, now - batch.start,
                           track="serving",
                           lane=f"replica{replica.rid:03d}",
                           module=replica.module_key,
                           n_requests=len(batch.requests))
        self.metrics.record_batch(len(batch.requests), replica.module_key,
                                  (now - batch.start) * len(replica.nodes))
        self.batch_log.append(
            (replica.rid, tuple(r.req_id for r in batch.requests)))
        for req in batch.requests:
            self._complete(req)
            for waiter_id in self.cache.complete(req.key, now):
                self._complete(self._waiting.pop(waiter_id))
        self._kick()

    # -- failover -------------------------------------------------------------
    def _on_crash(self, spec: FaultSpec) -> None:
        modules = self.system.compute_modules()
        module = modules.get(spec.module)
        if module is None or not (0 <= spec.node < module.n_nodes):
            return
        if spec.node in module.down_nodes:
            return  # already down; first crash's repair is pending
        now = self.sim.now
        replica = self.pool.find(spec.module, spec.node)
        module.mark_down(spec.node)
        repair = self.sim.timeout(spec.duration,
                                  value=(spec.module, spec.node),
                                  name=f"repair-{spec.module}-{spec.node}")
        repair.add_callback(self._on_repair)
        if replica is None:
            return  # the node hosted no replica — capacity dip only
        drained = self.pool.crash(replica, spec.node, now)
        backoff = 0.0
        if drained:
            attempt = 1 + max(self._retries.get(r.req_id, 0)
                              for r in drained)
            for r in drained:
                self._retries[r.req_id] = attempt
            backoff = self.retry.delay(min(attempt,
                                           self.retry.max_retries),
                                       key=f"replica-{replica.rid}")
            requeue = self.sim.timeout(backoff, value=drained,
                                       name=f"failover-r{replica.rid}")
            requeue.add_callback(self._on_failover_requeue)
        self.metrics.record_failover(len(drained))
        self.tracer.instant("failover", "fault", now, track="serving",
                            lane="failover", module=spec.module,
                            node=spec.node, drained=len(drained),
                            backoff_s=backoff)
        self.failover_events.append(FailoverEvent(
            replica_id=replica.rid, module_key=spec.module, node=spec.node,
            time=now, requests_drained=len(drained), backoff_s=backoff))
        self._ensure_capacity()
        self._kick()

    def _on_failover_requeue(self, evt) -> None:
        self.batcher.requeue_front(evt.value)
        self._kick()

    def _on_repair(self, evt) -> None:
        key, node = evt.value
        self.system.module(key).mark_up(node)
        self._ensure_capacity()
        self._kick()

    # -- scaling --------------------------------------------------------------
    def _ensure_capacity(self) -> None:
        """Place replicas until the pool matches the current target."""
        while self.pool.n_up < self._target_replicas:
            if self.pool.place(self.sim.now) is None:
                break  # nowhere to place right now; repair/retire will retry
        self.peak_replicas = max(self.peak_replicas, self.pool.n_up)

    def _on_tick(self, evt) -> None:
        now = self.sim.now
        cfg = self.config.autoscaler
        delta, reason = self.autoscaler.decide(
            now, self.pool.n_up, self.batcher.depth, self._window,
            self.config.trace.slo_deadline_s)
        self._window = []
        if delta > 0:
            self._target_replicas = min(cfg.max_replicas,
                                        max(self._target_replicas,
                                            self.pool.n_up) + delta)
            before = self.pool.n_up
            self._ensure_capacity()
            if self.pool.n_up > before:
                self.autoscaler.note(now, self.pool.n_up - before,
                                     self.pool.n_up, reason)
                self.tracer.instant("scale-up", "serving", now,
                                    track="serving", lane="autoscaler",
                                    delta=self.pool.n_up - before,
                                    replicas=self.pool.n_up, reason=reason)
        elif delta < 0:
            victim = self.pool.retirement_candidate()
            if victim is not None:
                self.pool.retire(victim, now)
                self._target_replicas = max(cfg.min_replicas,
                                            self.pool.n_up)
                self.autoscaler.note(now, -1, self.pool.n_up, reason)
                self.tracer.instant("scale-down", "serving", now,
                                    track="serving", lane="autoscaler",
                                    delta=-1, replicas=self.pool.n_up,
                                    reason=reason)
        self._kick()
        drained = (self.metrics.completed == self.metrics.admitted)
        past_horizon = now >= self.config.trace.duration_s
        if not (past_horizon and drained):
            self.sim.timeout(cfg.interval_s, name="autoscale-tick"
                             ).add_callback(self._on_tick)


def simulate_serving(
    config: ServingConfig,
    system: Optional[MSASystem] = None,
    perf: Optional[InferencePerfModel] = None,
    fault_injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    registry: Optional[telemetry.MetricsRegistry] = None,
) -> ServingReport:
    """Convenience wrapper: build an engine, run it, return the report."""
    return ServingEngine(config, system=system, perf=perf,
                         fault_injector=fault_injector,
                         retry_policy=retry_policy,
                         registry=registry).run()
