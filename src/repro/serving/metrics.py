"""SLO accounting: goodput, deadline misses, latency tails.

The provisioning question the paper's real-time workload poses ("does this
configuration hold p99 under the deadline at this rate?") is answered
here.  All percentile math comes from :mod:`repro.core.stats` — the same
implementation the Fig. 3 A streaming model uses — so a "p99" from the
serving engine and one from the streaming bench are always the same
computation.

``ServingMetrics`` is the engine's mutable ledger; since the telemetry
refactor it is a *view over a shared*
:class:`~repro.telemetry.MetricsRegistry`: every count lives in a labeled
family (``serving_requests_total{outcome=...}``,
``serving_latency_seconds``, ``serving_module_busy_seconds{module=...}``)
so the serving report, the Prometheus dump and the unified trace summary
all draw from one registry.  Every counter obeys one conservation law the
tests assert:

    offered = admitted + rate_limited + shed
    admitted = completed            (after drain — failover loses nothing)

and the residual of that law is published explicitly as the
``serving_invariant_violations`` gauge (kept at zero by construction;
CI fails any run where it is not).  ``goodput`` counts only admitted
requests completed *within* their deadline: requests the system finished
late are throughput, not goodput.
"""

from __future__ import annotations

from typing import Optional

from repro.core.stats import LatencySummary, percentile, summarize_latencies
from repro.serving.request import Request
from repro.telemetry import MetricsRegistry


class ServingMetrics:
    """The engine's running ledger of one serving run, registry-backed.

    Constructing one without an explicit registry creates a private
    enabled registry, so independent engine runs never share counters —
    the property behind byte-identical same-seed reports.  Passing the
    capture registry (as ``repro trace serve`` does) folds the serving
    numbers into the run-wide metrics dump.
    """

    def __init__(self, duration_s: float,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.duration_s = duration_s
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._offered = reg.counter("serving_requests_total",
                                    outcome="offered")
        self._admitted = reg.counter("serving_requests_total",
                                     outcome="admitted")
        self._rate_limited = reg.counter("serving_requests_total",
                                         outcome="rate_limited")
        self._shed = reg.counter("serving_requests_total", outcome="shed")
        self._completed = reg.counter("serving_requests_total",
                                      outcome="completed")
        self._deadline_misses = reg.counter("serving_deadline_misses_total")
        self._latency = reg.histogram("serving_latency_seconds")
        self._batches = reg.counter("serving_batches_total")
        self._batched_requests = reg.counter("serving_batched_requests_total")
        self._failovers = reg.counter("serving_failovers_total")
        self._failed_over = reg.counter("serving_requests_failed_over_total")
        self._violations = reg.gauge("serving_invariant_violations")

    # -- recording -----------------------------------------------------------
    def record_rejection(self, reason: str) -> None:
        self._offered.inc()
        if reason == "rate-limited":
            self._rate_limited.inc()
        elif reason == "shed":
            self._shed.inc()
        else:
            raise ValueError(f"unknown rejection reason {reason!r}")

    def record_admission(self) -> None:
        self._offered.inc()
        self._admitted.inc()

    def record_completion(self, req: Request, now: float) -> float:
        """Complete one admitted request; returns its latency."""
        latency = now - req.arrival_s
        self._completed.inc()
        self._latency.observe(latency)
        if now > req.deadline_s + 1e-12:
            self._deadline_misses.inc()
        return latency

    def record_batch(self, n_requests: int, module_key: str,
                     busy_s: float) -> None:
        self._batches.inc()
        self._batched_requests.inc(n_requests)
        self.registry.counter("serving_module_busy_seconds",
                              module=module_key).inc(busy_s)

    def record_failover(self, n_drained: int) -> None:
        self._failovers.inc()
        self._failed_over.inc(n_drained)

    # -- defense accounting --------------------------------------------------
    # These families are created lazily at first record, so a run without
    # defenses enabled produces exactly the registry dump it always did.
    def record_hedge_issued(self) -> None:
        self.registry.counter("serving_hedges_total").inc()

    def record_hedge_resolved(self, backup_won: bool,
                              wasted_s: float) -> None:
        """One hedged batch resolved: a side won, the duplicate was
        cancelled after ``wasted_s`` seconds of thrown-away compute."""
        side = "backup" if backup_won else "primary"
        self.registry.counter("serving_hedge_wins_total", side=side).inc()
        self.registry.counter("serving_hedge_wasted_seconds").inc(wasted_s)

    def record_duplicate_response(self) -> None:
        """A response arrived for an already-completed hedged batch."""
        self.registry.counter("serving_duplicate_responses_total").inc()

    def record_breaker_transition(self, to_state: str) -> None:
        self.registry.counter("serving_breaker_transitions_total",
                              to=to_state).inc()

    def record_brownout_transition(self, to_level: int) -> None:
        self.registry.counter("serving_brownout_transitions_total",
                              to=str(to_level)).inc()

    def _family_total(self, name: str) -> float:
        return sum(inst.value for _, inst in self.registry.members(name))

    # -- ledger counts (registry views) --------------------------------------
    @property
    def offered(self) -> int:
        return int(self._offered.value)

    @property
    def admitted(self) -> int:
        return int(self._admitted.value)

    @property
    def rate_limited(self) -> int:
        return int(self._rate_limited.value)

    @property
    def shed(self) -> int:
        return int(self._shed.value)

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def deadline_misses(self) -> int:
        return int(self._deadline_misses.value)

    @property
    def latencies_s(self) -> list[float]:
        return self._latency.values

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batched_requests(self) -> int:
        return int(self._batched_requests.value)

    @property
    def failovers(self) -> int:
        return int(self._failovers.value)

    @property
    def requests_failed_over(self) -> int:
        return int(self._failed_over.value)

    @property
    def hedges_issued(self) -> int:
        return int(self._family_total("serving_hedges_total"))

    @property
    def hedges_backup_won(self) -> int:
        return int(self.registry.value("serving_hedge_wins_total",
                                       side="backup"))

    @property
    def hedge_wasted_s(self) -> float:
        return self._family_total("serving_hedge_wasted_seconds")

    @property
    def duplicate_responses(self) -> int:
        return int(self._family_total("serving_duplicate_responses_total"))

    @property
    def breaker_transitions(self) -> int:
        return int(self._family_total("serving_breaker_transitions_total"))

    @property
    def brownout_transitions(self) -> int:
        return int(self._family_total("serving_brownout_transitions_total"))

    @property
    def module_busy_s(self) -> dict[str, float]:
        return {dict(key)["module"]: counter.value
                for key, counter in
                self.registry.members("serving_module_busy_seconds")}

    # -- headline numbers ----------------------------------------------------
    @property
    def on_time(self) -> int:
        return self.completed - self.deadline_misses

    @property
    def goodput_per_s(self) -> float:
        """On-time completions per offered second."""
        return self.on_time / self.duration_s

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.offered if self.offered else 1.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_s)

    def meets_slo(self, deadline_budget_s: float,
                  quantile: float = 99.0) -> bool:
        """Does the latency quantile sit within the per-request budget?"""
        return self.percentile(quantile) <= deadline_budget_s

    # -- conservation --------------------------------------------------------
    @property
    def invariant_violations(self) -> int:
        """Total accounting leak across both conservation identities.

        Zero by construction; exported as the
        ``serving_invariant_violations`` gauge so a leak is visible in
        every metrics dump, not only inside the test suite.
        """
        arrival_leak = abs(self.offered
                           - (self.admitted + self.rate_limited + self.shed))
        completion_leak = abs(self.completed - self.admitted)
        return arrival_leak + completion_leak

    def check_conservation(self) -> None:
        """Publish the invariant gauge and raise on a leak."""
        self._violations.set(self.invariant_violations)
        if self.offered != self.admitted + self.rate_limited + self.shed:
            raise AssertionError(
                f"arrival accounting leak: offered={self.offered} != "
                f"{self.admitted}+{self.rate_limited}+{self.shed}")
        if self.completed != self.admitted:
            raise AssertionError(
                f"completion leak: admitted={self.admitted} but "
                f"completed={self.completed} — requests were lost")
