"""SLO accounting: goodput, deadline misses, latency tails.

The provisioning question the paper's real-time workload poses ("does this
configuration hold p99 under the deadline at this rate?") is answered
here.  All percentile math comes from :mod:`repro.core.stats` — the same
implementation the Fig. 3 A streaming model uses — so a "p99" from the
serving engine and one from the streaming bench are always the same
computation.

``ServingMetrics`` is the engine's mutable ledger; it renders into the
final report.  Every counter obeys one conservation law the tests assert:

    offered = admitted + rate_limited + shed
    admitted = completed            (after drain — failover loses nothing)

and ``goodput`` counts only admitted requests completed *within* their
deadline: requests the system finished late are throughput, not goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import LatencySummary, percentile, summarize_latencies
from repro.serving.request import Request


@dataclass
class ServingMetrics:
    """The engine's running ledger of one serving run."""

    duration_s: float

    # arrival accounting
    offered: int = 0
    admitted: int = 0
    rate_limited: int = 0
    shed: int = 0

    # completion accounting
    completed: int = 0
    deadline_misses: int = 0
    latencies_s: list[float] = field(default_factory=list)

    # batching
    batches: int = 0
    batched_requests: int = 0

    # failover
    failovers: int = 0
    requests_failed_over: int = 0

    # per-module busy node-seconds (batch compute attributed to its module)
    module_busy_s: dict[str, float] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------
    def record_rejection(self, reason: str) -> None:
        self.offered += 1
        if reason == "rate-limited":
            self.rate_limited += 1
        elif reason == "shed":
            self.shed += 1
        else:
            raise ValueError(f"unknown rejection reason {reason!r}")

    def record_admission(self) -> None:
        self.offered += 1
        self.admitted += 1

    def record_completion(self, req: Request, now: float) -> float:
        """Complete one admitted request; returns its latency."""
        latency = now - req.arrival_s
        self.completed += 1
        self.latencies_s.append(latency)
        if now > req.deadline_s + 1e-12:
            self.deadline_misses += 1
        return latency

    def record_batch(self, n_requests: int, module_key: str,
                     busy_s: float) -> None:
        self.batches += 1
        self.batched_requests += n_requests
        self.module_busy_s[module_key] = (
            self.module_busy_s.get(module_key, 0.0) + busy_s)

    # -- headline numbers ----------------------------------------------------
    @property
    def on_time(self) -> int:
        return self.completed - self.deadline_misses

    @property
    def goodput_per_s(self) -> float:
        """On-time completions per offered second."""
        return self.on_time / self.duration_s

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.offered if self.offered else 1.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_s)

    def meets_slo(self, deadline_budget_s: float,
                  quantile: float = 99.0) -> bool:
        """Does the latency quantile sit within the per-request budget?"""
        return self.percentile(quantile) <= deadline_budget_s

    def check_conservation(self) -> None:
        """Assert the accounting identities; raises on a leak."""
        if self.offered != self.admitted + self.rate_limited + self.shed:
            raise AssertionError(
                f"arrival accounting leak: offered={self.offered} != "
                f"{self.admitted}+{self.rate_limited}+{self.shed}")
        if self.completed != self.admitted:
            raise AssertionError(
                f"completion leak: admitted={self.admitted} but "
                f"completed={self.completed} — requests were lost")
