"""Replica pool and module-aware autoscaling.

A *replica* is a long-lived inference server occupying nodes on one MSA
module.  Placement goes through the batch scheduler's matchmaking
(:func:`repro.core.scheduler.place_standalone`), so replicas land exactly
where the paper's CM-train / ESB-infer pattern says they should: the
booster first, the DAM when it is equally fast and the booster is full,
and the CM only as slow overflow capacity.  Suspect (recently crashed)
nodes are avoided the same way the batch scheduler avoids them.

The autoscaler closes the loop on two signals a production gateway
actually has — current queue depth and the latency tail of the *recent*
window — and scales the pool between ``min_replicas`` and
``max_replicas``.  Decisions are pure functions of those signals, so the
whole control loop replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.hardware import NodeSpec
from repro.core.scheduler import place_standalone
from repro.core.stats import percentile
from repro.core.system import MSASystem
from repro.distributed.perfmodel import InferencePerfModel
from repro.serving.request import Request
from repro.simnet.events import Event


@dataclass
class InflightBatch:
    """One micro-batch being computed on a replica."""

    requests: list[Request]
    start: float
    done_evt: Optional[Event] = None
    #: Hedge group this batch belongs to (None for unhedged batches);
    #: opaque to the pool — the engine's hedging logic owns its type.
    group: Optional[object] = None


@dataclass
class Replica:
    """One placed inference server."""

    rid: int
    module_key: str
    nodes: tuple[int, ...]
    node_spec: NodeSpec
    sample_time_s: float           # marginal per-sample forward time
    started_at: float
    up: bool = True
    inflight: Optional[InflightBatch] = None
    busy_s: float = 0.0

    @property
    def idle(self) -> bool:
        return self.up and self.inflight is None


class ReplicaPool:
    """Placement, retirement and crash handling for serving replicas."""

    def __init__(
        self,
        system: MSASystem,
        perf: InferencePerfModel,
        nodes_per_replica: int = 1,
        reference_batch_samples: int = 8,
    ) -> None:
        if nodes_per_replica < 1:
            raise ValueError("nodes_per_replica must be >= 1")
        self.system = system
        self.perf = perf
        self.nodes_per_replica = nodes_per_replica
        self._phase = perf.as_phase(reference_batch_samples)
        self.replicas: dict[int, Replica] = {}
        self.suspect: dict[str, set[int]] = {}
        self._next_id = 0
        #: Node-seconds each module spent hosting replicas (billing view).
        self.module_lifetime_s: dict[str, float] = {}
        #: Placement history: (time, replica id, module key).
        self.placements: list[tuple[float, int, str]] = []

    # -- inventory -----------------------------------------------------------
    @property
    def n_up(self) -> int:
        return sum(1 for r in self.replicas.values() if r.up)

    def idle_replicas(self) -> list[Replica]:
        """Idle replicas, fastest module first (dispatch preference)."""
        idle = [r for r in self.replicas.values() if r.idle]
        idle.sort(key=lambda r: (r.sample_time_s, r.rid))
        return idle

    def find(self, module_key: str, node: int) -> Optional[Replica]:
        for r in self.replicas.values():
            if r.up and r.module_key == module_key and node in r.nodes:
                return r
        return None

    # -- lifecycle -----------------------------------------------------------
    def place(self, now: float,
              avoid: Optional[dict[str, set[int]]] = None) -> Optional[Replica]:
        """Start one replica on the best module with capacity, or ``None``.

        ``avoid`` merges extra per-module node sets into the crash-derived
        suspects for this one placement — the health detector's suspicion
        (gray or partitioned nodes) flows in here without being recorded
        as a permanent crash suspicion.
        """
        suspect = self.suspect
        if avoid:
            suspect = {k: set(v) for k, v in self.suspect.items()}
            for key, nodes in avoid.items():
                suspect.setdefault(key, set()).update(nodes)
        placed = place_standalone(self.system, self._phase,
                                  self.nodes_per_replica,
                                  suspect=suspect)
        if placed is None:
            return None
        key, nodes = placed
        spec = self.system.module(key).node_spec
        replica = Replica(
            rid=self._next_id,
            module_key=key,
            nodes=nodes,
            node_spec=spec,
            sample_time_s=self.perf.sample_time(spec),
            started_at=now,
        )
        self._next_id += 1
        self.replicas[replica.rid] = replica
        self.placements.append((now, replica.rid, key))
        return replica

    def batch_time(self, replica: Replica, batch_samples: int) -> float:
        return self.perf.batch_time(batch_samples, replica.node_spec,
                                    self.nodes_per_replica)

    def _account_lifetime(self, replica: Replica, now: float) -> None:
        span = (now - replica.started_at) * len(replica.nodes)
        self.module_lifetime_s[replica.module_key] = (
            self.module_lifetime_s.get(replica.module_key, 0.0) + span)

    def retire(self, replica: Replica, now: float) -> None:
        """Graceful scale-down of an *idle* replica."""
        if replica.inflight is not None:
            raise ValueError("cannot retire a busy replica — drain first")
        self._account_lifetime(replica, now)
        self.system.module(replica.module_key).release(list(replica.nodes))
        del self.replicas[replica.rid]

    def crash(self, replica: Replica, node: int, now: float) -> list[Request]:
        """A node under ``replica`` died; tear it down and drain its work.

        The caller has already marked the node down on the module.  Returns
        the in-flight requests to re-queue (empty if the replica was idle).
        ``release`` skips down nodes, so passing the full node list is safe.
        """
        replica.up = False
        self._account_lifetime(replica, now)
        self.suspect.setdefault(replica.module_key, set()).add(node)
        self.system.module(replica.module_key).release(
            [n for n in replica.nodes if n != node])
        drained: list[Request] = []
        if replica.inflight is not None:
            if replica.inflight.done_evt is not None:
                replica.inflight.done_evt.cancel()
            drained = replica.inflight.requests
            replica.inflight = None
        del self.replicas[replica.rid]
        return drained

    def retirement_candidate(self) -> Optional[Replica]:
        """Which idle replica to scale down: the slowest-placed, newest."""
        idle = [r for r in self.replicas.values() if r.idle]
        if not idle:
            return None
        idle.sort(key=lambda r: (-r.sample_time_s, -r.rid))
        return idle[0]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling bounds and thresholds."""

    enabled: bool = True
    min_replicas: int = 1
    max_replicas: int = 8
    interval_s: float = 1.0
    #: Scale up when queue depth exceeds this many requests per up replica…
    queue_high_per_replica: float = 4.0
    #: …or when the recent-window p99 exceeds this fraction of the SLO.
    p99_high_fraction: float = 0.9
    #: Scale down only when the queue is empty and window p95 is this low.
    p95_low_fraction: float = 0.25
    #: Replicas added per decision (bounded ramp, avoids thrash).
    max_step_up: int = 2

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if self.max_step_up < 1:
            raise ValueError("max_step_up must be >= 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision that changed the pool."""

    time: float
    delta: int
    n_up_after: int
    reason: str


@dataclass
class Autoscaler:
    """Queue-depth / latency-tail feedback controller over the pool."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    events: list[ScaleEvent] = field(default_factory=list)

    def decide(
        self,
        now: float,
        n_up: int,
        queue_depth: int,
        window_latencies: list[float],
        slo_deadline_s: float,
    ) -> tuple[int, str]:
        """``(delta, reason)`` — positive to add replicas, negative to drop one."""
        cfg = self.config
        if n_up < cfg.min_replicas:
            return cfg.min_replicas - n_up, "below-min"
        deep_queue = queue_depth > cfg.queue_high_per_replica * max(n_up, 1)
        tail_high = False
        if window_latencies:
            tail_high = (percentile(window_latencies, 99)
                         > cfg.p99_high_fraction * slo_deadline_s)
        if (deep_queue or tail_high) and n_up < cfg.max_replicas:
            want = min(cfg.max_step_up, cfg.max_replicas - n_up)
            return want, "queue-depth" if deep_queue else "p99"
        if (queue_depth == 0 and n_up > cfg.min_replicas
                and window_latencies
                and percentile(window_latencies, 95)
                < cfg.p95_low_fraction * slo_deadline_s):
            return -1, "idle"
        return 0, ""

    def note(self, time: float, delta: int, n_up_after: int,
             reason: str) -> None:
        self.events.append(ScaleEvent(time, delta, n_up_after, reason))
