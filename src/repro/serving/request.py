"""The request frontend: seeded arrival processes and request traces.

The paper's RS application list opens with "(near) real-time processing in
case of earth disasters" — scenes arrive continuously and must be
classified within a latency bound.  At production scale the arrival
process is never a clean Poisson stream: traffic breathes with the day and
spikes when a disaster actually happens.  This module generates all three
shapes as **fully resolved traces**: like :class:`~repro.resilience.faults.FaultPlan`,
every random draw is spent at construction from one seed, so a trace
replays identically however many times the engine consumes it.

Requests carry a ``key`` drawn from a Zipf-like popularity distribution —
the handle the result cache deduplicates on (the same scene tile gets
re-requested by many downstream consumers).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np


class ArrivalPattern(str, Enum):
    """Shape of the offered load."""

    POISSON = "poisson"        # stationary rate
    DIURNAL = "diurnal"        # sinusoidal day/night swing
    BURSTY = "bursty"          # on/off Markov-modulated spikes


@dataclass(frozen=True)
class Request:
    """One inference request as the frontend sees it."""

    req_id: int
    arrival_s: float
    deadline_s: float          # absolute SLO deadline (arrival + budget)
    key: int                   # cache/dedup key (scene tile id)
    n_samples: int = 1         # samples (patches) bundled in this request
    model: str = "default"     # served model (batches never mix models)
    #: Traffic tier: "gold" is protected; "bronze" is the best-effort
    #: tier the brownout controller sheds first under overload.
    tier: str = "gold"

    @property
    def latency_budget_s(self) -> float:
        return self.deadline_s - self.arrival_s


@dataclass(frozen=True)
class TraceConfig:
    """A fully specified arrival scenario."""

    pattern: ArrivalPattern = ArrivalPattern.POISSON
    rate_per_s: float = 50.0           # mean arrival rate
    duration_s: float = 60.0
    slo_deadline_s: float = 0.5        # per-request latency budget
    samples_per_request: int = 1
    seed: int = 0
    #: Distinct cache keys in circulation; popularity is Zipf(s≈1.1).
    key_universe: int = 512
    #: DIURNAL: peak/trough rate swing as a fraction of the mean (0..1).
    diurnal_swing: float = 0.6
    #: DIURNAL: one full day compressed into this many simulated seconds.
    diurnal_period_s: float = 60.0
    #: BURSTY: rate multiplier while a burst is on.
    burst_factor: float = 5.0
    #: BURSTY: mean burst / gap lengths (exponential).
    burst_len_s: float = 5.0
    gap_len_s: float = 15.0
    #: Fraction of requests in the sheddable "bronze" tier (0 = all gold).
    bronze_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        if self.slo_deadline_s <= 0:
            raise ValueError("SLO deadline must be positive")
        if self.samples_per_request < 1:
            raise ValueError("samples_per_request must be >= 1")
        if self.key_universe < 1:
            raise ValueError("key_universe must be >= 1")
        if not (0.0 <= self.diurnal_swing < 1.0):
            raise ValueError("diurnal_swing must be in [0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.burst_len_s <= 0 or self.gap_len_s <= 0:
            raise ValueError("burst/gap lengths must be positive")
        if not (0.0 <= self.bronze_fraction <= 1.0):
            raise ValueError("bronze_fraction must be in [0, 1]")


def _zipf_keys(rng: np.random.Generator, n: int, universe: int) -> np.ndarray:
    """Zipf-ranked key draws truncated to ``universe`` (heavy head)."""
    probs = 1.0 / np.arange(1, universe + 1) ** 1.1
    probs /= probs.sum()
    return rng.choice(universe, size=n, p=probs)


def _poisson_times(rng: np.random.Generator, rate: float,
                   duration: float) -> list[float]:
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            return times
        times.append(t)


def _diurnal_times(rng: np.random.Generator, cfg: TraceConfig) -> list[float]:
    """Non-homogeneous Poisson via thinning against the peak rate."""
    peak = cfg.rate_per_s * (1.0 + cfg.diurnal_swing)
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= cfg.duration_s:
            return times
        rate_t = cfg.rate_per_s * (
            1.0 + cfg.diurnal_swing
            * np.sin(2.0 * np.pi * t / cfg.diurnal_period_s))
        if float(rng.uniform()) < rate_t / peak:
            times.append(t)


def _bursty_times(rng: np.random.Generator, cfg: TraceConfig) -> list[float]:
    """On/off modulated Poisson: quiet base rate, ``burst_factor``× bursts.

    The mean rate over a full on/off cycle is held at ``rate_per_s`` so
    bursty and Poisson scenarios offer the same total load — only its
    distribution in time differs.
    """
    cycle = cfg.burst_len_s + cfg.gap_len_s
    mean_factor = (cfg.burst_len_s * cfg.burst_factor + cfg.gap_len_s) / cycle
    base = cfg.rate_per_s / mean_factor
    times: list[float] = []
    t = 0.0
    burst_on = False
    phase_end = float(rng.exponential(cfg.gap_len_s))
    while t < cfg.duration_s:
        rate = base * (cfg.burst_factor if burst_on else 1.0)
        t += float(rng.exponential(1.0 / rate))
        while t >= phase_end:
            burst_on = not burst_on
            mean = cfg.burst_len_s if burst_on else cfg.gap_len_s
            phase_end += float(rng.exponential(mean))
        if t < cfg.duration_s:
            times.append(t)
    return times


def generate_trace(cfg: TraceConfig) -> tuple[Request, ...]:
    """Resolve a :class:`TraceConfig` into its deterministic request trace."""
    rng = np.random.default_rng(cfg.seed)
    if cfg.pattern is ArrivalPattern.POISSON:
        times = _poisson_times(rng, cfg.rate_per_s, cfg.duration_s)
    elif cfg.pattern is ArrivalPattern.DIURNAL:
        times = _diurnal_times(rng, cfg)
    elif cfg.pattern is ArrivalPattern.BURSTY:
        times = _bursty_times(rng, cfg)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown arrival pattern {cfg.pattern!r}")
    keys = _zipf_keys(rng, len(times), cfg.key_universe)
    # Tier draws happen only when bronze traffic is configured, so the
    # rng stream — and therefore every existing trace — is untouched at
    # the default bronze_fraction of 0.
    if cfg.bronze_fraction > 0.0:
        bronze = rng.uniform(size=len(times)) < cfg.bronze_fraction
    else:
        bronze = np.zeros(len(times), dtype=bool)
    return tuple(
        Request(
            req_id=i,
            arrival_s=t,
            deadline_s=t + cfg.slo_deadline_s,
            key=int(k),
            n_samples=cfg.samples_per_request,
            tier="bronze" if bronze[i] else "gold",
        )
        for i, (t, k) in enumerate(zip(times, keys))
    )
