"""Simulation substrate for the MSA reproduction.

This package provides the timed foundations everything else builds on:

* :mod:`repro.simnet.events` — a deterministic discrete-event simulation
  (DES) engine with generator-based processes and resources,
* :mod:`repro.simnet.link` — latency/bandwidth link models,
* :mod:`repro.simnet.topology` — interconnect topologies (fat-tree, torus,
  dragonfly and the MSA *network federation* joining module fabrics),
* :mod:`repro.simnet.costs` — analytic α-β(-γ) communication cost models for
  point-to-point transfers and MPI collective algorithms.

The functional layer (:mod:`repro.mpi`, :mod:`repro.distributed`) executes
algorithms for real on small rank counts; this package supplies the simulated
clock that extrapolates the *same* algorithms to paper scale (96–128 GPUs,
Fig. 3) deterministically on a laptop.
"""

from repro.simnet.events import (
    Event,
    EventQueue,
    Process,
    Resource,
    SimulationError,
    Simulator,
)
from repro.simnet.link import (
    DuplexLink,
    Link,
    LinkKind,
    PartitionedLink,
    PartitionWindow,
    UnreliableLink,
)
from repro.simnet.topology import (
    Topology,
    fat_tree,
    torus_3d,
    dragonfly,
    fully_connected,
    federated,
)
from repro.simnet.costs import (
    CommCostModel,
    CollectiveCosts,
    ptp_time,
    allreduce_ring_time,
    allreduce_recursive_doubling_time,
    allreduce_rabenseifner_time,
    broadcast_binomial_time,
    allgather_ring_time,
    reduce_scatter_time,
    best_allreduce_time,
)

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Link",
    "DuplexLink",
    "UnreliableLink",
    "PartitionedLink",
    "PartitionWindow",
    "LinkKind",
    "Topology",
    "fat_tree",
    "torus_3d",
    "dragonfly",
    "fully_connected",
    "federated",
    "CommCostModel",
    "CollectiveCosts",
    "ptp_time",
    "allreduce_ring_time",
    "allreduce_recursive_doubling_time",
    "allreduce_rabenseifner_time",
    "broadcast_binomial_time",
    "allgather_ring_time",
    "reduce_scatter_time",
    "best_allreduce_time",
]
