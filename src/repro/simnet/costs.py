"""Analytic α-β(-γ) cost models for MPI collectives.

These are the standard Hockney/LogP-family models used throughout the HPC
literature (and inside MPI libraries' algorithm selectors):

* point-to-point: ``α + nβ``
* ring allreduce (Horovod's algorithm): ``2(p-1)α + 2 n β (p-1)/p + n γ (p-1)/p``
* recursive doubling: ``log2(p)(α + nβ + nγ)``
* Rabenseifner (reduce-scatter + allgather): ``2 log2(p) α + 2 n β (p-1)/p + n γ (p-1)/p``
* binomial-tree broadcast: ``ceil(log2(p)) (α + nβ)``

``α`` = per-message latency (s), ``β`` = inverse bandwidth (s/byte),
``γ`` = per-byte local reduction cost (s/byte).  These models drive the
simulated clock that regenerates the paper's Fig. 3 scaling curves at
96–128 GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simnet.link import Link, LinkKind


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ValueError("need at least one participant")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")


def ptp_time(alpha: float, beta: float, nbytes: float) -> float:
    """Point-to-point message cost α + nβ."""
    _check(1, nbytes)
    return alpha + nbytes * beta


def allreduce_ring_time(
    p: int, nbytes: float, alpha: float, beta: float, gamma: float = 0.0
) -> float:
    """Bandwidth-optimal ring allreduce (reduce-scatter + allgather rings)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    frac = (p - 1) / p
    return 2 * (p - 1) * alpha + 2 * nbytes * beta * frac + nbytes * gamma * frac


def allreduce_recursive_doubling_time(
    p: int, nbytes: float, alpha: float, beta: float, gamma: float = 0.0
) -> float:
    """Latency-optimal recursive doubling (assumes power-of-two ranks)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    steps = math.ceil(math.log2(p))
    return steps * (alpha + nbytes * beta + nbytes * gamma)


def allreduce_rabenseifner_time(
    p: int, nbytes: float, alpha: float, beta: float, gamma: float = 0.0
) -> float:
    """Rabenseifner's algorithm: recursive-halving reduce-scatter + allgather."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    steps = math.ceil(math.log2(p))
    frac = (p - 1) / p
    return 2 * steps * alpha + 2 * nbytes * beta * frac + nbytes * gamma * frac


def broadcast_binomial_time(p: int, nbytes: float, alpha: float, beta: float) -> float:
    """Binomial-tree broadcast."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * (alpha + nbytes * beta)


def allgather_ring_time(p: int, nbytes_per_rank: float, alpha: float, beta: float) -> float:
    """Ring allgather: p-1 steps, each moving one rank's block."""
    _check(p, nbytes_per_rank)
    if p == 1:
        return 0.0
    return (p - 1) * (alpha + nbytes_per_rank * beta)


def reduce_scatter_time(
    p: int, nbytes: float, alpha: float, beta: float, gamma: float = 0.0
) -> float:
    """Ring reduce-scatter over a buffer of ``nbytes`` total."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    frac = (p - 1) / p
    return (p - 1) * alpha + nbytes * beta * frac + nbytes * gamma * frac


def best_allreduce_time(
    p: int, nbytes: float, alpha: float, beta: float, gamma: float = 0.0
) -> tuple[float, str]:
    """Pick the cheapest allreduce algorithm — what real MPIs/Horovod do.

    Returns (time, algorithm-name).
    """
    candidates = {
        "ring": allreduce_ring_time(p, nbytes, alpha, beta, gamma),
        "recursive-doubling": allreduce_recursive_doubling_time(p, nbytes, alpha, beta, gamma),
        "rabenseifner": allreduce_rabenseifner_time(p, nbytes, alpha, beta, gamma),
    }
    name = min(candidates, key=candidates.get)
    return candidates[name], name


@dataclass(frozen=True)
class CommCostModel:
    """α-β-γ parameters for a fabric, derivable from a :class:`Link`."""

    alpha: float             # per-message latency, seconds
    beta: float              # seconds per byte
    gamma: float = 5.0e-12   # local reduction, s/byte (~200 GB/s memory系)

    @classmethod
    def from_link(cls, link: Link, gamma: float = 5.0e-12) -> "CommCostModel":
        return cls(alpha=link.latency_s, beta=1.0 / link.bandwidth_Bps, gamma=gamma)

    @classmethod
    def of_kind(cls, kind: LinkKind, gamma: float = 5.0e-12) -> "CommCostModel":
        return cls.from_link(Link.of_kind(kind), gamma=gamma)

    def ptp(self, nbytes: float) -> float:
        return ptp_time(self.alpha, self.beta, nbytes)

    def scaled(self, alpha_factor: float = 1.0, beta_factor: float = 1.0) -> "CommCostModel":
        """Derive a model with scaled constants (used by the GCE offload)."""
        return CommCostModel(
            alpha=self.alpha * alpha_factor,
            beta=self.beta * beta_factor,
            gamma=self.gamma,
        )


@dataclass(frozen=True)
class CollectiveCosts:
    """Collective-time oracle bound to one cost model."""

    model: CommCostModel

    def allreduce(self, p: int, nbytes: float, algorithm: str = "auto") -> float:
        m = self.model
        if algorithm == "auto":
            t, _ = best_allreduce_time(p, nbytes, m.alpha, m.beta, m.gamma)
            return t
        if algorithm == "ring":
            return allreduce_ring_time(p, nbytes, m.alpha, m.beta, m.gamma)
        if algorithm == "recursive-doubling":
            return allreduce_recursive_doubling_time(p, nbytes, m.alpha, m.beta, m.gamma)
        if algorithm == "rabenseifner":
            return allreduce_rabenseifner_time(p, nbytes, m.alpha, m.beta, m.gamma)
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")

    def broadcast(self, p: int, nbytes: float) -> float:
        return broadcast_binomial_time(p, nbytes, self.model.alpha, self.model.beta)

    def allgather(self, p: int, nbytes_per_rank: float) -> float:
        return allgather_ring_time(p, nbytes_per_rank, self.model.alpha, self.model.beta)

    def reduce_scatter(self, p: int, nbytes: float) -> float:
        return reduce_scatter_time(p, nbytes, self.model.alpha, self.model.beta, self.model.gamma)

    def ptp(self, nbytes: float) -> float:
        return self.model.ptp(nbytes)
