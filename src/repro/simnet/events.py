"""Deterministic discrete-event simulation engine.

The engine is intentionally small but complete: a priority queue of timed
events, generator-based processes (a process yields the events it waits
on), and counted resources with FIFO wait queues.  Determinism is guaranteed
by (time, sequence-number) ordering — two events at the same timestamp fire
in scheduling order, so repeated runs produce identical traces.

The scheduler (:mod:`repro.core.scheduler`) and the NAM/storage models run on
top of this engine; the MPI simulated-clock backend uses it indirectly
through the analytic cost models.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid simulation operations (e.g. scheduling in the past)."""


class Event:
    """A value that materialises at a simulated time.

    Processes wait on events by yielding them.  Callbacks registered with
    :meth:`add_callback` fire when the event is triggered.

    Implementation note: events are the DES kernel's unit allocation —
    serving and scheduler scenarios create millions — so the class is
    ``__slots__``-based and the callback list is allocated lazily (most
    events carry exactly zero or one callback).
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_cancelled",
                 "_time", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "",
                 _value: Any = None) -> None:
        self.sim = sim
        self.name = name
        self._value = _value
        self._triggered = False
        self._cancelled = False
        self._time: Optional[float] = None
        self._callbacks: Optional[list] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent a pending event from firing.

        A cancelled event stays in the queue but is discarded when its time
        comes: callbacks never run and the event never triggers.  Fault
        handling uses this to retract a phase-completion event when the
        phase's node crashes mid-run.
        """
        if self._triggered:
            raise SimulationError(f"cannot cancel fired event {self.name!r}")
        self._cancelled = True

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} read before trigger")
        return self._value

    @property
    def time(self) -> Optional[float]:
        """Simulated time at which the event fired (None if pending)."""
        return self._time

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._triggered:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger ``delay`` from now."""
        self.sim.schedule(self, delay=delay, value=value)
        return self

    def _fire(self, now: float) -> None:
        if self._cancelled:
            return
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._time = now
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class Process:
    """A generator-driven simulation process.

    The generator yields :class:`Event` instances (or floats, interpreted as
    timeouts).  When the generator returns, the process's completion event
    triggers with the return value.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(sim, name=f"{self.name}.done")
        self._alive = True
        # Kick off at current time.
        start = Event(sim, name=f"{self.name}.start")
        start.add_callback(self._resume)
        sim.schedule(start, delay=0.0)

    @property
    def alive(self) -> bool:
        return self._alive

    def _resume(self, evt: Event) -> None:
        try:
            target = self.gen.send(evt.value if evt.triggered else None)
        except StopIteration as stop:
            self._alive = False
            self.done.succeed(stop.value)
            return
        if isinstance(target, (int, float)):
            target = self.sim.timeout(float(target))
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected Event or float timeout"
            )
        target.add_callback(self._resume)


class Resource:
    """A counted resource with FIFO acquisition.

    ``capacity`` units exist; :meth:`acquire` returns an event that triggers
    once a unit is granted.  Units are released with :meth:`release`.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        evt = Event(self.sim, name=f"{self.name}.grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed(self)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            evt = self._waiters.popleft()
            evt.succeed(self)
        else:
            self.in_use -= 1


class EventQueue:
    """Deterministic (time, seq) priority queue used by :class:`Simulator`."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, time: float, event: Event) -> None:
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))

    def pop(self) -> tuple[float, Event]:
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> float:
        return self._heap[0][0]


class Simulator:
    """The simulation kernel: clock + event queue + process spawning."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._processed = 0

    # -- event primitives -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        evt = Event(self, name=name)
        self.schedule(evt, delay=delay, value=value)
        return evt

    def schedule(self, event: Event, delay: float = 0.0, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} in the past")
        event._value = value
        self._queue.push(self.now + delay, event)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def resource(self, capacity: int, name: str = "resource") -> Resource:
        return Resource(self, capacity, name=name)

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Event that triggers when every input event has triggered."""
        events = list(events)
        done = Event(self, name=name)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_cb(i: int):
            def cb(evt: Event) -> None:
                values[i] = evt.value
                state["left"] -= 1
                if state["left"] == 0:
                    done.succeed(list(values))

            return cb

        for i, evt in enumerate(events):
            evt.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """Event that triggers when the first input event triggers."""
        done = Event(self, name=name)
        state = {"fired": False}

        def cb(evt: Event) -> None:
            if not state["fired"]:
                state["fired"] = True
                done.succeed(evt.value)

        events = list(events)
        if not events:
            raise SimulationError("any_of needs at least one event")
        for evt in events:
            evt.add_callback(cb)
        return done

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if len(self._queue) == 0:
            return False
        time, event = self._queue.pop()
        if time < self.now:
            raise SimulationError("time ran backwards")
        self.now = time
        if not event._cancelled:
            self._processed += 1
            event._fire(self.now)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until queue exhaustion or simulated time ``until``.

        Returns the final simulated time.

        This is the kernel's hottest loop, so it pops straight off the
        underlying heap with locally-bound helpers instead of going through
        :meth:`step`; the (time, seq) ordering and per-event semantics are
        identical.
        """
        heap = self._queue._heap
        heappop = heapq.heappop
        processed = 0
        steps = 0
        now = self.now
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    now = until
                    break
                if steps >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events — runaway simulation?"
                    )
                steps += 1
                time, _, event = heappop(heap)
                if time < now:
                    raise SimulationError("time ran backwards")
                now = time
                self.now = now
                if not event._cancelled:
                    processed += 1
                    event._fire(now)
                    # Callbacks may advance the clock (nested run) — resync.
                    now = self.now
        finally:
            self._processed += processed
        if until is not None and now < until:
            now = until
        self.now = now
        return now

    @property
    def events_processed(self) -> int:
        return self._processed
