"""Link models for MSA interconnects.

A link is characterised by latency (seconds) and bandwidth (bytes/second);
transferring ``n`` bytes costs ``latency + n / bandwidth``.  The constants
below follow the fabrics named in the paper: InfiniBand EDR/HDR inside the
JUWELS modules, EXTOLL-class links for the DEEP network federation, NVLink
between GPUs inside a node, and PCIe for host↔accelerator traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LinkKind(str, Enum):
    """Interconnect families that appear in the paper's systems."""

    INFINIBAND_EDR = "infiniband-edr"       # JUWELS cluster module fabric
    INFINIBAND_HDR = "infiniband-hdr"       # JUWELS booster fabric
    EXTOLL = "extoll"                       # DEEP network federation
    NVLINK = "nvlink"                       # intra-node GPU mesh
    PCIE3 = "pcie3"                         # host <-> FPGA/GPU (DEEP DAM)
    PCIE4 = "pcie4"
    ETHERNET_100G = "ethernet-100g"         # cloud / storage access networks
    FEDERATION = "federation"               # generic inter-module bridge


#: (latency seconds, bandwidth bytes/s) per link family.  Values are public
#: datasheet-order-of-magnitude figures; the experiments depend on ratios,
#: not absolutes.
LINK_CHARACTERISTICS: dict[LinkKind, tuple[float, float]] = {
    LinkKind.INFINIBAND_EDR: (1.0e-6, 12.5e9),     # 100 Gb/s
    LinkKind.INFINIBAND_HDR: (0.9e-6, 25.0e9),     # 200 Gb/s
    LinkKind.EXTOLL: (0.75e-6, 12.5e9),
    LinkKind.NVLINK: (0.5e-6, 150.0e9),
    LinkKind.PCIE3: (0.8e-6, 15.75e9),
    LinkKind.PCIE4: (0.7e-6, 31.5e9),
    LinkKind.ETHERNET_100G: (5.0e-6, 12.5e9),
    LinkKind.FEDERATION: (2.0e-6, 12.5e9),
}


@dataclass(frozen=True)
class Link:
    """A unidirectional point-to-point link."""

    kind: LinkKind
    latency_s: float
    bandwidth_Bps: float

    @classmethod
    def of_kind(cls, kind: LinkKind) -> "Link":
        latency, bandwidth = LINK_CHARACTERISTICS[kind]
        return cls(kind=kind, latency_s=latency, bandwidth_Bps=bandwidth)

    def transfer_time(self, nbytes: float) -> float:
        """α + n·β cost of moving ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_Bps

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for a transfer of ``nbytes`` (latency-degraded)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.transfer_time(nbytes)


@dataclass(frozen=True)
class DuplexLink:
    """A full-duplex link: simultaneous send and receive at full bandwidth.

    Ring collectives exploit duplexity — each rank sends to its successor
    while receiving from its predecessor, so one ring step costs a single
    :meth:`Link.transfer_time`, not two.
    """

    link: Link

    @property
    def kind(self) -> LinkKind:
        return self.link.kind

    def step_time(self, nbytes: float) -> float:
        return self.link.transfer_time(nbytes)

    def exchange_time(self, nbytes: float) -> float:
        """Simultaneous pairwise exchange (both directions overlap)."""
        return self.link.transfer_time(nbytes)
