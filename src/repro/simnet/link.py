"""Link models for MSA interconnects.

A link is characterised by latency (seconds) and bandwidth (bytes/second);
transferring ``n`` bytes costs ``latency + n / bandwidth``.  The constants
below follow the fabrics named in the paper: InfiniBand EDR/HDR inside the
JUWELS modules, EXTOLL-class links for the DEEP network federation, NVLink
between GPUs inside a node, and PCIe for host↔accelerator traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class LinkKind(str, Enum):
    """Interconnect families that appear in the paper's systems."""

    INFINIBAND_EDR = "infiniband-edr"       # JUWELS cluster module fabric
    INFINIBAND_HDR = "infiniband-hdr"       # JUWELS booster fabric
    EXTOLL = "extoll"                       # DEEP network federation
    NVLINK = "nvlink"                       # intra-node GPU mesh
    PCIE3 = "pcie3"                         # host <-> FPGA/GPU (DEEP DAM)
    PCIE4 = "pcie4"
    ETHERNET_100G = "ethernet-100g"         # cloud / storage access networks
    FEDERATION = "federation"               # generic inter-module bridge


#: (latency seconds, bandwidth bytes/s) per link family.  Values are public
#: datasheet-order-of-magnitude figures; the experiments depend on ratios,
#: not absolutes.
LINK_CHARACTERISTICS: dict[LinkKind, tuple[float, float]] = {
    LinkKind.INFINIBAND_EDR: (1.0e-6, 12.5e9),     # 100 Gb/s
    LinkKind.INFINIBAND_HDR: (0.9e-6, 25.0e9),     # 200 Gb/s
    LinkKind.EXTOLL: (0.75e-6, 12.5e9),
    LinkKind.NVLINK: (0.5e-6, 150.0e9),
    LinkKind.PCIE3: (0.8e-6, 15.75e9),
    LinkKind.PCIE4: (0.7e-6, 31.5e9),
    LinkKind.ETHERNET_100G: (5.0e-6, 12.5e9),
    LinkKind.FEDERATION: (2.0e-6, 12.5e9),
}


@dataclass(frozen=True)
class Link:
    """A unidirectional point-to-point link."""

    kind: LinkKind
    latency_s: float
    bandwidth_Bps: float

    @classmethod
    def of_kind(cls, kind: LinkKind) -> "Link":
        latency, bandwidth = LINK_CHARACTERISTICS[kind]
        return cls(kind=kind, latency_s=latency, bandwidth_Bps=bandwidth)

    def transfer_time(self, nbytes: float) -> float:
        """α + n·β cost of moving ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_Bps

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for a transfer of ``nbytes`` (latency-degraded)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.transfer_time(nbytes)

    def degraded(self, factor: float) -> "Link":
        """This link running degraded: bandwidth divided by ``factor``.

        Fault injection uses this for partial link failures (a flapping
        cable, a congested federation bridge) where traffic still flows but
        slower; ``factor=1`` is the healthy link.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        return Link(
            kind=self.kind,
            latency_s=self.latency_s,
            bandwidth_Bps=self.bandwidth_Bps / factor,
        )


@dataclass(frozen=True)
class DuplexLink:
    """A full-duplex link: simultaneous send and receive at full bandwidth.

    Ring collectives exploit duplexity — each rank sends to its successor
    while receiving from its predecessor, so one ring step costs a single
    :meth:`Link.transfer_time`, not two.
    """

    link: Link

    @property
    def kind(self) -> LinkKind:
        return self.link.kind

    def step_time(self, nbytes: float) -> float:
        return self.link.transfer_time(nbytes)

    def exchange_time(self, nbytes: float) -> float:
        """Simultaneous pairwise exchange (both directions overlap)."""
        return self.link.transfer_time(nbytes)


@dataclass(frozen=True)
class PartitionWindow:
    """One network-partition window: the cut exists in [start, end).

    The pure time-arithmetic core of the NETWORK_PARTITION fault class —
    shared by the simnet link wrapper below and the MPI transport so both
    planes agree, to the ULP, on when the fabric is cut.
    """

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("partition must end at or after it starts")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def delay_until_heal(self, now: float) -> float:
        """Seconds a message sent at ``now`` stalls before the cut heals
        (0 when the partition is not active at ``now``)."""
        return self.end_s - now if self.active(now) else 0.0


@dataclass
class PartitionedLink:
    """A link crossing a partition cut: transfers stall until heal.

    Models what TCP-over-a-partition actually does — traffic neither
    flows nor errors immediately; it times out, retransmits, and finally
    goes through when the cut heals.  A transfer started inside the
    window therefore costs ``(heal - now) + retransmit + base``; outside
    the window the wrapper is transparent.  Deterministic: no randomness,
    just window arithmetic.
    """

    link: Link
    window: PartitionWindow
    #: Extra cost of the post-heal retransmission burst.
    retransmit_s: float = 1e-3
    #: Transfers that hit the cut (accounting for the drill report).
    stalled: int = field(init=False, default=0)

    @property
    def kind(self) -> LinkKind:
        return self.link.kind

    def transfer_time_at(self, now: float, nbytes: float) -> float:
        """Delivery time for ``nbytes`` sent at simulated ``now``."""
        base = self.link.transfer_time(nbytes)
        stall = self.window.delay_until_heal(now)
        if stall > 0.0:
            self.stalled += 1
            return stall + self.retransmit_s + base
        return base

    def transfer_time(self, nbytes: float) -> float:
        """Healthy-path cost (position-independent callers); use
        :meth:`transfer_time_at` to account for the window."""
        return self.link.transfer_time(nbytes)


@dataclass
class UnreliableLink:
    """A link that drops messages; dropped messages are retransmitted.

    Models transient message loss (the MESSAGE_DROP fault class): each
    transfer attempt independently fails with ``drop_probability``; a failed
    attempt costs a retransmission timeout before the next try.  The drop
    sequence is driven by a seeded RNG so simulations stay reproducible.
    """

    link: Link
    drop_probability: float = 0.0
    retry_timeout_s: float = 1e-4
    seed: int = 0
    max_attempts: int = 100
    _rng: np.random.Generator = field(init=False, repr=False)
    #: Delivery accounting for the resilience report.
    attempts: int = field(init=False, default=0)
    drops: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop_probability < 1.0):
            raise ValueError("drop_probability must be in [0, 1)")
        if self.retry_timeout_s < 0:
            raise ValueError("retry_timeout_s must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @property
    def kind(self) -> LinkKind:
        return self.link.kind

    def transfer_time(self, nbytes: float) -> float:
        """Time to deliver ``nbytes``, including seeded retransmissions."""
        base = self.link.transfer_time(nbytes)
        total = 0.0
        for _ in range(self.max_attempts):
            self.attempts += 1
            total += base
            if self._rng.random() >= self.drop_probability:
                return total
            self.drops += 1
            total += self.retry_timeout_s
        raise RuntimeError(
            f"message lost {self.max_attempts} times on {self.link.kind}"
        )

    def expected_transfer_time(self, nbytes: float) -> float:
        """Analytic mean delivery time: base/(1-p) plus timeout overhead."""
        p = self.drop_probability
        base = self.link.transfer_time(nbytes)
        return base / (1.0 - p) + self.retry_timeout_s * p / (1.0 - p)
