"""Interconnect topologies and the MSA network federation.

Each MSA module has its own fabric (fat-tree for the cluster/booster,
smaller trees for DAM) and the *network federation* bridges the module
fabrics (Fig. 1 of the paper).  Topologies are :mod:`networkx` graphs whose
edges carry :class:`~repro.simnet.link.Link` attributes, wrapped in a
:class:`Topology` that provides routing and path-cost queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

import networkx as nx

from repro.simnet.link import Link, LinkKind


@dataclass
class Topology:
    """A routed interconnect graph.

    Nodes are arbitrary hashables (compute node ids, switch ids); edges carry
    a ``link`` attribute.  Endpoint (non-switch) nodes carry ``terminal=True``.
    """

    graph: nx.Graph
    name: str = "topology"
    _path_cache: dict = field(default_factory=dict, repr=False)

    # -- construction helpers ---------------------------------------------
    def add_terminal(self, node: Hashable) -> None:
        self.graph.add_node(node, terminal=True)

    def add_switch(self, node: Hashable) -> None:
        self.graph.add_node(node, terminal=False)

    def connect(self, a: Hashable, b: Hashable, link: Link) -> None:
        self.graph.add_edge(a, b, link=link)
        self._path_cache.clear()

    # -- queries -----------------------------------------------------------
    @property
    def terminals(self) -> list:
        return [n for n, d in self.graph.nodes(data=True) if d.get("terminal", True)]

    @property
    def switches(self) -> list:
        return [n for n, d in self.graph.nodes(data=True) if not d.get("terminal", True)]

    def path(self, src: Hashable, dst: Hashable) -> list:
        """Latency-weighted shortest path (cached)."""
        key = (src, dst)
        if key not in self._path_cache:
            self._path_cache[key] = nx.shortest_path(
                self.graph, src, dst, weight=lambda u, v, d: d["link"].latency_s
            )
        return self._path_cache[key]

    def hop_count(self, src: Hashable, dst: Hashable) -> int:
        return len(self.path(src, dst)) - 1

    def path_latency(self, src: Hashable, dst: Hashable) -> float:
        """Sum of per-hop latencies along the route."""
        p = self.path(src, dst)
        return sum(self.graph.edges[u, v]["link"].latency_s for u, v in zip(p, p[1:]))

    def path_bandwidth(self, src: Hashable, dst: Hashable) -> float:
        """Bottleneck bandwidth along the route."""
        p = self.path(src, dst)
        if len(p) < 2:
            return float("inf")
        return min(self.graph.edges[u, v]["link"].bandwidth_Bps for u, v in zip(p, p[1:]))

    def transfer_time(self, src: Hashable, dst: Hashable, nbytes: float,
                      concurrent_flows: int = 1) -> float:
        """Store-and-forward pipeline approximation: Σα + n/min(β).

        ``concurrent_flows`` models congestion: flows sharing the route's
        bottleneck link divide its bandwidth (fair sharing) — how the
        federation behaves when many jobs stage data simultaneously.
        """
        if src == dst:
            return 0.0
        if concurrent_flows < 1:
            raise ValueError("concurrent_flows must be >= 1")
        bottleneck = self.path_bandwidth(src, dst) / concurrent_flows
        return self.path_latency(src, dst) + nbytes / bottleneck

    def bisection_links(self) -> int:
        """Number of edges crossing a (roughly) even terminal bipartition.

        A cheap proxy for bisection bandwidth used in topology sanity tests.
        """
        terminals = sorted(self.terminals, key=str)
        half = set(terminals[: len(terminals) // 2])
        return sum(
            1
            for u, v in self.graph.edges
            if (u in half) != (v in half)
        )


# ---------------------------------------------------------------------------
# topology factories
# ---------------------------------------------------------------------------

def fully_connected(n_nodes: int, kind: LinkKind, name: str = "full") -> Topology:
    """All-to-all direct links — the model for NVLink GPU meshes in a node."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    g = nx.Graph()
    topo = Topology(g, name=name)
    link = Link.of_kind(kind)
    for i in range(n_nodes):
        topo.add_terminal(("node", i))
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            topo.connect(("node", i), ("node", j), link)
    return topo


def fat_tree(
    n_nodes: int,
    kind: LinkKind,
    radix: int = 16,
    name: str = "fat-tree",
) -> Topology:
    """Two-level fat-tree: leaf switches of ``radix`` nodes under a spine.

    The JUWELS cluster and booster fabrics are InfiniBand fat-trees; two
    levels suffice for the node counts the experiments sweep, and the model
    only needs hop counts / bottleneck bandwidths to be right in shape.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if radix < 2:
        raise ValueError("radix must be >= 2")
    g = nx.Graph()
    topo = Topology(g, name=name)
    link = Link.of_kind(kind)
    n_leaves = (n_nodes + radix - 1) // radix
    topo.add_switch(("spine", 0))
    for leaf in range(n_leaves):
        topo.add_switch(("leaf", leaf))
        # Fat-tree property: uplink capacity matches downlink aggregate.
        uplink = Link(kind=kind, latency_s=link.latency_s,
                      bandwidth_Bps=link.bandwidth_Bps * radix)
        topo.connect(("leaf", leaf), ("spine", 0), uplink)
    for i in range(n_nodes):
        topo.add_terminal(("node", i))
        topo.connect(("node", i), ("leaf", i // radix), link)
    return topo


def torus_3d(dims: tuple[int, int, int], kind: LinkKind, name: str = "torus3d") -> Topology:
    """3-D torus — used for comparison studies of regular-communication codes."""
    dx, dy, dz = dims
    if min(dims) < 1:
        raise ValueError("all torus dimensions must be >= 1")
    g = nx.Graph()
    topo = Topology(g, name=name)
    link = Link.of_kind(kind)
    for x in range(dx):
        for y in range(dy):
            for z in range(dz):
                topo.add_terminal(("node", x, y, z))
    for x in range(dx):
        for y in range(dy):
            for z in range(dz):
                here = ("node", x, y, z)
                for nbr in (
                    ("node", (x + 1) % dx, y, z),
                    ("node", x, (y + 1) % dy, z),
                    ("node", x, y, (z + 1) % dz),
                ):
                    if nbr != here and not g.has_edge(here, nbr):
                        topo.connect(here, nbr, link)
    return topo


def dragonfly(
    n_groups: int,
    nodes_per_group: int,
    kind: LinkKind,
    name: str = "dragonfly",
) -> Topology:
    """Dragonfly: dense groups, all-to-all global links between groups."""
    if n_groups < 1 or nodes_per_group < 1:
        raise ValueError("groups and nodes per group must be >= 1")
    g = nx.Graph()
    topo = Topology(g, name=name)
    local = Link.of_kind(kind)
    global_link = Link(kind=kind, latency_s=local.latency_s * 2,
                       bandwidth_Bps=local.bandwidth_Bps)
    for grp in range(n_groups):
        topo.add_switch(("router", grp))
        for i in range(nodes_per_group):
            node = ("node", grp, i)
            topo.add_terminal(node)
            topo.connect(node, ("router", grp), local)
    for a in range(n_groups):
        for b in range(a + 1, n_groups):
            topo.connect(("router", a), ("router", b), global_link)
    return topo


def federated(
    modules: dict[str, Topology],
    federation_kind: LinkKind = LinkKind.FEDERATION,
    name: str = "msa-federation",
) -> Topology:
    """Join per-module fabrics through a federation switch (the MSA NF).

    Each module contributes its graph with nodes prefixed by module name; a
    central federation switch connects one gateway switch (or node) per
    module.  This reproduces Fig. 1's 'high-performance federated network
    connecting module-specific interconnects'.
    """
    if not modules:
        raise ValueError("need at least one module")
    g = nx.Graph()
    topo = Topology(g, name=name)
    fed_link = Link.of_kind(federation_kind)
    topo.add_switch(("federation", 0))
    for mod_name, mod_topo in modules.items():
        for node, data in mod_topo.graph.nodes(data=True):
            g.add_node((mod_name, node), **data)
        for u, v, data in mod_topo.graph.edges(data=True):
            g.add_edge((mod_name, u), (mod_name, v), **data)
        # Gateway: prefer a switch, fall back to the first terminal.
        switches = [n for n, d in mod_topo.graph.nodes(data=True) if not d.get("terminal", True)]
        gateway = switches[0] if switches else sorted(mod_topo.graph.nodes, key=str)[0]
        topo.connect((mod_name, gateway), ("federation", 0), fed_link)
    topo._path_cache.clear()
    return topo
