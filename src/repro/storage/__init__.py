"""Storage substrates of the MSA: SSSM parallel filesystem, NAM, tiers.

* :mod:`repro.storage.pfs` — a striped parallel filesystem (Lustre/GPFS
  class) with object storage targets, stripe placement and contention,
* :mod:`repro.storage.nam` — the Network Attached Memory prototype module:
  datasets shared over the fabric instead of duplicated per research group,
* :mod:`repro.storage.tiers` — the multi-tier memory/storage hierarchy of
  DAM nodes (DDR → HBM → NVM → PFS) with capacity-aware placement.
"""

from repro.storage.pfs import ParallelFileSystem, FileHandle, StripeLayout
from repro.storage.nam import NetworkAttachedMemory, DatasetSharingStudy
from repro.storage.tiers import MemoryTier, TieredStore, TierPlacement
from repro.storage.checkpoint import CheckpointManager, CheckpointError, state_nbytes

__all__ = [
    "ParallelFileSystem",
    "FileHandle",
    "StripeLayout",
    "NetworkAttachedMemory",
    "DatasetSharingStudy",
    "MemoryTier",
    "TieredStore",
    "TierPlacement",
    "CheckpointManager",
    "CheckpointError",
    "state_nbytes",
]
