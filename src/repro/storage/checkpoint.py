"""Checkpoint/restart over the NAM vs the parallel filesystem.

The NAM prototype's original mission (the paper's ref [12], Schmidt's
dissertation) is *accelerating checkpoint/restart application performance
... with network attached memory*: instead of all ranks funnelling their
state through the PFS, checkpoints stream into fabric-attached memory at
memory-class bandwidth, and restarts read them back without touching disk.

:class:`CheckpointManager` implements both paths over the existing storage
models and the DL framework's ``state_dict`` convention, so a real training
loop can checkpoint its model and the E10-adjacent bench can compare the
two paths' times at growing state sizes.

Resilience: every save appends a new **version** to the checkpoint's
lineage instead of overwriting, each carrying a checksum of the whole payload
plus per-shard (per-tensor) digests, and a checkpoint may be **replicated**
to both targets.  Restore paths verify integrity and degrade gracefully:

* :meth:`CheckpointManager.restore_with_fallback` walks a
  :class:`~repro.resilience.policy.CheckpointPolicy`'s restore order for
  the *newest* version, so a corrupt or missing NAM copy falls back to the
  PFS replica,
* :meth:`CheckpointManager.restore_latest_verified` additionally walks the
  lineage version-by-version (NAM→PFS within each version), so bit-rot on
  every copy of the newest checkpoint costs a bounded step rollback
  instead of the job,
* :meth:`CheckpointManager.scrub` verifies everything at rest, so rot on a
  version that is never restored is still *detected* — the accounting the
  SDC drill reconciles against.

Retention is a :class:`CheckpointRetention` policy (keep-last-K plus every
Nth step as a long-term "anchor"); GC runs after each save and never
deletes the newest verified version, whatever its age.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.storage.nam import NetworkAttachedMemory
from repro.storage.pfs import ParallelFileSystem

GiB = 1024 ** 3

_TARGETS = ("nam", "pfs")


class CheckpointError(RuntimeError):
    """Raised for missing, truncated or corrupt checkpoints."""


def state_nbytes(state: dict[str, np.ndarray]) -> int:
    """Payload size of a state dict."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def _wordsum(buf, base: int = 0) -> int:
    """IP-style 64-bit word-sum checksum of a byte buffer.

    NumPy sums the buffer as 64-bit words at memory bandwidth — about 4×
    faster than CRC32, which matters when every checkpoint byte is
    checksummed on write and again on every verified restore/scrub.  Any
    single flipped word changes the sum, which covers the bit-rot fault
    model; the tail (and a caller-supplied header seed) fold in via CRC32.
    """
    view = memoryview(buf)
    nwords = view.nbytes // 8
    total = base
    if nwords:
        words = np.frombuffer(view, dtype=np.uint64, count=nwords)
        total += int(words.sum(dtype=np.uint64))   # wraps mod 2**64
    tail = bytes(view[nwords * 8:])
    if tail:
        total += zlib.crc32(tail)
    return total & 0xFFFFFFFFFFFFFFFF


def payload_checksum(payload: bytes) -> int:
    """Checksum of a serialized checkpoint payload."""
    return _wordsum(payload)


def shard_digests(state: dict[str, np.ndarray]) -> tuple[tuple[str, int], ...]:
    """Per-shard digests of a state dict, in sorted shard order.

    Zero-copy word-sums of each tensor's buffer with the shard name,
    dtype and shape folded in, so a digest mismatch names the rotten
    tensor rather than just failing the whole checkpoint.
    """
    out = []
    for key in sorted(state):
        arr = np.asarray(state[key])
        header = f"{key}:{arr.dtype.str}:{arr.shape}".encode()
        buf = (arr.data if arr.flags.c_contiguous
               else memoryview(arr.tobytes()))
        out.append((key, _wordsum(buf, zlib.crc32(header))))
    return tuple(out)


@dataclass(frozen=True)
class CheckpointRetention:
    """Lineage retention: keep the last K versions plus step anchors.

    ``keep_last`` newest versions always survive GC; additionally, any
    version whose step is a multiple of ``anchor_every`` (when positive)
    is an *anchor* kept indefinitely — the coarse long-term history that
    lets a drill roll far back past a burst of rot.  Independently of
    both rules, GC never deletes the newest version that still verifies.
    """

    keep_last: int = 3
    anchor_every: int = 0          # 0 disables anchors

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if self.anchor_every < 0:
            raise ValueError("anchor_every must be >= 0")

    def is_anchor(self, step: int) -> bool:
        return self.anchor_every > 0 and step % self.anchor_every == 0


@dataclass
class CheckpointRecord:
    name: str
    step: int
    nbytes: int
    target: str                  # "nam" | "pfs"
    payload: bytes = field(repr=False, default=b"")
    checksum: int = 0            # word-sum of the payload at write time
    version: int = 0             # position in the lineage (monotonic)
    shards: tuple[tuple[str, int], ...] = ()   # per-shard digests
    quarantined: bool = False    # verification already caught this copy

    @property
    def key(self) -> str:
        """Backend key: versioned so lineage members coexist."""
        return f"ckpt:{self.name}@{self.version}"

    @property
    def path(self) -> str:
        return f"/ckpt/{self.name}@{self.version}"

    def verify(self) -> None:
        """Integrity check: truncation changes the length, rot the checksum."""
        if len(self.payload) != self.nbytes:
            raise CheckpointError(
                f"checkpoint {self.name!r} v{self.version} on {self.target} "
                f"truncated: {len(self.payload)} of {self.nbytes} bytes")
        if payload_checksum(self.payload) != self.checksum:
            raise CheckpointError(
                f"checkpoint {self.name!r} v{self.version} on {self.target} "
                "corrupt (checksum mismatch)")

    def corrupt_shards(self, state: dict[str, np.ndarray]) -> tuple[str, ...]:
        """Names of shards whose digest no longer matches (diagnostics)."""
        fresh = dict(shard_digests(state))
        stored = dict(self.shards)
        return tuple(k for k in sorted(stored)
                     if fresh.get(k) != stored[k])


@dataclass(frozen=True)
class VerifiedRestore:
    """The result of a lineage-walking restore."""

    state: dict[str, np.ndarray]
    step: int
    read_time_s: float
    target: str
    version: int
    rollback_versions: int       # versions skipped before this one loaded


class CheckpointManager:
    """Write/read training checkpoints to the NAM or the PFS.

    >>> mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=64))
    >>> t_write = mgr.save("resnet", step=100, state=model.state_dict())
    >>> state, t_read = mgr.restore("resnet")
    """

    def __init__(self, nam: Optional[NetworkAttachedMemory] = None,
                 pfs: Optional[ParallelFileSystem] = None,
                 prefer: str = "nam",
                 retention: Optional[CheckpointRetention] = None) -> None:
        if nam is None and pfs is None:
            raise ValueError("need at least one storage target")
        if prefer not in _TARGETS:
            raise ValueError("prefer must be 'nam' or 'pfs'")
        self.nam = nam
        self.pfs = pfs
        self.prefer = prefer
        self.retention = retention or CheckpointRetention()
        #: Lineage per (name, target): records in ascending version order.
        self._versions: dict[tuple[str, str], list[CheckpointRecord]] = {}
        self._next_version: dict[str, int] = {}

    def _backend(self, target: str):
        if target == "nam":
            return self.nam
        if target == "pfs":
            return self.pfs
        raise ValueError(f"unknown target {target!r}")

    # -- lineage accessors -------------------------------------------------
    def _lineage(self, name: str, target: str) -> list[CheckpointRecord]:
        return self._versions.get((name, target), [])

    def _newest(self, name: str, target: str) -> Optional[CheckpointRecord]:
        lineage = self._lineage(name, target)
        return lineage[-1] if lineage else None

    def versions(self, name: str, target: Optional[str] = None
                 ) -> tuple[CheckpointRecord, ...]:
        """All lineage records of ``name`` (ascending version order)."""
        targets = (target,) if target is not None else _TARGETS
        records = [r for t in targets for r in self._lineage(name, t)]
        return tuple(sorted(records, key=lambda r: (r.version, r.target)))

    # -- write -----------------------------------------------------------
    def _write_one(self, record: CheckpointRecord) -> float:
        if record.target == "nam":
            if self.nam is None:
                raise CheckpointError("no NAM attached")
            if self.nam.contains(record.key):
                self.nam.evict(record.key)   # overwrite semantics
            t = self.nam.stage(record.key, record.nbytes)
        else:
            if self.pfs is None:
                raise CheckpointError("no PFS attached")
            if record.path in self.pfs.files:
                self.pfs.unlink(record.path)
            handle = self.pfs.create(record.path, record.nbytes)
            t = self.pfs.write_time(handle)
        self._versions.setdefault((record.name, record.target),
                                  []).append(record)
        from repro import telemetry

        registry = telemetry.get_registry()
        registry.counter("checkpoint_writes_total",
                         target=record.target).inc()
        registry.counter("checkpoint_bytes_total", direction="write",
                         target=record.target).inc(record.nbytes)
        registry.histogram("checkpoint_write_seconds",
                           target=record.target).observe(t)
        return t

    def save(self, name: str, step: int, state: dict[str, np.ndarray],
             target: Optional[str] = None, replicate: bool = False) -> float:
        """Persist a new lineage version; returns the modelled write time.

        With ``replicate=True`` the payload is written to *both* attached
        targets (the belt-and-braces mode fault-tolerant runs use) and the
        slower write time is returned — replicas are written concurrently.
        Retention GC runs on every written target afterwards.
        """
        target = target or self.prefer
        if target not in _TARGETS:
            raise ValueError(f"unknown target {target!r}")
        if replicate and (self.nam is None or self.pfs is None):
            raise CheckpointError("replication needs both NAM and PFS")
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        version = self._next_version.get(name, 0)
        self._next_version[name] = version + 1
        digests = shard_digests(state)
        targets = _TARGETS if replicate else (target,)
        t = max(self._write_one(CheckpointRecord(
            name=name, step=step, nbytes=len(payload), target=tgt,
            payload=payload, checksum=payload_checksum(payload),
            version=version,
            shards=digests)) for tgt in targets)
        for tgt in targets:
            self.gc(name, tgt)
        return t

    # -- retention GC ------------------------------------------------------
    def gc(self, name: str, target: Optional[str] = None) -> int:
        """Apply the retention policy to ``name``'s lineage; returns the
        number of versions deleted.

        Survivors: the newest ``keep_last`` versions, every anchor step,
        and — unconditionally — the newest version that still verifies
        (so a burst of rot can never leave GC holding only bad copies).
        """
        deleted = 0
        for tgt in ((target,) if target is not None else _TARGETS):
            lineage = self._lineage(name, tgt)
            if not lineage:
                continue
            keep: set[int] = {r.version
                              for r in lineage[-self.retention.keep_last:]}
            keep.update(r.version for r in lineage
                        if self.retention.is_anchor(r.step))
            for record in reversed(lineage):
                try:
                    record.verify()
                except CheckpointError:
                    self._mark_corrupt(record)
                    continue
                keep.add(record.version)    # newest verified: never deleted
                break
            doomed = [r for r in lineage if r.version not in keep]
            for record in doomed:
                self._evict(record)
                lineage.remove(record)
                deleted += 1
        if deleted:
            from repro import telemetry

            telemetry.get_registry().counter(
                "checkpoint_gc_deleted_total").inc(deleted)
        return deleted

    def _evict(self, record: CheckpointRecord) -> None:
        if record.target == "nam" and self.nam is not None:
            if self.nam.contains(record.key):
                self.nam.evict(record.key)
        elif record.target == "pfs" and self.pfs is not None:
            if record.path in self.pfs.files:
                self.pfs.unlink(record.path)

    # -- read --------------------------------------------------------------
    def _mark_corrupt(self, record: CheckpointRecord) -> None:
        """Count a failed verification as a *detected* corruption, once."""
        if record.quarantined:
            return
        record.quarantined = True
        from repro import telemetry

        telemetry.get_registry().counter(
            "integrity_corruptions_detected", kind="checkpoint-rot").inc()

    def _restore_one(self, record: CheckpointRecord
                     ) -> tuple[dict[str, np.ndarray], int, float]:
        try:
            record.verify()
        except CheckpointError:
            self._mark_corrupt(record)
            raise
        if record.target == "nam":
            t = self.nam.read_time(record.key)
        else:
            handle = self.pfs.open(record.path)
            t = self.pfs.read_time(handle)
        try:
            state = pickle.loads(record.payload)
        except Exception as exc:  # corrupt but checksum-consistent payloads
            self._mark_corrupt(record)
            raise CheckpointError(
                f"checkpoint {record.name!r} on {record.target} "
                f"unreadable: {exc}") from exc
        bad_shards = record.corrupt_shards(state)
        if bad_shards:
            self._mark_corrupt(record)
            raise CheckpointError(
                f"checkpoint {record.name!r} v{record.version} on "
                f"{record.target}: shard digest mismatch in "
                f"{list(bad_shards)}")
        from repro import telemetry

        registry = telemetry.get_registry()
        registry.counter("checkpoint_restores_total",
                         target=record.target).inc()
        registry.counter("checkpoint_bytes_total", direction="read",
                         target=record.target).inc(record.nbytes)
        registry.histogram("checkpoint_restore_seconds",
                           target=record.target).observe(t)
        return state, record.step, t

    def restore(self, name: str, target: Optional[str] = None
                ) -> tuple[dict[str, np.ndarray], int, float]:
        """Returns (state, step, modelled read time) of the newest version.

        Without ``target`` the preferred copy is read if present, else the
        other one.  Integrity is always verified; a truncated or
        bit-flipped payload raises :class:`CheckpointError`.
        """
        if target is not None:
            record = self._newest(name, target)
            if record is None:
                raise CheckpointError(
                    f"no checkpoint named {name!r} on {target}")
            return self._restore_one(record)
        order = (self.prefer,) + tuple(t for t in _TARGETS if t != self.prefer)
        for t in order:
            record = self._newest(name, t)
            if record is not None:
                return self._restore_one(record)
        raise CheckpointError(f"no checkpoint named {name!r}")

    def restore_with_fallback(self, name: str, policy: Any
                              ) -> tuple[dict[str, np.ndarray], int, float, str]:
        """Walk ``policy.restore_order()`` until a copy restores cleanly.

        Returns ``(state, step, read time, target restored from)``.  Only
        the newest version per target is considered — the original
        replica-fallback behaviour; use :meth:`restore_latest_verified`
        for the full lineage walk.
        """
        errors: list[str] = []
        for target in policy.restore_order():
            record = self._newest(name, target)
            if record is None:
                errors.append(f"{target}: no copy")
                continue
            try:
                state, step, t = self._restore_one(record)
                return state, step, t, target
            except CheckpointError as exc:
                errors.append(f"{target}: {exc}")
        raise CheckpointError(
            f"no restorable copy of {name!r} ({'; '.join(errors)})")

    def restore_latest_verified(self, name: str, policy: Any,
                                max_rollback: Optional[int] = None
                                ) -> VerifiedRestore:
        """Newest checkpoint that verifies, walking the lineage backwards.

        Versions are tried newest-first; within a version, targets follow
        ``policy.restore_order()`` (so NAM rot falls back to the PFS
        replica *before* rolling back a step).  Every failed candidate is
        quarantined and counted as a detected corruption.  With
        ``max_rollback`` the walk aborts once it would skip more than that
        many versions — the bounded-rollback guarantee the drill asserts.
        """
        targets = tuple(policy.restore_order())
        by_version: dict[int, list[CheckpointRecord]] = {}
        for target in targets:
            for record in self._lineage(name, target):
                by_version.setdefault(record.version, []).append(record)
        if not by_version:
            raise CheckpointError(f"no checkpoint named {name!r}")
        errors: list[str] = []
        for depth, version in enumerate(sorted(by_version, reverse=True)):
            if max_rollback is not None and depth > max_rollback:
                raise CheckpointError(
                    f"no verified checkpoint of {name!r} within "
                    f"{max_rollback} versions ({'; '.join(errors)})")
            candidates = sorted(by_version[version],
                                key=lambda r: targets.index(r.target))
            for record in candidates:
                try:
                    state, step, t = self._restore_one(record)
                    return VerifiedRestore(
                        state=state, step=step, read_time_s=t,
                        target=record.target, version=version,
                        rollback_versions=depth)
                except CheckpointError as exc:
                    errors.append(str(exc))
        raise CheckpointError(
            f"no restorable version of {name!r} ({'; '.join(errors)})")

    # -- at-rest verification ---------------------------------------------
    def scrub(self, name: Optional[str] = None) -> dict[str, int]:
        """Verify every stored record (of ``name``, or all) at rest.

        Corrupt copies are quarantined and counted as detected — this is
        how rot on a never-restored version still reconciles to
        ``integrity_undetected == 0``.  Returns ``{"checked": …,
        "corrupt": …}`` where ``corrupt`` counts *newly* caught records.
        """
        checked = corrupt = 0
        for (n, _t), lineage in sorted(self._versions.items()):
            if name is not None and n != name:
                continue
            for record in lineage:
                checked += 1
                already = record.quarantined
                try:
                    record.verify()
                except CheckpointError:
                    self._mark_corrupt(record)
                    if not already:
                        corrupt += 1
        return {"checked": checked, "corrupt": corrupt}

    def exists(self, name: str, target: Optional[str] = None) -> bool:
        if target is not None:
            return bool(self._lineage(name, target))
        return any(self._lineage(name, t) for t in _TARGETS)

    def latest_step(self, name: str) -> int:
        """Newest step recorded under ``name`` across targets."""
        steps = [r.step for t in _TARGETS for r in self._lineage(name, t)]
        if not steps:
            raise CheckpointError(f"no checkpoint named {name!r}")
        return max(steps)

    def drop(self, name: str, target: Optional[str] = None) -> None:
        """Remove every version of ``name`` (all targets unless one given)."""
        targets = (target,) if target is not None else _TARGETS
        dropped = False
        for t in targets:
            lineage = self._versions.pop((name, t), None)
            if not lineage:
                continue
            dropped = True
            for record in lineage:
                self._evict(record)
        if not dropped:
            where = f" on {target}" if target is not None else ""
            raise CheckpointError(f"no checkpoint named {name!r}{where}")

    # -- fault-injection hook ------------------------------------------------
    def corrupt(self, name: str, target: Optional[str] = None,
                truncate: bool = False, version: Optional[int] = None) -> None:
        """Damage a stored copy (the CHECKPOINT_ROT injection hook).

        ``truncate=True`` chops the payload in half (a partial write);
        otherwise a byte is flipped in place (bit-rot).  The newest
        version is hit unless ``version`` picks an older one.  Each
        injection on a still-intact copy increments
        ``integrity_corruptions_injected`` so drills can reconcile.
        """
        target = target or self.prefer
        if version is None:
            record = self._newest(name, target)
        else:
            record = next((r for r in self._lineage(name, target)
                           if r.version == version), None)
        if record is None:
            raise CheckpointError(f"no checkpoint named {name!r} on {target}")
        try:
            record.verify()
            intact = True
        except CheckpointError:
            intact = False   # don't double-count rot on an already-bad copy
        if truncate:
            record.payload = record.payload[: len(record.payload) // 2]
        else:
            buf = bytearray(record.payload)
            buf[len(buf) // 2] ^= 0xFF
            record.payload = bytes(buf)
        if intact:
            from repro import telemetry

            telemetry.get_registry().counter(
                "integrity_corruptions_injected", kind="checkpoint-rot").inc()

    # -- the ref [12] comparison --------------------------------------------
    def path_comparison(self, nbytes: int,
                        concurrent_writers: int = 1) -> dict[str, float]:
        """Modelled checkpoint write time via each attached path."""
        out: dict[str, float] = {}
        if self.nam is not None:
            out["nam"] = nbytes / self.nam.write_Bps
        if self.pfs is not None:
            # PFS path: striped write, bandwidth shared among writers.
            per_target = nbytes / max(self.pfs.default_stripe_count, 1)
            effective = self.pfs.target_Bps / max(concurrent_writers, 1)
            out["pfs"] = per_target / effective * 1.25
        return out
