"""Checkpoint/restart over the NAM vs the parallel filesystem.

The NAM prototype's original mission (the paper's ref [12], Schmidt's
dissertation) is *accelerating checkpoint/restart application performance
... with network attached memory*: instead of all ranks funnelling their
state through the PFS, checkpoints stream into fabric-attached memory at
memory-class bandwidth, and restarts read them back without touching disk.

:class:`CheckpointManager` implements both paths over the existing storage
models and the DL framework's ``state_dict`` convention, so a real training
loop can checkpoint its model and the E10-adjacent bench can compare the
two paths' times at growing state sizes.

Resilience additions: every payload carries a CRC32 that is verified on
restore, a checkpoint may be **replicated** to both targets, and
:meth:`CheckpointManager.restore_with_fallback` walks a
:class:`~repro.resilience.policy.CheckpointPolicy`'s restore order so a
corrupt or missing NAM copy falls back to the PFS replica (or vice versa).
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.storage.nam import NetworkAttachedMemory
from repro.storage.pfs import ParallelFileSystem

GiB = 1024 ** 3

_TARGETS = ("nam", "pfs")


class CheckpointError(RuntimeError):
    """Raised for missing, truncated or corrupt checkpoints."""


def state_nbytes(state: dict[str, np.ndarray]) -> int:
    """Payload size of a state dict."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


@dataclass
class CheckpointRecord:
    name: str
    step: int
    nbytes: int
    target: str                  # "nam" | "pfs"
    payload: bytes = field(repr=False, default=b"")
    checksum: int = 0            # CRC32 of the payload at write time

    def verify(self) -> None:
        """Integrity check: truncation changes the length, bit-rot the CRC."""
        if len(self.payload) != self.nbytes:
            raise CheckpointError(
                f"checkpoint {self.name!r} on {self.target} truncated: "
                f"{len(self.payload)} of {self.nbytes} bytes")
        if zlib.crc32(self.payload) != self.checksum:
            raise CheckpointError(
                f"checkpoint {self.name!r} on {self.target} corrupt "
                "(checksum mismatch)")


class CheckpointManager:
    """Write/read training checkpoints to the NAM or the PFS.

    >>> mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=64))
    >>> t_write = mgr.save("resnet", step=100, state=model.state_dict())
    >>> state, t_read = mgr.restore("resnet")
    """

    def __init__(self, nam: Optional[NetworkAttachedMemory] = None,
                 pfs: Optional[ParallelFileSystem] = None,
                 prefer: str = "nam") -> None:
        if nam is None and pfs is None:
            raise ValueError("need at least one storage target")
        if prefer not in _TARGETS:
            raise ValueError("prefer must be 'nam' or 'pfs'")
        self.nam = nam
        self.pfs = pfs
        self.prefer = prefer
        self._records: dict[tuple[str, str], CheckpointRecord] = {}

    def _backend(self, target: str):
        if target == "nam":
            return self.nam
        if target == "pfs":
            return self.pfs
        raise ValueError(f"unknown target {target!r}")

    # -- write -----------------------------------------------------------
    def _write_one(self, name: str, step: int, payload: bytes,
                   target: str) -> float:
        nbytes = len(payload)
        if target == "nam":
            if self.nam is None:
                raise CheckpointError("no NAM attached")
            key = f"ckpt:{name}"
            if self.nam.contains(key):
                self.nam.evict(key)   # overwrite semantics
            t = self.nam.stage(key, nbytes)
        else:
            if self.pfs is None:
                raise CheckpointError("no PFS attached")
            path = f"/ckpt/{name}"
            if path in self.pfs.files:
                self.pfs.unlink(path)
            handle = self.pfs.create(path, nbytes)
            t = self.pfs.write_time(handle)
        self._records[(name, target)] = CheckpointRecord(
            name=name, step=step, nbytes=nbytes, target=target,
            payload=payload, checksum=zlib.crc32(payload))
        from repro import telemetry

        registry = telemetry.get_registry()
        registry.counter("checkpoint_writes_total", target=target).inc()
        registry.counter("checkpoint_bytes_total", direction="write",
                         target=target).inc(nbytes)
        registry.histogram("checkpoint_write_seconds",
                           target=target).observe(t)
        return t

    def save(self, name: str, step: int, state: dict[str, np.ndarray],
             target: Optional[str] = None, replicate: bool = False) -> float:
        """Persist a checkpoint; returns the modelled write time (s).

        With ``replicate=True`` the payload is written to *both* attached
        targets (the belt-and-braces mode fault-tolerant runs use) and the
        slower write time is returned — replicas are written concurrently.
        """
        target = target or self.prefer
        if target not in _TARGETS:
            raise ValueError(f"unknown target {target!r}")
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        if replicate:
            if self.nam is None or self.pfs is None:
                raise CheckpointError("replication needs both NAM and PFS")
            return max(self._write_one(name, step, payload, t)
                       for t in _TARGETS)
        return self._write_one(name, step, payload, target)

    # -- read --------------------------------------------------------------
    def _restore_one(self, record: CheckpointRecord
                     ) -> tuple[dict[str, np.ndarray], int, float]:
        record.verify()
        if record.target == "nam":
            t = self.nam.read_time(f"ckpt:{record.name}")
        else:
            handle = self.pfs.open(f"/ckpt/{record.name}")
            t = self.pfs.read_time(handle)
        try:
            state = pickle.loads(record.payload)
        except Exception as exc:  # corrupt but checksum-consistent payloads
            raise CheckpointError(
                f"checkpoint {record.name!r} on {record.target} "
                f"unreadable: {exc}") from exc
        from repro import telemetry

        registry = telemetry.get_registry()
        registry.counter("checkpoint_restores_total",
                         target=record.target).inc()
        registry.counter("checkpoint_bytes_total", direction="read",
                         target=record.target).inc(record.nbytes)
        registry.histogram("checkpoint_restore_seconds",
                           target=record.target).observe(t)
        return state, record.step, t

    def restore(self, name: str, target: Optional[str] = None
                ) -> tuple[dict[str, np.ndarray], int, float]:
        """Returns (state, step, modelled read time).

        Without ``target`` the preferred copy is read if present, else the
        other one (matching the pre-replication behaviour of one record per
        name).  Integrity is always verified; a truncated or bit-flipped
        payload raises :class:`CheckpointError`.
        """
        if target is not None:
            record = self._records.get((name, target))
            if record is None:
                raise CheckpointError(
                    f"no checkpoint named {name!r} on {target}")
            return self._restore_one(record)
        order = (self.prefer,) + tuple(t for t in _TARGETS if t != self.prefer)
        for t in order:
            record = self._records.get((name, t))
            if record is not None:
                return self._restore_one(record)
        raise CheckpointError(f"no checkpoint named {name!r}")

    def restore_with_fallback(self, name: str, policy: Any
                              ) -> tuple[dict[str, np.ndarray], int, float, str]:
        """Walk ``policy.restore_order()`` until a copy restores cleanly.

        Returns ``(state, step, read time, target restored from)``.  A
        missing or corrupt copy on the preferred target falls through to
        the secondary when the policy allows fallback; when every candidate
        fails the last error propagates wrapped in a summary.
        """
        errors: list[str] = []
        for target in policy.restore_order():
            record = self._records.get((name, target))
            if record is None:
                errors.append(f"{target}: no copy")
                continue
            try:
                state, step, t = self._restore_one(record)
                return state, step, t, target
            except CheckpointError as exc:
                errors.append(f"{target}: {exc}")
        raise CheckpointError(
            f"no restorable copy of {name!r} ({'; '.join(errors)})")

    def exists(self, name: str, target: Optional[str] = None) -> bool:
        if target is not None:
            return (name, target) in self._records
        return any((name, t) in self._records for t in _TARGETS)

    def latest_step(self, name: str) -> int:
        """Newest step recorded under ``name`` across targets."""
        steps = [r.step for (n, _), r in self._records.items() if n == name]
        if not steps:
            raise CheckpointError(f"no checkpoint named {name!r}")
        return max(steps)

    def drop(self, name: str, target: Optional[str] = None) -> None:
        """Remove copies of ``name`` (all targets unless one is named)."""
        targets = (target,) if target is not None else _TARGETS
        dropped = False
        for t in targets:
            record = self._records.pop((name, t), None)
            if record is None:
                continue
            dropped = True
            if t == "nam" and self.nam is not None:
                self.nam.evict(f"ckpt:{name}")
            elif t == "pfs" and self.pfs is not None:
                self.pfs.unlink(f"/ckpt/{name}")
        if not dropped:
            where = f" on {target}" if target is not None else ""
            raise CheckpointError(f"no checkpoint named {name!r}{where}")

    # -- fault-injection hook ------------------------------------------------
    def corrupt(self, name: str, target: Optional[str] = None,
                truncate: bool = False) -> None:
        """Damage a stored copy (testing hook for recovery drills).

        ``truncate=True`` chops the payload in half (a partial write);
        otherwise a byte is flipped in place (bit-rot).  Either way the
        next :meth:`restore` of this copy raises :class:`CheckpointError`.
        """
        target = target or self.prefer
        record = self._records.get((name, target))
        if record is None:
            raise CheckpointError(f"no checkpoint named {name!r} on {target}")
        if truncate:
            record.payload = record.payload[: len(record.payload) // 2]
        else:
            buf = bytearray(record.payload)
            buf[len(buf) // 2] ^= 0xFF
            record.payload = bytes(buf)

    # -- the ref [12] comparison --------------------------------------------
    def path_comparison(self, nbytes: int,
                        concurrent_writers: int = 1) -> dict[str, float]:
        """Modelled checkpoint write time via each attached path."""
        out: dict[str, float] = {}
        if self.nam is not None:
            out["nam"] = nbytes / self.nam.write_Bps
        if self.pfs is not None:
            # PFS path: striped write, bandwidth shared among writers.
            per_target = nbytes / max(self.pfs.default_stripe_count, 1)
            effective = self.pfs.target_Bps / max(concurrent_writers, 1)
            out["pfs"] = per_target / effective * 1.25
        return out
