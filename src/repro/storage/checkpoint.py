"""Checkpoint/restart over the NAM vs the parallel filesystem.

The NAM prototype's original mission (the paper's ref [12], Schmidt's
dissertation) is *accelerating checkpoint/restart application performance
... with network attached memory*: instead of all ranks funnelling their
state through the PFS, checkpoints stream into fabric-attached memory at
memory-class bandwidth, and restarts read them back without touching disk.

:class:`CheckpointManager` implements both paths over the existing storage
models and the DL framework's ``state_dict`` convention, so a real training
loop can checkpoint its model and the E10-adjacent bench can compare the
two paths' times at growing state sizes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.storage.nam import NetworkAttachedMemory
from repro.storage.pfs import ParallelFileSystem

GiB = 1024 ** 3


class CheckpointError(RuntimeError):
    """Raised for missing or corrupt checkpoints."""


def state_nbytes(state: dict[str, np.ndarray]) -> int:
    """Payload size of a state dict."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


@dataclass
class CheckpointRecord:
    name: str
    step: int
    nbytes: int
    target: str                  # "nam" | "pfs"
    payload: bytes = field(repr=False, default=b"")


class CheckpointManager:
    """Write/read training checkpoints to the NAM or the PFS.

    >>> mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=64))
    >>> t_write = mgr.save("resnet", step=100, state=model.state_dict())
    >>> state, t_read = mgr.restore("resnet")
    """

    def __init__(self, nam: Optional[NetworkAttachedMemory] = None,
                 pfs: Optional[ParallelFileSystem] = None,
                 prefer: str = "nam") -> None:
        if nam is None and pfs is None:
            raise ValueError("need at least one storage target")
        if prefer not in ("nam", "pfs"):
            raise ValueError("prefer must be 'nam' or 'pfs'")
        self.nam = nam
        self.pfs = pfs
        self.prefer = prefer
        self._records: dict[str, CheckpointRecord] = {}

    # -- write -----------------------------------------------------------
    def save(self, name: str, step: int, state: dict[str, np.ndarray],
             target: Optional[str] = None) -> float:
        """Persist a checkpoint; returns the modelled write time (s)."""
        target = target or self.prefer
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(payload)
        if target == "nam":
            if self.nam is None:
                raise CheckpointError("no NAM attached")
            key = f"ckpt:{name}"
            if self.nam.contains(key):
                self.nam.evict(key)   # overwrite semantics
            t = self.nam.stage(key, nbytes)
        elif target == "pfs":
            if self.pfs is None:
                raise CheckpointError("no PFS attached")
            path = f"/ckpt/{name}"
            if path in self.pfs.files:
                self.pfs.unlink(path)
            handle = self.pfs.create(path, nbytes)
            t = self.pfs.write_time(handle)
        else:
            raise ValueError(f"unknown target {target!r}")
        self._records[name] = CheckpointRecord(
            name=name, step=step, nbytes=nbytes, target=target,
            payload=payload)
        return t

    # -- read --------------------------------------------------------------
    def restore(self, name: str) -> tuple[dict[str, np.ndarray], int, float]:
        """Returns (state, step, modelled read time)."""
        record = self._records.get(name)
        if record is None:
            raise CheckpointError(f"no checkpoint named {name!r}")
        if record.target == "nam":
            t = self.nam.read_time(f"ckpt:{name}")
        else:
            handle = self.pfs.open(f"/ckpt/{name}")
            t = self.pfs.read_time(handle)
        state = pickle.loads(record.payload)
        return state, record.step, t

    def exists(self, name: str) -> bool:
        return name in self._records

    def drop(self, name: str) -> None:
        record = self._records.pop(name, None)
        if record is None:
            raise CheckpointError(f"no checkpoint named {name!r}")
        if record.target == "nam" and self.nam is not None:
            self.nam.evict(f"ckpt:{name}")
        elif record.target == "pfs" and self.pfs is not None:
            self.pfs.unlink(f"/ckpt/{name}")

    # -- the ref [12] comparison --------------------------------------------
    def path_comparison(self, nbytes: int,
                        concurrent_writers: int = 1) -> dict[str, float]:
        """Modelled checkpoint write time via each attached path."""
        out: dict[str, float] = {}
        if self.nam is not None:
            out["nam"] = nbytes / self.nam.write_Bps
        if self.pfs is not None:
            # PFS path: striped write, bandwidth shared among writers.
            per_target = nbytes / max(self.pfs.default_stripe_count, 1)
            effective = self.pfs.target_Bps / max(concurrent_writers, 1)
            out["pfs"] = per_target / effective * 1.25
        return out
