"""Network Attached Memory (NAM) — shared dataset staging.

The paper (Sec. II-A): the NAM "enables setups for machine learning and
sharing datasets over the network instead of duplicate downloads of datasets
by individual research group members".  The NAM device holds datasets in
fabric-attached memory; any node reads them at memory-class bandwidth with
no per-group copies.

:class:`DatasetSharingStudy` quantifies the E10 experiment: N group members
each needing a dataset either (a) download it to node-local storage
individually (baseline) or (b) stage it once into the NAM and read shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simnet.link import Link, LinkKind

GiB = 1024 ** 3


@dataclass
class _Resident:
    name: str
    size_bytes: int
    readers: int = 0


class NetworkAttachedMemory:
    """Fabric-attached shared memory for datasets."""

    def __init__(
        self,
        capacity_GB: float = 1024.0,
        read_GBps: float = 10.0,
        write_GBps: float = 8.0,
        fabric: LinkKind = LinkKind.EXTOLL,
    ) -> None:
        self.capacity_bytes = int(capacity_GB * GiB)
        self.read_Bps = read_GBps * 1e9
        self.write_Bps = write_GBps * 1e9
        self.fabric_link = Link.of_kind(fabric)
        self._resident: dict[str, _Resident] = {}

    @property
    def used_bytes(self) -> int:
        return sum(r.size_bytes for r in self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def stage(self, name: str, size_bytes: int) -> float:
        """Load a dataset into the NAM once; returns the staging time."""
        if name in self._resident:
            raise FileExistsError(f"dataset {name!r} already staged")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if size_bytes > self.free_bytes:
            raise MemoryError(
                f"NAM full: need {size_bytes}, free {self.free_bytes}"
            )
        self._resident[name] = _Resident(name=name, size_bytes=size_bytes)
        return size_bytes / self.write_Bps

    def evict(self, name: str) -> None:
        if name not in self._resident:
            raise FileNotFoundError(name)
        del self._resident[name]

    def contains(self, name: str) -> bool:
        return name in self._resident

    def read_time(self, name: str, concurrent_readers: int = 1) -> float:
        """One client's read of the whole dataset, sharing NAM bandwidth."""
        try:
            res = self._resident[name]
        except KeyError:
            raise FileNotFoundError(name) from None
        res.readers += concurrent_readers
        effective = self.read_Bps / max(concurrent_readers, 1)
        return self.fabric_link.latency_s + res.size_bytes / effective


@dataclass(frozen=True)
class DatasetSharingStudy:
    """E10: NAM sharing vs per-member duplicate downloads.

    ``download_Bps`` is the external (archive → centre) bandwidth each
    duplicate download is bound by; NAM readers stream at fabric speed.
    """

    dataset_bytes: int
    n_members: int
    download_Bps: float = 0.25e9          # 2 Gb/s external archive link
    nam: Optional[NetworkAttachedMemory] = None

    def baseline_duplicate_downloads(self) -> dict[str, float]:
        """Every member downloads their own copy (paper's 'before' case)."""
        per_member = self.dataset_bytes / self.download_Bps
        return {
            "total_time_s": per_member * self.n_members,   # archive serialises
            "wall_time_s": per_member * self.n_members,
            "external_traffic_bytes": float(self.dataset_bytes * self.n_members),
            "copies_stored": float(self.n_members),
        }

    def nam_shared(self) -> dict[str, float]:
        """Stage once into the NAM, all members read shared."""
        nam = self.nam or NetworkAttachedMemory(
            capacity_GB=self.dataset_bytes / GiB * 1.5 + 1.0
        )
        download = self.dataset_bytes / self.download_Bps
        staging = nam.stage("shared-dataset", self.dataset_bytes)
        read = nam.read_time("shared-dataset", concurrent_readers=self.n_members)
        return {
            "total_time_s": download + staging + read,
            "wall_time_s": download + staging + read,
            "external_traffic_bytes": float(self.dataset_bytes),
            "copies_stored": 1.0,
        }

    def speedup(self) -> float:
        return (
            self.baseline_duplicate_downloads()["wall_time_s"]
            / self.nam_shared()["wall_time_s"]
        )

    def traffic_reduction(self) -> float:
        return (
            self.baseline_duplicate_downloads()["external_traffic_bytes"]
            / self.nam_shared()["external_traffic_bytes"]
        )
