"""Striped parallel filesystem — the SSSM's Lustre/GPFS model.

Files are striped round-robin over object storage targets (OSTs) in
fixed-size stripes.  Read/write time follows from how many OSTs a request
touches and how loaded each is: a wide stripe spreads a large sequential
read over many targets (the BigEarthNet/COVIDx staging pattern of the case
studies), while a stripe count of 1 serialises on one OST.

The model is capacity- and contention-aware but not byte-accurate: it
answers "how long does this I/O take and which targets does it hit", which
is what the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.resilience.detect import ComponentHealth

GiB = 1024 ** 3
MiB = 1024 ** 2


@dataclass(frozen=True)
class StripeLayout:
    """Lustre-style striping parameters for one file."""

    stripe_count: int
    stripe_bytes: int
    first_target: int

    def __post_init__(self) -> None:
        if self.stripe_count < 1:
            raise ValueError("stripe_count must be >= 1")
        if self.stripe_bytes < 1:
            raise ValueError("stripe_bytes must be >= 1")

    def targets_for(self, offset: int, length: int, n_targets: int) -> list[int]:
        """OST indices touched by a byte range."""
        if length <= 0:
            return []
        first_stripe = offset // self.stripe_bytes
        last_stripe = (offset + length - 1) // self.stripe_bytes
        n_stripes = last_stripe - first_stripe + 1
        hit = min(n_stripes, self.stripe_count)
        return [
            (self.first_target + (first_stripe + i) % self.stripe_count) % n_targets
            for i in range(hit)
        ]


@dataclass
class FileHandle:
    """A file resident in the PFS."""

    path: str
    size_bytes: int
    layout: StripeLayout


class ParallelFileSystem:
    """A pool of OSTs serving striped files.

    >>> pfs = ParallelFileSystem("lustre", n_targets=8, target_GBps=5.0)
    >>> f = pfs.create("/data/bigearthnet.tar", 100 * GiB, stripe_count=8)
    >>> pfs.read_time(f) < pfs.read_time(pfs.create("/narrow", 100 * GiB, stripe_count=1))
    True
    """

    def __init__(
        self,
        name: str,
        n_targets: int = 16,
        target_GBps: float = 5.0,
        capacity_TB_per_target: float = 100.0,
        default_stripe_count: int = 4,
        default_stripe_MB: float = 1.0,
    ) -> None:
        if n_targets < 1:
            raise ValueError("need at least one OST")
        self.name = name
        self.n_targets = n_targets
        self.target_Bps = target_GBps * 1e9
        self.capacity_bytes = int(n_targets * capacity_TB_per_target * 1e12)
        self.default_stripe_count = default_stripe_count
        self.default_stripe_bytes = int(default_stripe_MB * MiB)
        self._files: dict[str, FileHandle] = {}
        self._next_first_target = 0
        self._target_bytes: list[int] = [0] * n_targets
        self._failed_targets: set[int] = set()
        #: Bandwidth multiplier for requests touching a failed OST while
        #: its data is served from redundancy/rebuild (degraded mode).
        self.degraded_factor = 4.0

    # -- namespace ----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._target_bytes)

    @property
    def files(self) -> dict[str, FileHandle]:
        return dict(self._files)

    def create(
        self,
        path: str,
        size_bytes: int,
        stripe_count: Optional[int] = None,
        stripe_bytes: Optional[int] = None,
    ) -> FileHandle:
        if path in self._files:
            raise FileExistsError(path)
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        count = min(stripe_count or self.default_stripe_count, self.n_targets)
        layout = StripeLayout(
            stripe_count=count,
            stripe_bytes=stripe_bytes or self.default_stripe_bytes,
            first_target=self._next_first_target,
        )
        if self.used_bytes + size_bytes > self.capacity_bytes:
            raise OSError(f"{self.name}: out of capacity")
        handle = FileHandle(path=path, size_bytes=size_bytes, layout=layout)
        self._files[path] = handle
        self._next_first_target = (self._next_first_target + count) % self.n_targets
        for i in range(count):
            share = size_bytes // count
            self._target_bytes[(layout.first_target + i) % self.n_targets] += share
        return handle

    def unlink(self, path: str) -> None:
        handle = self._files.pop(path, None)
        if handle is None:
            raise FileNotFoundError(path)
        count = handle.layout.stripe_count
        for i in range(count):
            share = handle.size_bytes // count
            idx = (handle.layout.first_target + i) % self.n_targets
            self._target_bytes[idx] = max(0, self._target_bytes[idx] - share)

    def open(self, path: str) -> FileHandle:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    # -- failure injection -------------------------------------------------------
    def fail_target(self, index: int) -> None:
        """Take an OST offline; reads over it run degraded, not lost."""
        if not (0 <= index < self.n_targets):
            raise ValueError(f"target {index} out of range")
        self._failed_targets.add(index)
        self._publish_health()

    def recover_target(self, index: int) -> None:
        self._failed_targets.discard(index)
        self._publish_health()

    @property
    def failed_targets(self) -> set[int]:
        return set(self._failed_targets)

    def health(self) -> ComponentHealth:
        """Structured health: an OST loss is a *gray* state, not an outage.

        Reads still complete (served from redundancy at
        ``1/degraded_factor`` bandwidth), so the filesystem reports
        ``ok`` until *every* target is gone, ``degraded`` while any is,
        and a suspicion level proportional to the failed fraction — on
        the same scale the phi-accrual detector uses, so schedulers and
        drills consume storage health and replica health uniformly.
        """
        n_failed = len(self._failed_targets)
        frac = n_failed / self.n_targets
        detail = ""
        if n_failed:
            detail = (f"{n_failed}/{self.n_targets} OSTs failed; degraded "
                      f"reads at {self.degraded_factor:g}x")
        return ComponentHealth(
            component=f"pfs:{self.name}",
            ok=n_failed < self.n_targets,
            degraded=n_failed > 0,
            detail=detail,
            suspicion=frac * self.degraded_factor,
        )

    def _publish_health(self) -> None:
        """Push the current health report through the telemetry path."""
        self.health().publish(telemetry.get_registry(), 0.0)

    @property
    def healthy(self) -> bool:
        """Bare-bool view of :meth:`health` (kept for existing callers)."""
        report = self.health()
        return report.ok and not report.degraded

    # -- timing ----------------------------------------------------------------
    def read_time(
        self,
        handle: FileHandle,
        offset: int = 0,
        length: Optional[int] = None,
        concurrent_clients: int = 1,
    ) -> float:
        """Time for one client to read a byte range.

        The request is served by the stripes' OSTs in parallel; each OST's
        bandwidth is shared among ``concurrent_clients``.
        """
        length = handle.size_bytes - offset if length is None else length
        if length <= 0:
            return 0.0
        targets = handle.layout.targets_for(offset, length, self.n_targets)
        per_target = length / max(len(targets), 1)
        effective = self.target_Bps / max(concurrent_clients, 1)
        base = per_target / effective
        if any(t in self._failed_targets for t in targets):
            # Degraded read: the slice on the failed OST is reconstructed
            # from redundancy at a fraction of normal bandwidth and
            # dominates the parallel read.
            return base * self.degraded_factor
        return base

    def write_time(
        self,
        handle: FileHandle,
        length: Optional[int] = None,
        concurrent_clients: int = 1,
    ) -> float:
        """Writes stream ~20% slower than reads on these targets."""
        return self.read_time(
            handle, 0, length, concurrent_clients=concurrent_clients
        ) * 1.25

    def aggregate_read_GBps(self, handle: FileHandle) -> float:
        """Peak aggregate bandwidth the file's layout can sustain."""
        return handle.layout.stripe_count * self.target_Bps / 1e9
