"""Multi-tier memory/storage hierarchy of DAM nodes.

The DEEP DAM's value for Spark-style analytics (Sec. III-B) is its memory
hierarchy: 384 GB DDR4 + 32 GB HBM2 + 2 TB NVM per node, backed by the SSSM
parallel filesystem.  :class:`TieredStore` places named datasets greedily
into the fastest tier with room and answers access-time queries; the
analytics engine (:mod:`repro.analytics`) uses it for cache/persist
decisions and the E5 bench sweeps dataset size across tier boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

GiB = 1024 ** 3


class MemoryTier(str, Enum):
    """Tiers ordered fastest-first."""

    HBM = "hbm"
    DDR = "ddr"
    NVM = "nvm"
    PFS = "pfs"


#: (read GB/s, write GB/s, access latency s) per tier — datasheet order.
TIER_CHARACTERISTICS: dict[MemoryTier, tuple[float, float, float]] = {
    MemoryTier.HBM: (900.0, 900.0, 1.0e-7),
    MemoryTier.DDR: (120.0, 120.0, 1.0e-7),
    MemoryTier.NVM: (6.0, 2.0, 1.0e-5),
    MemoryTier.PFS: (5.0, 4.0, 1.0e-3),
}

_TIER_ORDER = [MemoryTier.HBM, MemoryTier.DDR, MemoryTier.NVM, MemoryTier.PFS]


@dataclass(frozen=True)
class TierPlacement:
    """Where a dataset (or a slice of it) landed."""

    name: str
    tier: MemoryTier
    size_bytes: int

    def read_time(self) -> float:
        read_GBps, _, latency = TIER_CHARACTERISTICS[self.tier]
        return latency + self.size_bytes / (read_GBps * 1e9)

    def write_time(self) -> float:
        _, write_GBps, latency = TIER_CHARACTERISTICS[self.tier]
        return latency + self.size_bytes / (write_GBps * 1e9)


class TieredStore:
    """Capacity-aware placement across HBM/DDR/NVM/PFS.

    Datasets spill across tier boundaries: a 500 GB dataset on a DAM node
    (32 HBM + 384 DDR + 2048 NVM) lands partly in HBM, partly DDR, rest NVM.
    """

    def __init__(
        self,
        hbm_GB: float = 32.0,
        ddr_GB: float = 384.0,
        nvm_GB: float = 2048.0,
        pfs_GB: float = float("inf"),
    ) -> None:
        self._capacity = {
            MemoryTier.HBM: int(hbm_GB * GiB),
            MemoryTier.DDR: int(ddr_GB * GiB),
            MemoryTier.NVM: int(nvm_GB * GiB),
            MemoryTier.PFS: pfs_GB if pfs_GB == float("inf") else int(pfs_GB * GiB),
        }
        self._used = {tier: 0 for tier in _TIER_ORDER}
        self._placements: dict[str, list[TierPlacement]] = {}

    def free_bytes(self, tier: MemoryTier) -> float:
        cap = self._capacity[tier]
        if cap == float("inf"):
            return float("inf")
        return cap - self._used[tier]

    def put(self, name: str, size_bytes: int) -> list[TierPlacement]:
        """Place a dataset, spilling down the hierarchy as tiers fill."""
        if name in self._placements:
            raise FileExistsError(f"dataset {name!r} already placed")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        remaining = size_bytes
        slices: list[TierPlacement] = []
        for tier in _TIER_ORDER:
            if remaining <= 0:
                break
            room = self.free_bytes(tier)
            if room <= 0:
                continue
            take = remaining if room == float("inf") else min(remaining, int(room))
            if take <= 0:
                continue
            slices.append(TierPlacement(name=name, tier=tier, size_bytes=take))
            self._used[tier] += take
            remaining -= take
        if remaining > 0:
            for s in slices:
                self._used[s.tier] -= s.size_bytes
            raise MemoryError(f"no room for {name!r}: {remaining} bytes overflow")
        self._placements[name] = slices
        from repro import telemetry

        registry = telemetry.get_registry()
        if registry.enabled:
            for s in slices:
                registry.counter("tier_bytes_total", direction="write",
                                 tier=s.tier.value).inc(s.size_bytes)
        return slices

    def drop(self, name: str) -> None:
        slices = self._placements.pop(name, None)
        if slices is None:
            raise FileNotFoundError(name)
        for s in slices:
            self._used[s.tier] -= s.size_bytes

    def placement(self, name: str) -> list[TierPlacement]:
        try:
            return list(self._placements[name])
        except KeyError:
            raise FileNotFoundError(name) from None

    def read_time(self, name: str) -> float:
        """Read the whole dataset: tier slices stream in parallel, so the
        slowest slice dominates (the spill tail is the bottleneck)."""
        slices = self.placement(name)
        from repro import telemetry

        registry = telemetry.get_registry()
        if registry.enabled:
            for s in slices:
                registry.counter("tier_bytes_total", direction="read",
                                 tier=s.tier.value).inc(s.size_bytes)
        return max(s.read_time() for s in slices) if slices else 0.0

    def read_time_serial(self, name: str) -> float:
        """Pessimistic serial read (one channel)."""
        return sum(s.read_time() for s in self.placement(name))

    def resident_fraction_fast(self, name: str) -> float:
        """Fraction of the dataset in DRAM-class tiers (HBM+DDR)."""
        slices = self.placement(name)
        total = sum(s.size_bytes for s in slices)
        if total == 0:
            return 1.0
        fast = sum(
            s.size_bytes for s in slices
            if s.tier in (MemoryTier.HBM, MemoryTier.DDR)
        )
        return fast / total

    @classmethod
    def dam_node(cls) -> "TieredStore":
        """A DEEP DAM node's hierarchy (Table I)."""
        return cls(hbm_GB=32.0, ddr_GB=384.0, nvm_GB=2048.0)

    @classmethod
    def cluster_node(cls) -> "TieredStore":
        """A plain cluster node: DDR only, then straight to the PFS."""
        return cls(hbm_GB=0.0, ddr_GB=96.0, nvm_GB=0.0)
