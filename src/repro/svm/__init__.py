"""Parallel and scalable Support Vector Machines (paper ref [16]).

Sec. III: "a more robust classifier such as a parallel and scalable SVM
open-source package that we developed with MPI for CPUs and used to speed
up the classification of RS images".  This package rebuilds that stack:

* :mod:`repro.svm.kernels` — linear / RBF / polynomial kernels,
* :mod:`repro.svm.smo` — a from-scratch SMO solver (binary SVC) plus a
  one-vs-rest multi-class wrapper,
* :mod:`repro.svm.cascade` — the cascade SVM (Graf et al.) parallelised
  over :mod:`repro.mpi`: ranks train on partitions, support vectors merge
  up a binary tree — the strong-scaling pattern of the CM experiments (E4),
* :mod:`repro.svm.ensemble` — bagged SVM ensembles over sub-samples (the
  construction the quantum-annealer SVM of Sec. III-C relies on).
"""

from repro.svm.kernels import linear_kernel, rbf_kernel, poly_kernel, make_kernel
from repro.svm.smo import SVC, MulticlassSVC
from repro.svm.cascade import CascadeSVM, cascade_train
from repro.svm.ensemble import SvmEnsemble

__all__ = [
    "linear_kernel",
    "rbf_kernel",
    "poly_kernel",
    "make_kernel",
    "SVC",
    "MulticlassSVC",
    "CascadeSVM",
    "cascade_train",
    "SvmEnsemble",
]
