"""Cascade SVM parallelised with MPI (Graf et al.; the paper's ref [16]
pattern for CPU-parallel RS classification on the Cluster Module).

Training data is partitioned over ranks.  Each rank trains a local SVM and
keeps only its support vectors; pairs of ranks merge their support-vector
sets up a binary reduction tree, retraining at each level.  The root's
final machine is trained on the surviving support vectors only — typically
a small fraction of the data — so total work falls well below one big SMO
solve while the decision function stays near-identical (the cascade's
well-known property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mpi.comm import Communicator
from repro.svm.smo import SVC


@dataclass
class CascadeSVM:
    """Result of a cascade training run (valid on the root rank)."""

    machine: SVC
    n_levels: int
    total_sv_exchanged: int
    local_times: list[float]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.machine.predict(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self.machine.decision_function(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self.machine.score(X, y)


def _train_on(template: SVC, X: np.ndarray, y: np.ndarray) -> SVC:
    machine = template.clone_unfitted()
    machine.fit(X, y)
    return machine


def _sv_set(machine: SVC, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Support vectors with their labels (recovered by row matching)."""
    sv = machine.support_vectors_
    if sv is None or sv.shape[0] == 0:
        return X[:0], y[:0]
    # alpha*y sign gives the label directly.
    labels = np.sign(machine.support_alpha_y_)
    labels = np.where(labels == 0, 1.0, labels)
    return sv, labels


def cascade_train(
    comm: Communicator,
    X_local: np.ndarray,
    y_local: np.ndarray,
    template: Optional[SVC] = None,
) -> Optional[CascadeSVM]:
    """Train a cascade SVM; each rank passes its data partition.

    Returns the fitted :class:`CascadeSVM` on rank 0, None elsewhere.
    Labels must be in {-1, +1}.
    """
    template = template or SVC(C=1.0, kernel="rbf", gamma=0.5)
    import time

    t0 = time.perf_counter()
    machine = _train_on(template, X_local, y_local)
    X_sv, y_sv = _sv_set(machine, X_local, y_local)
    local_time = time.perf_counter() - t0

    exchanged = 0
    level = 0
    p = comm.size
    stride = 1
    active = True
    # Binary reduction tree over ranks: at each level, odd multiples of the
    # stride send their SV set to the even partner, which retrains on the
    # union.  Every rank walks every level (allocating the same collective
    # tags) so the final gather stays aligned; inactive ranks just skip.
    while stride < p:
        tag = comm._next_coll_tag()
        if active and (comm.rank // stride) % 2 == 1 and comm.rank % stride == 0:
            comm._send_raw(comm.rank - stride, (X_sv, y_sv), tag)
            active = False  # this rank leaves the cascade
        elif active and comm.rank % (2 * stride) == 0 and comm.rank + stride < p:
            incoming = comm._recv_raw(source=comm.rank + stride, tag=tag).payload
            X_in, y_in = incoming
            exchanged += len(X_in)
            X_merge = np.concatenate([X_sv, X_in])
            y_merge = np.concatenate([y_sv, y_in])
            if len(np.unique(y_merge)) >= 2:
                t1 = time.perf_counter()
                machine = _train_on(template, X_merge, y_merge)
                local_time += time.perf_counter() - t1
                X_sv, y_sv = _sv_set(machine, X_merge, y_merge)
            else:
                X_sv, y_sv = X_merge, y_merge
        stride *= 2
        level += 1

    times = comm.gather(local_time, root=0)
    if comm.rank == 0:
        return CascadeSVM(
            machine=machine,
            n_levels=level,
            total_sv_exchanged=exchanged,
            local_times=times,
        )
    return None


def serial_train(X: np.ndarray, y: np.ndarray,
                 template: Optional[SVC] = None) -> tuple[SVC, float]:
    """The single-SMO baseline the cascade is compared against."""
    import time

    template = template or SVC(C=1.0, kernel="rbf", gamma=0.5)
    t0 = time.perf_counter()
    machine = _train_on(template, X, y)
    return machine, time.perf_counter() - t0
