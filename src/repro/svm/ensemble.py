"""Bagged SVM ensembles over sub-samples.

The quantum-annealer SVM experiments (Sec. III-C, ref [11]) are "limited by
... the requirement to sub-sample from large quantities of data and using
ensemble methods".  This module provides the classical half of that
construction — an ensemble of SVMs trained on bootstrap sub-samples with
decision-function averaging — reused by the QSVM as its aggregation layer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.svm.smo import SVC


class SvmEnsemble:
    """Average the decision functions of SVMs trained on sub-samples."""

    def __init__(self, n_members: int = 8, subsample_size: int = 50,
                 C: float = 1.0, kernel: str = "rbf", seed: int = 0,
                 **kernel_params) -> None:
        if n_members < 1:
            raise ValueError("need at least one member")
        if subsample_size < 4:
            raise ValueError("subsample_size too small")
        self.n_members = n_members
        self.subsample_size = subsample_size
        self.seed = seed
        self.svc_kwargs = dict(C=C, kernel=kernel, **kernel_params)
        self.members_: list[SVC] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SvmEnsemble":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = X.shape[0]
        size = min(self.subsample_size, n)
        rng = np.random.default_rng(self.seed)
        self.members_ = []
        attempts = 0
        while len(self.members_) < self.n_members:
            attempts += 1
            if attempts > 20 * self.n_members:
                raise RuntimeError("could not draw class-balanced sub-samples")
            idx = rng.choice(n, size=size, replace=False)
            if len(np.unique(y[idx])) < 2:
                continue  # need both classes in the sub-sample
            machine = SVC(seed=self.seed + len(self.members_), **self.svc_kwargs)
            machine.fit(X[idx], y[idx])
            self.members_.append(machine)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self.members_:
            raise RuntimeError("fit before predicting")
        return np.mean([m.decision_function(X) for m in self.members_], axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
