"""SVM kernels, fully vectorised."""

from __future__ import annotations

from typing import Callable

import numpy as np

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """K(a, b) = a·b for row batches A (n, d) and B (m, d) -> (n, m)."""
    return np.asarray(A) @ np.asarray(B).T


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """K(a, b) = exp(-γ ||a - b||²), computed via the expansion trick."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    a2 = (A ** 2).sum(axis=1)[:, None]
    b2 = (B ** 2).sum(axis=1)[None, :]
    d2 = np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * d2)


def poly_kernel(A: np.ndarray, B: np.ndarray, degree: int = 3,
                coef0: float = 1.0) -> np.ndarray:
    """K(a, b) = (a·b + c)^d."""
    return (np.asarray(A) @ np.asarray(B).T + coef0) ** degree


def make_kernel(name: str, **params) -> Kernel:
    """Kernel factory used by the SVC constructors."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        gamma = params.get("gamma", 1.0)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        return lambda A, B: rbf_kernel(A, B, gamma=gamma)
    if name == "poly":
        degree = params.get("degree", 3)
        coef0 = params.get("coef0", 1.0)
        return lambda A, B: poly_kernel(A, B, degree=degree, coef0=coef0)
    raise ValueError(f"unknown kernel {name!r}")
